//! Search-quality integration tests: PIT against exhaustive enumeration and
//! random sampling on a space small enough to know the ground truth.

use pit::baselines::exhaustive::ExhaustiveConfig;
use pit::baselines::{ExhaustiveSearch, RandomSearch, RandomSearchConfig};
use pit::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A task whose useful information lives at lag 4 and lag 8: dilations that
/// cover those lags with few taps should dominate dense filters.
fn lag_dataset(samples: usize, seq_len: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::new();
    for _ in 0..samples {
        let x: Vec<f32> = (0..seq_len).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut y = 0.0f32;
        for t in 0..seq_len {
            let a = if t >= 4 { x[t - 4] } else { 0.0 };
            let b = if t >= 8 { x[t - 8] } else { 0.0 };
            y += x[t] + a - b;
        }
        y /= seq_len as f32;
        ds.push(
            Tensor::from_vec(x, &[1, seq_len]).unwrap(),
            Tensor::from_vec(vec![y], &[1]).unwrap(),
        );
    }
    ds
}

fn tiny_tcn_config() -> GenericTcnConfig {
    GenericTcnConfig {
        input_channels: 1,
        channels: vec![6],
        rf_max: vec![9],
        outputs: 1,
    }
}

fn make_model(dilations: &[usize], seed: u64) -> (GenericTcn, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = GenericTcn::new(&mut rng, &tiny_tcn_config());
    net.set_dilations(dilations);
    let params = net.effective_weights();
    (net, params)
}

#[test]
fn pit_outcome_is_not_dominated_by_random_sampling() {
    let data = lag_dataset(96, 32, 0);
    let (train, val) = data.split(0.75);

    // PIT search from the dense seed.
    let mut rng = StdRng::seed_from_u64(5);
    let net = GenericTcn::new(&mut rng, &tiny_tcn_config());
    let outcome = PitSearch::new(PitConfig {
        lambda: 1e-3,
        warmup_epochs: 2,
        search_epochs: 8,
        finetune_epochs: 3,
        patience: None,
        batch_size: 16,
        learning_rate: 5e-3,
        gamma_learning_rate: 0.05,
        seed: 5,
    })
    .run(&net, &train, &val, LossKind::Mse);
    let pit_point = outcome.to_pareto_point("pit");

    // Random baseline with a comparable per-architecture budget.
    let random = RandomSearch::new(
        RandomSearchConfig {
            samples: 4,
            epochs: 6,
            batch_size: 16,
            learning_rate: 5e-3,
            seed: 9,
        },
        SearchSpace::new(vec![9]),
    );
    let random_points = random.run(make_model, &train, &val, LossKind::Mse);

    // No random point may strictly dominate the PIT point by a wide margin:
    // allow a small tolerance on the loss axis because both are stochastic.
    for p in &random_points {
        let strictly_smaller = p.params < pit_point.params;
        let clearly_better = p.loss < pit_point.loss * 0.5;
        assert!(
            !(strictly_smaller && clearly_better),
            "random point {p:?} dominates PIT point {pit_point:?} by a wide margin"
        );
    }
    assert!(pit_point.loss.is_finite());
}

#[test]
fn exhaustive_front_contains_dominating_architectures() {
    let data = lag_dataset(48, 32, 1);
    let (train, val) = data.split(0.75);
    let search = ExhaustiveSearch::new(
        ExhaustiveConfig {
            epochs: 3,
            batch_size: 16,
            learning_rate: 5e-3,
            max_architectures: 8,
            seed: 0,
        },
        SearchSpace::new(vec![9]),
    );
    let (points, front) = search.run(make_model, &train, &val, LossKind::Mse);
    assert_eq!(points.len(), 4); // dilations 1, 2, 4, 8
    assert!(!front.is_empty());
    // Every point not on the front is dominated by some front point.
    for p in &points {
        let on_front = front
            .iter()
            .any(|f| f.params == p.params && f.loss == p.loss);
        if !on_front {
            assert!(
                front.iter().any(|f| f.dominates(p)),
                "point {p:?} is neither on the front nor dominated"
            );
        }
    }
}

#[test]
fn pareto_front_of_mixed_tools_is_consistent() {
    // Combine points from PIT-style and random-style labels and check the
    // front extraction is stable and sorted.
    let points = vec![
        ParetoPoint::new(100, 1.0, vec![8], "pit"),
        ParetoPoint::new(300, 0.5, vec![2], "pit"),
        ParetoPoint::new(200, 0.8, vec![4], "random"),
        ParetoPoint::new(400, 0.9, vec![1], "random"),
    ];
    let front = pareto_front(&points);
    let params: Vec<usize> = front.iter().map(|p| p.params).collect();
    assert_eq!(params, vec![100, 200, 300]);
    assert!(front.windows(2).all(|w| w[0].params <= w[1].params));
}
