//! End-to-end integration tests spanning every crate of the workspace:
//! dataset generation → seed model → PIT search → deployment analysis.

use pit::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A miniature TEMPONet + synthetic PPG pipeline, exactly the path the
//  benchmark harness takes, at unit-test size.
fn tiny_temponet_setup() -> (TempoNetConfig, Dataset, Dataset) {
    let config = TempoNetConfig::scaled(16, 32);
    let gen = PpgDaliaGenerator::new(PpgDaliaConfig {
        num_windows: 32,
        window_len: 32,
        subjects: 2,
        ..PpgDaliaConfig::paper()
    });
    let (train, val, _) = gen.generate_splits();
    (config, train, val)
}

#[test]
fn pit_search_on_temponet_produces_a_valid_architecture() {
    let (config, train, val) = tiny_temponet_setup();
    let mut rng = StdRng::seed_from_u64(0);
    let net = TempoNet::new(&mut rng, &config);
    let seed_params = net.effective_weights();

    let outcome = PitSearch::new(PitConfig {
        lambda: 1e-3,
        warmup_epochs: 1,
        search_epochs: 2,
        finetune_epochs: 1,
        patience: None,
        batch_size: 8,
        learning_rate: 5e-3,
        gamma_learning_rate: 0.02,
        seed: 0,
    })
    .run(&net, &train, &val, LossKind::Mae);

    // The outcome must describe a valid point of the search space.
    assert_eq!(outcome.dilations.len(), 7);
    let rf = config.rf_max_per_layer();
    for (i, (&d, &r)) in outcome.dilations.iter().zip(rf.iter()).enumerate() {
        assert!(d.is_power_of_two(), "layer {i} dilation {d}");
        assert!((r - 1) / d + 1 >= 1);
        assert!(d <= r, "layer {i}: dilation {d} larger than rf {r}");
    }
    assert!(outcome.effective_params <= seed_params);
    assert!(outcome.val_loss.is_finite() && outcome.val_loss > 0.0);
    // After the search the network is frozen and its dilations match the outcome.
    assert_eq!(net.dilations(), outcome.dilations);
    assert!(net.pit_layers().iter().all(|l| l.is_frozen()));
}

#[test]
fn searched_architecture_deploys_on_gap8() {
    let (config, train, val) = tiny_temponet_setup();
    let mut rng = StdRng::seed_from_u64(1);
    let net = TempoNet::new(&mut rng, &config);
    let outcome = PitSearch::new(PitConfig {
        lambda: 1e-2,
        warmup_epochs: 0,
        search_epochs: 2,
        finetune_epochs: 0,
        patience: None,
        batch_size: 8,
        learning_rate: 5e-3,
        gamma_learning_rate: 0.05,
        seed: 1,
    })
    .run(&net, &train, &val, LossKind::Mae);

    // Deploy the found architecture at paper scale.
    let mut prng = StdRng::seed_from_u64(2);
    let paper_net = TempoNet::new(&mut prng, &TempoNetConfig::paper());
    paper_net.set_dilations(&outcome.dilations);
    let seed_net = TempoNet::new(&mut prng, &TempoNetConfig::paper());

    let deployment = Deployment::new(Gap8Config::paper());
    let found = deployment.analyze(&paper_net.descriptor());
    let dense = deployment.analyze(&seed_net.descriptor());
    assert!(found.latency_ms > 0.0);
    assert!(found.latency_ms <= dense.latency_ms);
    assert!(found.energy_mj <= dense.energy_mj);
    assert!(found.weight_bytes <= dense.weight_bytes);
}

#[test]
fn stronger_regularisation_never_increases_model_size() {
    let (config, train, val) = tiny_temponet_setup();
    let mut sizes = Vec::new();
    for (i, lambda) in [0.0f32, 1e-2, 1.0].into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(42); // identical init for all runs
        let net = TempoNet::new(&mut rng, &config);
        let outcome = PitSearch::new(PitConfig {
            lambda,
            warmup_epochs: 0,
            search_epochs: 3,
            finetune_epochs: 0,
            patience: None,
            batch_size: 8,
            learning_rate: 0.02,
            gamma_learning_rate: 0.05,
            seed: 7 + i as u64,
        })
        .run(&net, &train, &val, LossKind::Mae);
        sizes.push(outcome.effective_params);
    }
    // Largest lambda must not produce a bigger network than lambda = 0.
    assert!(
        sizes[2] <= sizes[0],
        "lambda sweep produced sizes {sizes:?} — strongest regularisation must not grow the model"
    );
}

#[test]
fn restcn_pipeline_trains_and_improves_over_initialisation() {
    let config = ResTcnConfig {
        input_channels: 16,
        output_channels: 16,
        hidden_channels: 6,
        ..ResTcnConfig::paper()
    };
    let gen = NottinghamGenerator::new(NottinghamConfig {
        num_keys: 16,
        seq_len: 16,
        num_sequences: 24,
        ..NottinghamConfig::tiny()
    });
    let (train, val, _) = gen.generate_splits();
    let mut rng = StdRng::seed_from_u64(3);
    let net = ResTcn::new(&mut rng, &config);
    net.set_dilations(&config.hand_tuned_dilations());
    net.freeze_all();

    let before = Trainer::evaluate(&net, &val, LossKind::FrameNll, 8);
    let trainer = Trainer::new(TrainConfig {
        epochs: 6,
        batch_size: 8,
        shuffle: true,
        patience: None,
        seed: 0,
    });
    let mut opt = Adam::new(net.params(), 5e-3);
    let report = trainer.train(&net, &train, Some(&val), LossKind::FrameNll, &mut opt);
    let after = Trainer::evaluate(&net, &val, LossKind::FrameNll, 8);

    assert_eq!(report.epochs_run, 6);
    assert!(
        after < before,
        "training did not improve NLL: {before} -> {after}"
    );
}

#[test]
fn proxyless_and_pit_explore_the_same_space() {
    // The adapted ProxylessNAS supernet must offer exactly the dilation
    // choices PIT can represent for the same seed.
    let config = TempoNetConfig::paper();
    let proxy_cfg = ProxylessConfig::temponet_like(&config);
    let mut rng = StdRng::seed_from_u64(0);
    let supernet = ProxylessSupernet::new(&mut rng, &proxy_cfg);

    let space = SearchSpace::new(config.rf_max_per_layer());
    // Largest-dilation path of the supernet == largest dilation PIT can set.
    let max_path: Vec<usize> = (0..7).map(|i| space.choices_for_layer(i) - 1).collect();
    let max_dilations = supernet.path_dilations(&max_path);
    let net = TempoNet::new(&mut rng, &config);
    net.set_dilations(&max_dilations);
    assert_eq!(net.dilations(), max_dilations);
    // Dense path == seed.
    assert_eq!(supernet.path_dilations(&[0; 7]), vec![1; 7]);
}
