//! Property-based tests over the core invariants of the stack.

use pit::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The PIT mask always encodes a *regular* power-of-two dilation: the
    /// alive taps are exactly the multiples of the layer's dilation, for any
    /// gamma values and any receptive field.
    #[test]
    fn mask_always_encodes_regular_dilation(
        rf_exp in 1usize..6,
        gammas in proptest::collection::vec(0.0f32..1.0, 5),
    ) {
        let rf_max = (1usize << rf_exp) + 1; // 3, 5, 9, 17, 33
        let mut rng = StdRng::seed_from_u64(0);
        let conv = PitConv1d::new(&mut rng, 1, 1, rf_max, "prop");
        let l = conv.gamma_count();
        let tail: Vec<f32> = gammas.iter().take(l - 1).copied().collect();
        prop_assume!(tail.len() == l - 1);
        conv.gamma_param().set_value(Tensor::from_vec(tail, &[l - 1]).unwrap());

        let d = conv.dilation();
        prop_assert!(d.is_power_of_two());
        let mut tape = Tape::new();
        let mask = conv.mask(&mut tape);
        let m = tape.value(mask).data().to_vec();
        prop_assert_eq!(m.len(), rf_max);
        for (i, &v) in m.iter().enumerate() {
            let expected = if i % d == 0 { 1.0 } else { 0.0 };
            prop_assert_eq!(v, expected, "tap {} with dilation {}", i, d);
        }
        prop_assert_eq!(m.iter().filter(|&&v| v == 1.0).count(), conv.alive_taps());
    }

    /// Masked dense convolution == true dilated convolution on the exported
    /// pruned weights, for any dilation of the search space.
    #[test]
    fn masked_conv_equals_dilated_conv(
        choice in 0usize..4,
        seed in 0u64..1000,
    ) {
        let rf_max = 9usize;
        let d = 1usize << choice;
        let mut rng = StdRng::seed_from_u64(seed);
        let conv = PitConv1d::new(&mut rng, 2, 3, rf_max, "prop-eq");
        conv.set_dilation(d);
        let x = pit::tensor::init::uniform(&mut rng, &[1, 2, 24], 1.0);

        let mut tape = Tape::new();
        let vx = tape.constant(x.clone());
        let masked = conv.forward(&mut tape, vx, Mode::Eval);
        let dilated = x
            .conv1d_causal(&conv.export_pruned_weight(), Some(&conv.bias_param().value()), d)
            .unwrap();
        prop_assert!(tape.value(masked).approx_eq(&dilated, 1e-4));
    }

    /// The effective weight count reported by a searchable network is
    /// monotonically non-increasing in every layer's dilation.
    #[test]
    fn effective_weights_decrease_with_dilation(choices in proptest::collection::vec(0usize..4, 2)) {
        let cfg = GenericTcnConfig { input_channels: 1, channels: vec![4, 4], rf_max: vec![9, 9], outputs: 1 };
        let mut rng = StdRng::seed_from_u64(0);
        let net = GenericTcn::new(&mut rng, &cfg);
        let dense = net.effective_weights();
        let dilations: Vec<usize> = choices.iter().map(|&c| 1usize << c).collect();
        net.set_dilations(&dilations);
        prop_assert!(net.effective_weights() <= dense);
        // Round-trip: the dilations read back are the ones set.
        prop_assert_eq!(net.dilations(), dilations);
    }

    /// int8 quantization round-trip error is bounded by half a quantization
    /// step for every element.
    #[test]
    fn quantization_error_is_bounded(values in proptest::collection::vec(-50.0f32..50.0, 1..64)) {
        let len = values.len();
        let t = Tensor::from_vec(values, &[len]).unwrap();
        let q = pit::hw::quantize_symmetric(&t);
        let back = q.dequantize();
        prop_assert!(t.max_abs_diff(&back) <= q.scale / 2.0 + 1e-6);
    }

    /// The GAP8 cost model is monotone: adding MACs to a convolution never
    /// reduces its latency or energy.
    #[test]
    fn gap8_cost_is_monotone_in_macs(
        c_small in 1usize..32,
        extra in 1usize..32,
        kernel in 1usize..16,
        t in 8usize..128,
    ) {
        use pit::models::LayerDesc;
        let dep = Deployment::new(Gap8Config::paper());
        let small = dep.layer_cost(&LayerDesc::Conv1d {
            c_in: c_small, c_out: c_small, kernel, dilation: 1, t_in: t, t_out: t,
        });
        let large = dep.layer_cost(&LayerDesc::Conv1d {
            c_in: c_small + extra, c_out: c_small + extra, kernel, dilation: 1, t_in: t, t_out: t,
        });
        prop_assert!(large.latency_s >= small.latency_s);
        prop_assert!(large.energy_j >= small.energy_j);
    }

    /// Pareto-front extraction never returns a dominated point and never
    /// loses a non-dominated one.
    #[test]
    fn pareto_front_is_exactly_the_non_dominated_set(
        raw in proptest::collection::vec((1usize..10_000, 0.01f32..10.0), 1..40)
    ) {
        let points: Vec<ParetoPoint> = raw
            .iter()
            .enumerate()
            .map(|(i, &(params, loss))| ParetoPoint::new(params, loss, vec![1], format!("p{i}")))
            .collect();
        let front = pareto_front(&points);
        // No front point is dominated by any original point.
        for f in &front {
            prop_assert!(!points.iter().any(|p| p.dominates(f)));
        }
        // Every non-dominated original point appears on the front.
        for p in &points {
            if !points.iter().any(|q| q.dominates(p)) {
                prop_assert!(front.iter().any(|f| f.params == p.params && f.loss == p.loss));
            }
        }
    }

    /// The dilation search space size equals the product of per-layer choices
    /// and enumeration (when allowed) produces exactly that many unique combos.
    #[test]
    fn search_space_size_matches_enumeration(rfs in proptest::collection::vec(2usize..18, 1..4)) {
        let space = SearchSpace::new(rfs);
        let size = space.size();
        if size <= 64 {
            let combos = space.enumerate(64);
            prop_assert_eq!(combos.len() as u128, size);
            let mut unique = combos.clone();
            unique.sort();
            unique.dedup();
            prop_assert_eq!(unique.len(), combos.len());
        } else {
            prop_assert!(space.log10_size() > 1.0);
        }
    }
}
