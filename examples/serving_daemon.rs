//! The full serving story, end to end: search result → weight-bearing
//! artifact on disk → long-running TCP daemon → a fleet of concurrent
//! client streams — with emissions verified against solo sessions.
//!
//! 1. compile a searched TEMPONet into an f32 plan, calibrate + quantize it,
//!    and write **both** as `pit-arch/2` artifacts (weights included);
//! 2. boot `pit-serve` from the int8 artifact *file* — the daemon never
//!    sees model code, a searched network or calibration data;
//! 3. drive 16 concurrent client connections with ragged stream lengths
//!    and staggered open/close, and assert every emission is bit-for-bit
//!    identical to a solo `QuantizedSession`;
//! 4. grow the registry over the wire (LOAD_MODEL adds the f32 artifact
//!    beside the int8 model), open a stream on it by name (protocol v3)
//!    and verify the f32 engine serves within 1e-5 of a solo `Session`;
//! 5. batch several streams into single protocol-v2 PUSH_N frames through
//!    a `ClientBuilder` client and demux the coalesced EMIT_N replies;
//! 6. read the STATS counters (aggregated across the wave-batcher shards),
//!    scrape the HTTP telemetry sidecar (`/healthz`, Prometheus `/metrics`)
//!    and drain gracefully.
//!
//! Run with: `cargo run --release --example serving_daemon`

use pit::prelude::*;
use pit_infer::{compile_temponet, QuantizedPlan, QuantizedSession};
use pit_serve::{Client, ClientBuilder, ClientFrame, ServerConfig, ServerFrame, StatsSnapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

const C: usize = 4;
const STREAMS: usize = 16;
const RECV_TIMEOUT: Duration = Duration::from_secs(30);

/// One blocking HTTP GET against the telemetry sidecar; returns the body.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("sidecar reachable");
    stream.set_read_timeout(Some(RECV_TIMEOUT)).unwrap();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: example\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("request sent");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("response read");
    let text = String::from_utf8(response).expect("UTF-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("header terminator");
    assert!(
        head.starts_with("HTTP/1.1 200"),
        "sidecar answered 200: {head}"
    );
    body.to_string()
}

fn main() {
    // 1. A searched TEMPONet (random weights stand in for a trained model;
    //    the numerics of serving are identical), compiled and quantized.
    let config = TempoNetConfig::scaled(8, 64);
    let mut rng = StdRng::seed_from_u64(0);
    let net = TempoNet::new(&mut rng, &config);
    net.set_dilations(&[2, 4, 4, 8, 8, 16, 16]);
    let plan = Arc::new(compile_temponet(&net));
    let calibration = pit_tensor::init::uniform(&mut rng, &[1, C, 64], 1.0);
    let qplan = Arc::new(
        QuantizedPlan::quantize(&plan, std::slice::from_ref(&calibration)).expect("plan quantizes"),
    );

    let dir = std::env::temp_dir().join(format!("pit-serving-daemon-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let f32_path = dir.join("temponet_f32.pit2.json");
    let i8_path = dir.join("temponet_i8.pit2.json");
    std::fs::write(&f32_path, plan.to_artifact_string()).expect("write f32 artifact");
    std::fs::write(&i8_path, qplan.to_artifact_string()).expect("write i8 artifact");
    println!(
        "artifacts             : {} ({} bytes f32) / {} ({} bytes i8)",
        f32_path.display(),
        std::fs::metadata(&f32_path).unwrap().len(),
        i8_path.display(),
        std::fs::metadata(&i8_path).unwrap().len(),
    );

    // 2. Boot the daemon from the int8 artifact file, on an ephemeral port:
    //    one event-driven edge thread owning every socket, four wave-batcher
    //    shards owning the session pools.
    let server = pit_serve::Server::bind_artifact(
        &i8_path,
        ServerConfig {
            shards: 4,
            metrics_addr: Some("127.0.0.1:0".into()),
            ..ServerConfig::default()
        },
    )
    .expect("daemon boots from the artifact");
    let addr = server.local_addr();
    let metrics_addr = server.metrics_addr().expect("sidecar bound");
    let handle = server.spawn();
    println!("daemon                : listening on {addr} (kind i8, 4 shards, booted from file)");
    println!("telemetry             : sidecar on http://{metrics_addr}");

    // 3. Sixteen concurrent client connections, ragged lengths (24..=84
    //    steps), staggered connects, bursty pushes — every emission must be
    //    bit-for-bit a solo QuantizedSession's output.
    let mut rng = StdRng::seed_from_u64(1);
    let inputs: Vec<Vec<f32>> = (0..STREAMS)
        .map(|i| {
            (0..(24 + 4 * i) * C)
                .map(|_| rng.gen::<f32>() - 0.5)
                .collect()
        })
        .collect();
    let started = Instant::now();
    let workers: Vec<_> = inputs
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, input)| {
            std::thread::spawn(move || -> Vec<Vec<f32>> {
                std::thread::sleep(Duration::from_millis((i % 4) as u64 * 2));
                let mut client = Client::connect(addr).expect("connect");
                client.open(i as u32).expect("open");
                let steps = input.len() / C;
                let burst = 1 + i % 7; // ragged push sizes
                let mut pushed = 0;
                while pushed < steps {
                    let take = burst.min(steps - pushed);
                    client
                        .push(i as u32, C as u32, &input[pushed * C..(pushed + take) * C])
                        .expect("push");
                    pushed += take;
                }
                let mut outputs = Vec::new();
                while outputs.len() < steps / 8 {
                    match client
                        .recv_timeout(RECV_TIMEOUT)
                        .expect("transport")
                        .expect("emissions before timeout")
                    {
                        ServerFrame::Emit {
                            outputs: o, dim, ..
                        } => {
                            outputs.extend(o.chunks_exact(dim as usize).map(|c| c.to_vec()));
                        }
                        ServerFrame::Opened { .. } => {}
                        other => panic!("unexpected frame {other:?}"),
                    }
                }
                client.close(i as u32).expect("close");
                outputs
            })
        })
        .collect();
    let results: Vec<Vec<Vec<f32>>> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    let mut timesteps = 0usize;
    for (i, (input, got)) in inputs.iter().zip(results.iter()).enumerate() {
        timesteps += input.len() / C;
        let mut solo = QuantizedSession::new(Arc::clone(&qplan));
        let want: Vec<Vec<f32>> = input.chunks(C).filter_map(|s| solo.push(s)).collect();
        assert_eq!(
            got, &want,
            "stream {i}: daemon must be bit-exact vs solo i8"
        );
    }
    let elapsed = started.elapsed();
    println!(
        "i8 fleet              : {STREAMS} ragged streams, {timesteps} timesteps in {:.1} ms \
         ({:.0} timesteps/s) — all emissions bit-exact vs solo sessions",
        elapsed.as_secs_f64() * 1e3,
        timesteps as f64 / elapsed.as_secs_f64()
    );

    // 4. Grow the registry over the wire: the f32 artifact has a different
    // name than the serving int8 plan, so LOAD_MODEL adds it beside the
    // original (a same-name load would be a replace, refused while that
    // model has open streams). New streams then pick it by name.
    let mut client = Client::connect(addr).expect("connect");
    client
        .send(&ClientFrame::LoadModel {
            path: f32_path.display().to_string(),
        })
        .expect("send");
    let f32_name = match client.recv_timeout(RECV_TIMEOUT).unwrap() {
        Some(ServerFrame::ModelLoaded { name }) => {
            println!("hot load              : registry grew — {name} (f32) now servable");
            name
        }
        other => panic!("load failed: {other:?}"),
    };
    let f32_input: Vec<f32> = (0..32 * C).map(|_| rng.gen::<f32>() - 0.5).collect();
    client.open_with_model(0, &f32_name).expect("open");
    client.push(0, C as u32, &f32_input).expect("push");
    let mut got = Vec::new();
    while got.len() < 32 / 8 {
        match client.recv_timeout(RECV_TIMEOUT).unwrap().expect("frames") {
            ServerFrame::Emit { outputs, dim, .. } => {
                got.extend(outputs.chunks_exact(dim as usize).map(|c| c.to_vec()));
            }
            ServerFrame::Opened { .. } => {}
            other => panic!("unexpected frame {other:?}"),
        }
    }
    let mut solo = Session::new(Arc::clone(&plan));
    let want: Vec<Vec<f32>> = f32_input.chunks(C).filter_map(|s| solo.push(s)).collect();
    for (a, b) in got.iter().zip(want.iter()) {
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-5, "f32 serving parity: {x} vs {y}");
        }
    }
    println!("f32 parity            : name-selected engine matches solo Session within 1e-5");

    // 5. Protocol v2: a builder-configured client batches four streams into
    //    one PUSH_N frame per 8-step round; the server latches the
    //    connection into v2 and coalesces replies into EMIT_N frames. The
    //    builder's default_model routes every plain open() to the f32 entry.
    const V2_STREAMS: usize = 4;
    const V2_STEPS: usize = 32;
    let mut v2 = ClientBuilder::new()
        .connect_timeout(Duration::from_secs(5))
        .read_timeout(RECV_TIMEOUT)
        .write_batch(8)
        .default_model(&f32_name)
        .connect(addr)
        .expect("connect v2 client");
    let v2_inputs: Vec<Vec<f32>> = (0..V2_STREAMS)
        .map(|_| (0..V2_STEPS * C).map(|_| rng.gen::<f32>() - 0.5).collect())
        .collect();
    for sid in 0..V2_STREAMS as u32 {
        v2.open(100 + sid).expect("open");
    }
    for round in 0..V2_STEPS / 8 {
        let entries: Vec<(u32, u32)> = (0..V2_STREAMS as u32).map(|sid| (100 + sid, 8)).collect();
        let samples: Vec<f32> = v2_inputs
            .iter()
            .flat_map(|input| input[round * 8 * C..(round + 1) * 8 * C].iter().copied())
            .collect();
        v2.push_n(C as u32, &entries, &samples).expect("push_n");
    }
    let mut v2_out: std::collections::HashMap<u32, Vec<Vec<f32>>> = Default::default();
    let mut emit_n_frames = 0usize;
    while v2_out.len() < V2_STREAMS || v2_out.values().any(|v| v.len() < V2_STEPS / 8) {
        match v2.recv().expect("v2 frames") {
            ServerFrame::EmitN {
                dim,
                entries,
                outputs,
            } => {
                emit_n_frames += 1;
                let mut offset = 0usize;
                for (sid, count) in entries {
                    let end = offset + count as usize * dim as usize;
                    v2_out.entry(sid).or_default().extend(
                        outputs[offset..end]
                            .chunks_exact(dim as usize)
                            .map(|c| c.to_vec()),
                    );
                    offset = end;
                }
            }
            ServerFrame::Emit {
                stream_id,
                outputs,
                dim,
                ..
            } => v2_out
                .entry(stream_id)
                .or_default()
                .extend(outputs.chunks_exact(dim as usize).map(|c| c.to_vec())),
            ServerFrame::Opened { .. } => {}
            other => panic!("unexpected frame {other:?}"),
        }
    }
    for (s, input) in v2_inputs.iter().enumerate() {
        let mut solo = Session::new(Arc::clone(&plan));
        let want: Vec<Vec<f32>> = input.chunks(C).filter_map(|x| solo.push(x)).collect();
        let got = &v2_out[&(100 + s as u32)];
        assert_eq!(got.len(), want.len(), "v2 stream {s}: emission count");
        for (a, b) in got.iter().zip(want.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-5, "v2 stream {s} parity: {x} vs {y}");
            }
        }
    }
    println!(
        "protocol v2           : {V2_STREAMS} streams x {V2_STEPS} steps over PUSH_N, \
         {emit_n_frames} coalesced EMIT_N frames back — 1e-5 parity vs solo sessions"
    );

    // 6. Live stats, then graceful drain.
    client.stats().expect("stats");
    let Some(ServerFrame::StatsJson { json }) = client.recv_timeout(RECV_TIMEOUT).unwrap() else {
        panic!("expected stats")
    };
    let snap = StatsSnapshot::from_json_str(&json).expect("stats parse");
    println!(
        "stats                 : {} waves over {} shards, occupancy {:.1}, \
         wave p50 {} ns / p99 {} ns",
        snap.waves, snap.shards, snap.wave_occupancy, snap.wave_p50_ns, snap.wave_p99_ns
    );
    // The HTTP sidecar sees the same atomics: /healthz says serving, and
    // the Prometheus exposition carries the totals the STATS frame reported.
    let healthz = http_get(metrics_addr, "/healthz");
    assert!(healthz.contains("\"serving\""), "healthz: {healthz}");
    let metrics = http_get(metrics_addr, "/metrics");
    let waves_line = metrics
        .lines()
        .find(|l| l.starts_with("pit_serve_waves_total "))
        .expect("waves family exported");
    println!(
        "telemetry             : healthz serving, scrape {} bytes, {waves_line}",
        metrics.len()
    );

    let stats = handle.shutdown();
    println!("drained               : {stats}");
    assert_eq!(stats.streams_open, 0, "drain closes every stream");
    assert_eq!(stats.streams_opened, STREAMS as u64 + 1 + V2_STREAMS as u64);
    let _ = std::fs::remove_dir_all(&dir);
}
