//! Int8 serving of a searched PPG heart-rate model: the deployment contract
//! of the PIT story (search → tiny dilated TCN → int8 execution on the
//! edge), end to end:
//!
//! 1. persist the searched architecture as `pit-arch/1` JSON and load it
//!    back — no re-search needed;
//! 2. compile the trained network into an f32 [`InferencePlan`] (γ masks →
//!    true dilations, batch norm folded);
//! 3. **calibrate** activation ranges over representative windows and
//!    **quantize** into a [`QuantizedPlan`] — int8 weights with
//!    per-output-channel scales, one activation scale per layer seam, and
//!    an *analytic* parity bound against the f32 plan;
//! 4. stream both engines side by side: identical emission schedule,
//!    outputs within the bound, ~4x smaller weights and per-stream state,
//!    and a faster step;
//! 5. serve a fleet of int8 streams through a [`QuantizedSessionPool`] —
//!    one `i8×i8→i32` GEMM wave per layer.
//!
//! Run with: `cargo run --release --example quantized_serving`

use pit::prelude::*;
use pit_infer::{compile_temponet, QuantizedPlan, QuantizedSession, QuantizedSessionPool};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // A scaled TEMPONet carrying a searched dilation assignment (a real
    // pipeline would train first; weights here are random but the numerics
    // of the quantized path are identical).
    let config = TempoNetConfig::scaled(8, 64);
    let searched = vec![2, 4, 4, 8, 8, 16, 16];
    let mut rng = StdRng::seed_from_u64(0);
    let net = TempoNet::new(&mut rng, &config);
    net.set_dilations(&searched);

    // 1. Architecture round trip through pit-arch/1 JSON.
    let json = net.descriptor().to_json_string();
    let loaded = NetworkDescriptor::from_json_str(&json).expect("descriptor parses back");
    println!(
        "searched architecture : dilations {searched:?} ({} layers, {} bytes of JSON)",
        loaded.len(),
        json.len()
    );

    // 2. Compile to the f32 plan.
    let plan = Arc::new(compile_temponet(&net));

    // 3. Calibrate on representative PPG windows, then lower to int8.
    let generator = PpgDaliaGenerator::new(PpgDaliaConfig {
        num_windows: 8,
        window_len: 64,
        ..PpgDaliaConfig::paper()
    });
    let (windows, _, _) = generator.generate_splits();
    let calibration: Vec<_> = (0..4).map(|i| windows.gather(&[i]).inputs).collect();
    let qplan = Arc::new(QuantizedPlan::quantize(&plan, &calibration).expect("plan quantizes"));
    let f32_weight_bytes = 4 * plan.num_weights();
    let f32_state_bytes = 4 * plan.session_state_floats();
    println!(
        "quantized plan        : {} -> {} weight bytes ({:.1}x), {} -> {} state bytes/stream ({:.1}x)",
        f32_weight_bytes,
        qplan.weight_bytes(),
        f32_weight_bytes as f64 / qplan.weight_bytes() as f64,
        f32_state_bytes,
        qplan.session_state_bytes(),
        f32_state_bytes as f64 / qplan.session_state_bytes() as f64,
    );

    // 4. Stream one calibration window through both engines.
    let x = &calibration[0]; // [1, 4, 64]
    let mut f32_session = Session::new(Arc::clone(&plan));
    let mut i8_session = QuantizedSession::new(Arc::clone(&qplan));
    let mut sample = [0.0f32; 4];
    let (mut f32_last, mut i8_last) = (Vec::new(), Vec::new());
    for t in 0..64 {
        for (ci, slot) in sample.iter_mut().enumerate() {
            *slot = x.data()[ci * 64 + t];
        }
        let f = f32_session.push(&sample);
        let q = i8_session.push(&sample);
        assert_eq!(f.is_some(), q.is_some(), "emission schedules must match");
        if let (Some(f), Some(q)) = (f, q) {
            f32_last = f;
            i8_last = q;
        }
    }
    let diff = (f32_last[0] - i8_last[0]).abs();
    let bound = qplan.error_bound();
    println!(
        "int8 parity           : f32 {:.4} vs int8 {:.4} (|diff| {:.2e} <= analytic bound {:.2e})",
        f32_last[0], i8_last[0], diff, bound
    );
    assert!(
        diff <= bound * 1.001 + 1e-4,
        "quantized output out of bound"
    );

    // Step-time comparison (single stream, steady state).
    let steps = 200_000usize;
    let mut out = vec![0.0f32; plan.output_dim()];
    let time_steps = |f: &mut dyn FnMut(usize)| {
        let start = Instant::now();
        for t in 0..steps {
            f(t);
        }
        start.elapsed().as_nanos() as f64 / steps as f64
    };
    let f32_ns = time_steps(&mut |t| {
        for (ci, slot) in sample.iter_mut().enumerate() {
            *slot = x.data()[ci * 64 + (t % 64)];
        }
        f32_session.push_into(&sample, &mut out);
    });
    let i8_ns = time_steps(&mut |t| {
        for (ci, slot) in sample.iter_mut().enumerate() {
            *slot = x.data()[ci * 64 + (t % 64)];
        }
        i8_session.push_into(&sample, &mut out);
    });
    println!(
        "step time             : f32 {f32_ns:.0} ns vs int8 {i8_ns:.0} ns ({:.1}x faster)",
        f32_ns / i8_ns
    );

    // 5. Batch-of-sessions int8 serving: 16 concurrent PPG streams.
    const STREAMS: usize = 16;
    const STEPS: usize = 256;
    let mut pool = QuantizedSessionPool::new(Arc::clone(&qplan), STREAMS);
    let mut predictions = 0usize;
    let start = Instant::now();
    for t in 0..STEPS {
        for sid in 0..STREAMS {
            for (ci, slot) in sample.iter_mut().enumerate() {
                *slot = x.data()[ci * 64 + (t + sid) % 64];
            }
            pool.push(sid, &sample);
        }
        predictions += pool.flush().len();
    }
    let elapsed = start.elapsed();
    println!(
        "int8 session pool     : {STREAMS} streams x {STEPS} steps -> {predictions} predictions \
         in {:.1} ms ({:.0} timesteps/s)",
        elapsed.as_secs_f64() * 1e3,
        (STREAMS * STEPS) as f64 / elapsed.as_secs_f64()
    );
}
