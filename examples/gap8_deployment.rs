//! Deployment study: quantize and deploy the paper's architectures on the
//! GAP8 analytical model, reproducing the structure of Table III without any
//! training (the dilation patterns are taken directly from Table I).
//!
//! Run with: `cargo run --release --example gap8_deployment`

use pit::hw::quantize_symmetric;
use pit::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let deployment = Deployment::new(Gap8Config::paper());

    println!("GAP8 cluster: 8 cores @ 100 MHz, 64 kB L1, 512 kB L2\n");

    // --- ResTCN family (Nottingham) -------------------------------------
    let restcn: &[(&str, &[usize])] = &[
        ("ResTCN dil=1", &[1, 1, 1, 1, 1, 1, 1, 1]),
        ("ResTCN hand-tuned", &[1, 1, 2, 2, 4, 4, 8, 8]),
        ("PIT ResTCN small", &[4, 4, 8, 8, 16, 16, 32, 32]),
        ("PIT ResTCN medium", &[4, 1, 4, 8, 16, 16, 32, 32]),
        ("PIT ResTCN large", &[1, 4, 8, 8, 16, 16, 8, 1]),
    ];
    println!(
        "{:<22} {:>10} {:>12} {:>10} {:>8}",
        "network", "weights", "latency[ms]", "energy[mJ]", "fits L2"
    );
    let cfg = ResTcnConfig::paper();
    for (name, dilations) in restcn {
        let mut rng = StdRng::seed_from_u64(0);
        let net = ResTcn::new(&mut rng, &cfg);
        net.set_dilations(dilations);
        let report = deployment.analyze(&net.descriptor(128));
        println!(
            "{:<22} {:>10} {:>12.1} {:>10.1} {:>8}",
            name,
            net.effective_weights(),
            report.latency_ms,
            report.energy_mj,
            if report.fits_in_l2 { "yes" } else { "no" }
        );
    }

    // --- TEMPONet family (PPG-Dalia) -------------------------------------
    let temponet: &[(&str, &[usize])] = &[
        ("TEMPONet dil=1", &[1, 1, 1, 1, 1, 1, 1]),
        ("TEMPONet hand-tuned", &[2, 2, 1, 4, 4, 8, 8]),
        ("PIT TEMPONet small", &[2, 4, 4, 8, 8, 16, 16]),
        ("PIT TEMPONet medium", &[1, 2, 4, 2, 1, 8, 16]),
        ("PIT TEMPONet large", &[1, 1, 1, 1, 1, 1, 16]),
    ];
    println!();
    println!(
        "{:<22} {:>10} {:>12} {:>10} {:>8}",
        "network", "weights", "latency[ms]", "energy[mJ]", "fits L2"
    );
    let tcfg = TempoNetConfig::paper();
    for (name, dilations) in temponet {
        let mut rng = StdRng::seed_from_u64(0);
        let net = TempoNet::new(&mut rng, &tcfg);
        net.set_dilations(dilations);
        let report = deployment.analyze(&net.descriptor());
        println!(
            "{:<22} {:>10} {:>12.1} {:>10.1} {:>8}",
            name,
            net.effective_weights(),
            report.latency_ms,
            report.energy_mj,
            if report.fits_in_l2 { "yes" } else { "no" }
        );
    }

    // --- int8 quantization of one layer ----------------------------------
    let mut rng = StdRng::seed_from_u64(7);
    let net = TempoNet::new(&mut rng, &tcfg);
    let conv = net.pit_layers()[0];
    let weights = conv.weight_param().value();
    let quantized = quantize_symmetric(&weights);
    println!(
        "\nint8 quantization of the first TEMPONet convolution: {} weights, scale {:.5}, \
         {} bytes ({}x smaller than f32)",
        quantized.len(),
        quantized.scale,
        quantized.size_bytes(),
        4
    );
}
