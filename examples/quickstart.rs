//! Quick start: run a PIT dilation search on a tiny synthetic task.
//!
//! The task is built so that the target only depends on the input at lags 0
//! and 8: a well-chosen dilation covers that receptive field with far fewer
//! weights than a dense filter, which is exactly what PIT should discover.
//!
//! Run with: `cargo run --release --example quickstart`

use pit::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a regression dataset where `y = mean_t(x[t] + x[t-8])`.
fn lag_dataset(samples: usize, seq_len: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::new();
    for _ in 0..samples {
        let x: Vec<f32> = (0..seq_len).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut y = 0.0f32;
        for t in 0..seq_len {
            y += x[t] + if t >= 8 { x[t - 8] } else { 0.0 };
        }
        y /= seq_len as f32;
        ds.push(
            Tensor::from_vec(x, &[1, seq_len]).expect("input shape"),
            Tensor::from_vec(vec![y], &[1]).expect("target shape"),
        );
    }
    ds
}

fn main() {
    // 1. A seed network: two searchable convolutions with generous receptive
    //    fields (9 and 17 taps), everything still un-dilated.
    let mut rng = StdRng::seed_from_u64(0);
    let config = GenericTcnConfig {
        input_channels: 1,
        channels: vec![8, 8],
        rf_max: vec![9, 17],
        outputs: 1,
    };
    let net = GenericTcn::new(&mut rng, &config);
    println!("seed network : {}", net.describe());
    println!(
        "search space : {} dilation combinations",
        SearchSpace::new(config.rf_max.clone()).size()
    );

    // 2. A synthetic benchmark with long-range temporal structure.
    let data = lag_dataset(128, 32, 1);
    let (train, val) = data.split(0.75);

    // 3. Run the three-phase PIT search (warmup -> pruning -> fine-tuning).
    let search = PitSearch::new(PitConfig {
        lambda: 5e-4,
        warmup_epochs: 3,
        search_epochs: 15,
        finetune_epochs: 5,
        patience: Some(10),
        batch_size: 16,
        learning_rate: 5e-3,
        gamma_learning_rate: 0.05,
        seed: 0,
    });
    let outcome = search.run(&net, &train, &val, LossKind::Mse);

    // 4. Inspect the result.
    println!("found dilations     : {:?}", outcome.dilations);
    println!(
        "deployable weights  : {} (seed had {})",
        outcome.effective_params, outcome.total_params
    );
    println!("compression         : {:.2}x", outcome.compression());
    println!("validation MSE      : {:.4}", outcome.val_loss);
    println!(
        "search wall time    : {:.1} s (warmup {:.1} s, pruning {:.1} s, fine-tune {:.1} s)",
        outcome.timings.total().as_secs_f64(),
        outcome.timings.warmup.as_secs_f64(),
        outcome.timings.search.as_secs_f64(),
        outcome.timings.finetune.as_secs_f64(),
    );
}
