//! Serving a searched PPG heart-rate model sample-by-sample.
//!
//! The PIT search's output is an architecture (a dilation per layer). This
//! example shows the full serving path `pit-infer` adds on top of it:
//!
//! 1. persist the searched architecture as JSON (`NetworkDescriptor`) and
//!    load it back — no re-search needed;
//! 2. compile the trained network into an [`InferencePlan`]: γ masks fold
//!    into true dilations, batch norm fuses into the conv weights;
//! 3. verify streaming parity: pushing a window one sample at a time equals
//!    the offline forward;
//! 4. serve a fleet of concurrent PPG streams through a [`SessionPool`],
//!    one batched kernel call per wave.
//!
//! Run with: `cargo run --release --example streaming_inference`

use pit::prelude::*;
use pit_infer::compile_temponet;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // A scaled TEMPONet carrying a searched dilation assignment (the paper's
    // PIT result for the PPG task; a real pipeline would train first).
    let config = TempoNetConfig::scaled(8, 64);
    let searched = vec![2, 4, 4, 8, 8, 16, 16];
    let mut rng = StdRng::seed_from_u64(0);
    let net = TempoNet::new(&mut rng, &config);
    net.set_dilations(&searched);
    println!("searched architecture : dilations {searched:?}");

    // 1. Architecture round trip: save as JSON, load, re-validate.
    let json = net.descriptor().to_json_string();
    let loaded = NetworkDescriptor::from_json_str(&json).expect("descriptor parses back");
    let geometry = InferencePlan::from_descriptor(&loaded).expect("geometry compiles");
    println!(
        "descriptor JSON       : {} bytes, {} layers, geometry round-trips (rf {})",
        json.len(),
        loaded.len(),
        geometry.receptive_field()
    );

    // 2. Compile the trained network: masks -> true dilations, BN folded.
    let plan = Arc::new(compile_temponet(&net));
    println!(
        "compiled plan         : {} weights (searchable net stores {}), {} state floats/stream",
        plan.num_weights(),
        net.num_weights(),
        plan.session_state_floats()
    );

    // 3. Parity: stream one window sample-by-sample vs the offline forward.
    let generator = PpgDaliaGenerator::new(PpgDaliaConfig {
        num_windows: 8,
        window_len: 64,
        ..PpgDaliaConfig::paper()
    });
    let (windows, _, _) = generator.generate_splits();
    let x = windows.gather(&[0]).inputs; // one [1, 4, 64] PPG window
    let offline = plan.forward(&x).expect("offline forward");
    let mut session = Session::new(Arc::clone(&plan));
    let mut sample = [0.0f32; 4];
    let mut last = Vec::new();
    for t in 0..64 {
        for (ci, slot) in sample.iter_mut().enumerate() {
            *slot = x.data()[ci * 64 + t];
        }
        if let Some(out) = session.push(&sample) {
            last = out;
        }
    }
    let diff = (last[0] - offline.data()[0]).abs();
    println!(
        "streaming parity      : offline {:.4}, streamed {:.4} (|diff| {:.2e})",
        offline.data()[0],
        last[0],
        diff
    );
    assert!(diff < 1e-5, "streaming must match the offline forward");

    // 4. Batch-of-sessions serving: 16 concurrent PPG streams.
    const STREAMS: usize = 16;
    const STEPS: usize = 256;
    let mut pool = SessionPool::new(Arc::clone(&plan), STREAMS);
    let mut predictions = 0usize;
    let start = Instant::now();
    for t in 0..STEPS {
        for sid in 0..STREAMS {
            for (ci, slot) in sample.iter_mut().enumerate() {
                *slot = x.data()[ci * 64 + (t + sid) % 64];
            }
            pool.push(sid, &sample);
        }
        predictions += pool.flush().len();
    }
    let elapsed = start.elapsed();
    let steps = (STREAMS * STEPS) as f64;
    println!(
        "session pool          : {STREAMS} streams x {STEPS} steps -> {predictions} predictions \
         in {:.1} ms ({:.0} timesteps/s)",
        elapsed.as_secs_f64() * 1e3,
        steps / elapsed.as_secs_f64()
    );
}
