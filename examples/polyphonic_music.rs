//! Next-frame prediction on synthetic polyphonic music with a ResTCN seed,
//! mirroring the Nottingham benchmark of the paper at a laptop-friendly
//! scale.
//!
//! The example runs a small λ sweep of PIT searches from one seed network and
//! prints the resulting accuracy-vs-size points together with the seed and
//! hand-tuned references — a miniature version of Fig. 4 (top).
//!
//! Run with: `cargo run --release --example polyphonic_music`

use pit::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Scaled-down ResTCN: same 8-layer residual topology and dilation search
    // space as the paper's seed, fewer channels and keys.
    let config = ResTcnConfig {
        input_channels: 16,
        output_channels: 16,
        hidden_channels: 12,
        ..ResTcnConfig::paper()
    };
    let generator = NottinghamGenerator::new(NottinghamConfig {
        num_keys: 16,
        seq_len: 32,
        num_sequences: 64,
        ..NottinghamConfig::paper()
    });
    let (train, val, _test) = generator.generate_splits();
    println!(
        "synthetic Nottingham: {} train / {} val sequences",
        train.len(),
        val.len()
    );
    println!(
        "dilation search space: {} combinations",
        SearchSpace::new(config.rf_max_per_layer()).size()
    );

    // Reference: the hand-tuned dilations of Bai et al.
    let mut rng = StdRng::seed_from_u64(0);
    let hand_net = ResTcn::new(&mut rng, &config);
    hand_net.set_dilations(&config.hand_tuned_dilations());
    hand_net.freeze_all();
    let trainer = Trainer::new(TrainConfig {
        epochs: 8,
        batch_size: 16,
        shuffle: true,
        patience: None,
        seed: 0,
    });
    let mut opt = Adam::new(hand_net.params(), 5e-3);
    let _ = trainer.train(&hand_net, &train, Some(&val), LossKind::FrameNll, &mut opt);
    let hand_nll = Trainer::evaluate(&hand_net, &val, LossKind::FrameNll, 16);
    println!(
        "hand-tuned ResTCN: {} weights, NLL {:.3}",
        hand_net.effective_weights(),
        hand_nll
    );

    // PIT sweep: three regularisation strengths from one seed.
    let mut points = Vec::new();
    for (i, lambda) in [1e-5f32, 1e-3, 1e-2].into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(10 + i as u64);
        let net = ResTcn::new(&mut rng, &config);
        let outcome = PitSearch::new(PitConfig {
            lambda,
            warmup_epochs: 1,
            search_epochs: 5,
            finetune_epochs: 2,
            patience: Some(10),
            batch_size: 16,
            learning_rate: 5e-3,
            gamma_learning_rate: 0.05,
            seed: 10 + i as u64,
        })
        .run(&net, &train, &val, LossKind::FrameNll);
        println!(
            "PIT λ={lambda:.0e}: {} weights, NLL {:.3}, dilations {:?}",
            outcome.effective_params, outcome.val_loss, outcome.dilations
        );
        points.push(outcome.to_pareto_point(format!("λ={lambda:.0e}")));
    }

    let front = pareto_front(&points);
    println!("\nPareto-optimal PIT architectures:");
    for p in &front {
        println!("  {:>8} weights  NLL {:.3}  {}", p.params, p.loss, p.label);
    }
}
