//! Heart-rate estimation from synthetic PPG windows with a TEMPONet seed,
//! mirroring the PPG-Dalia benchmark of the paper at a laptop-friendly scale.
//!
//! The example trains three networks and compares them:
//! 1. the un-dilated seed,
//! 2. the hand-tuned dilation configuration,
//! 3. the architecture discovered by a PIT search,
//!
//! then deploys all three on the GAP8 model.
//!
//! Run with: `cargo run --release --example ppg_heart_rate`

use pit::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn train_fixed(
    net: &TempoNet,
    dilations: &[usize],
    train: &Dataset,
    val: &Dataset,
    epochs: usize,
) -> f32 {
    net.set_dilations(dilations);
    net.freeze_all();
    let trainer = Trainer::new(TrainConfig {
        epochs,
        batch_size: 16,
        shuffle: true,
        patience: Some(20),
        seed: 0,
    });
    let mut opt = Adam::new(net.params(), 5e-3);
    let _ = trainer.train(net, train, Some(val), LossKind::Mae, &mut opt);
    Trainer::evaluate(net, val, LossKind::Mae, 16)
}

fn main() {
    // Scaled-down TEMPONet (same topology and search space as the paper's).
    let config = TempoNetConfig::scaled(8, 64);
    let generator = PpgDaliaGenerator::new(PpgDaliaConfig {
        num_windows: 128,
        window_len: 64,
        ..PpgDaliaConfig::paper()
    });
    let (train, val, test) = generator.generate_splits();
    println!(
        "synthetic PPG-Dalia: {} train / {} val / {} test windows, mean HR {:.0} bpm",
        train.len(),
        val.len(),
        test.len(),
        PpgDaliaGenerator::mean_heart_rate(&train)
    );

    let epochs = 12;
    let mut rng = StdRng::seed_from_u64(0);

    // 1. Seed (dilation 1 everywhere).
    let seed_net = TempoNet::new(&mut rng, &config);
    let seed_mae = train_fixed(&seed_net, &config.seed_dilations(), &train, &val, epochs);
    println!(
        "seed       : {} weights, MAE {:.2} bpm",
        seed_net.effective_weights(),
        seed_mae
    );

    // 2. Hand-tuned dilations.
    let hand_net = TempoNet::new(&mut rng, &config);
    let hand_mae = train_fixed(
        &hand_net,
        &config.hand_tuned_dilations(),
        &train,
        &val,
        epochs,
    );
    println!(
        "hand-tuned : {} weights, MAE {:.2} bpm",
        hand_net.effective_weights(),
        hand_mae
    );

    // 3. PIT search from the seed.
    let pit_net = TempoNet::new(&mut rng, &config);
    let outcome = PitSearch::new(PitConfig {
        lambda: 1e-3,
        warmup_epochs: 2,
        search_epochs: 8,
        finetune_epochs: 2,
        patience: Some(10),
        batch_size: 16,
        learning_rate: 5e-3,
        gamma_learning_rate: 0.05,
        seed: 0,
    })
    .run(&pit_net, &train, &val, LossKind::Mae);
    println!(
        "PIT        : {} weights, MAE {:.2} bpm, dilations {:?}",
        outcome.effective_params, outcome.val_loss, outcome.dilations
    );

    // 4. Deploy all three on the GAP8 analytical model (paper-scale widths).
    let deployment = Deployment::new(Gap8Config::paper());
    let paper = TempoNetConfig::paper();
    for (name, dils) in [
        ("seed", config.seed_dilations()),
        ("hand-tuned", config.hand_tuned_dilations()),
        ("PIT", outcome.dilations.clone()),
    ] {
        let mut prng = StdRng::seed_from_u64(1);
        let net = TempoNet::new(&mut prng, &paper);
        net.set_dilations(&dils);
        let report = deployment.analyze(&net.descriptor());
        println!(
            "GAP8 {name:<10}: {:>8} weights, {:>6.1} ms, {:>5.1} mJ",
            net.effective_weights(),
            report.latency_ms,
            report.energy_mj
        );
    }
}
