#!/usr/bin/env sh
# Regenerates the committed benchmark baselines (BENCH_conv.json,
# BENCH_infer.json, BENCH_int8.json, BENCH_serve.json, BENCH_scale.json
# and BENCH_replay.json).
#
# Run this — never hand-edit the JSON — when a PR intentionally changes
# performance, then commit the refreshed files alongside the change. CI's
# bench-regression job diffs every push against these baselines with
# `bench_json compare --normalize --tolerance 2.0`.
#
# The baselines are always recorded with the --quick suites (the exact record
# sets CI reruns; a --full baseline would make every quick record MISSING and
# the gate permanently red) and with PIT_NUM_THREADS=1, so the numbers do
# not encode the core count of whoever refreshed them — CI pins the same.
#
# Usage: scripts/bench-baseline.sh
set -eu
if [ "$#" -gt 0 ]; then
    echo "bench-baseline.sh takes no arguments: the committed baselines must" >&2
    echo "match CI's \`bench_json --quick\` record sets (see comments)." >&2
    exit 2
fi
cd "$(dirname "$0")/.."
echo "regenerating BENCH_conv.json (release build, quick suites, 1 thread)..."
PIT_NUM_THREADS=1 cargo run --locked --release -p pit-bench --bin bench_json -- --quick --out BENCH_conv.json
echo "regenerating BENCH_infer.json (release build, infer suite, 1 thread)..."
PIT_NUM_THREADS=1 cargo run --locked --release -p pit-bench --bin bench_json -- --quick --suites infer --out BENCH_infer.json
echo "regenerating BENCH_int8.json (release build, quant suite, 1 thread)..."
PIT_NUM_THREADS=1 cargo run --locked --release -p pit-bench --bin bench_json -- --quick --suites quant --out BENCH_int8.json
echo "regenerating BENCH_serve.json (release build, serve suite, 1 thread)..."
PIT_NUM_THREADS=1 cargo run --locked --release -p pit-bench --bin bench_json -- --quick --suites serve --out BENCH_serve.json
echo "regenerating BENCH_scale.json (release build, scale suite, 1 thread)..."
PIT_NUM_THREADS=1 cargo run --locked --release -p pit-bench --bin bench_json -- --quick --suites scale --out BENCH_scale.json
# The replay baseline needs a model zoo; build the same fixed-seed quick zoo
# the CI replay job uses into a scratch dir, then record the quick replay
# population against an in-process daemon (no TCP daemon to babysit here —
# the in-process and external paths drive identical traffic).
echo "regenerating BENCH_replay.json (quick zoo + replay population, 1 thread)..."
REPLAY_ZOO=$(mktemp -d)
trap 'rm -rf "$REPLAY_ZOO"' EXIT
cargo run --locked --release -p pit-search -- --out "$REPLAY_ZOO" --quick
PIT_NUM_THREADS=1 cargo run --locked --release -p pit-replay --bin pit-replay -- \
    --zoo "$REPLAY_ZOO/zoo.json" --quick --bench-out BENCH_replay.json
echo "done. review the diff and commit BENCH_conv.json + BENCH_infer.json + BENCH_int8.json + BENCH_serve.json + BENCH_scale.json + BENCH_replay.json."
