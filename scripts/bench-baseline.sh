#!/usr/bin/env sh
# Regenerates the committed benchmark baseline (BENCH_conv.json).
#
# Run this — never hand-edit the JSON — when a PR intentionally changes
# performance, then commit the refreshed file alongside the change. CI's
# bench-regression job diffs every push against this baseline with
# `bench_json compare --normalize --tolerance 2.0`.
#
# The baseline is always recorded with the --quick suites (the exact record
# set CI reruns; a --full baseline would make every quick record MISSING and
# the gate permanently red) and with PIT_NUM_THREADS=1, so the numbers do
# not encode the core count of whoever refreshed them — CI pins the same.
#
# Usage: scripts/bench-baseline.sh
set -eu
if [ "$#" -gt 0 ]; then
    echo "bench-baseline.sh takes no arguments: the committed baseline must" >&2
    echo "match CI's \`bench_json --quick\` record set (see comments)." >&2
    exit 2
fi
cd "$(dirname "$0")/.."
echo "regenerating BENCH_conv.json (release build, quick suites, 1 thread)..."
PIT_NUM_THREADS=1 cargo run --locked --release -p pit-bench --bin bench_json -- --quick --out BENCH_conv.json
echo "done. review the diff and commit BENCH_conv.json."
