//! Derive-macro companion of the vendored `serde` stub. The traits have
//! blanket implementations, so both derives expand to nothing — they exist
//! only so `#[derive(Serialize, Deserialize)]` compiles.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
