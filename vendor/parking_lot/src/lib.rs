//! Minimal stand-in for `parking_lot`: a [`Mutex`] with the same
//! no-poisoning `lock()` signature, backed by `std::sync::Mutex`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Like `parking_lot::Mutex::lock`: no poisoning, no `Result`.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}
