//! Minimal, dependency-free stand-in for the `rand` crate (0.8-style API).
//!
//! The build environment has no access to a crates registry, so this
//! workspace vendors the narrow slice of `rand` the codebase actually uses:
//! [`rngs::StdRng`] (xoshiro256++ seeded with SplitMix64), the [`Rng`] /
//! [`SeedableRng`] traits, uniform ranges via [`Rng::gen_range`],
//! [`distributions::Uniform`] and [`seq::SliceRandom`]. Sequences are
//! deterministic for a given seed, which is all the reproduction needs.

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Core source of randomness: a stream of `u64` words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce from the "standard" distribution.
pub trait StandardSample: Sized {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Types that can be drawn uniformly from a half-open or inclusive range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "gen_range called with an empty range");
                let span = span as u128;
                // Modulo reduction: bias is negligible for the spans used here
                // and determinism is all the test-suite relies on.
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo <= hi, "gen_range called with an empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range-like arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing randomness API, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
