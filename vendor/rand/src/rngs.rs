//! Concrete RNGs. [`StdRng`] is xoshiro256++ with SplitMix64 seeding —
//! not the `rand` crate's ChaCha-based `StdRng`, but deterministic,
//! well-distributed and fast, which is what the workspace needs.

use crate::{RngCore, SeedableRng};

/// Deterministic xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n = rng.gen_range(0usize..10);
            assert!(n < 10);
            let i = rng.gen_range(-2i32..=2);
            assert!((-2..=2).contains(&i));
        }
    }
}
