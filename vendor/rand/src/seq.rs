//! Sequence helpers: Fisher–Yates [`SliceRandom::shuffle`] and
//! [`SliceRandom::choose`], mirroring `rand::seq`.

use crate::Rng;

pub trait SliceRandom {
    type Item;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}
