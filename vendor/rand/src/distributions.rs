//! Distribution sampling: the [`Uniform`] distribution and the
//! [`Distribution`] trait, mirroring `rand::distributions`.

use crate::{RngCore, SampleUniform};

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform distribution over a fixed range, reusable across draws.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    lo: T,
    hi: T,
    inclusive: bool,
}

impl<T: SampleUniform> Uniform<T> {
    pub fn new(lo: T, hi: T) -> Self {
        Uniform {
            lo,
            hi,
            inclusive: false,
        }
    }

    pub fn new_inclusive(lo: T, hi: T) -> Self {
        Uniform {
            lo,
            hi,
            inclusive: true,
        }
    }
}

impl<T: SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.lo, self.hi, self.inclusive)
    }
}
