//! Minimal stand-in for `serde`, sufficient for the `#[derive(Serialize,
//! Deserialize)]` annotations scattered through the workspace.
//!
//! Nothing in the codebase serializes yet (there is no `serde_json`
//! consumer), so [`Serialize`] and [`Deserialize`] are marker traits with
//! blanket implementations, and the derive macros (re-exported from
//! `serde_derive`) expand to nothing. When real serialization lands, this
//! crate is the seam to replace with the genuine `serde`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize {}

impl<T: ?Sized> Serialize for T {}
impl<T: ?Sized> Deserialize for T {}
