//! Minimal stand-in for `criterion`, covering the harness surface the
//! `pit-bench` benches use: `criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId` and `Bencher::iter`.
//!
//! Measurement is a fixed-iteration wall-clock loop (median of
//! `sample_size` samples), printed as one line per benchmark — no
//! statistics engine, no HTML reports. Good enough to watch relative
//! movement between commits; swap in the real criterion when a registry
//! is reachable.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, 10, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// A benchmark identifier: either a bare string or `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing loop handed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    iters_per_sample: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then time batches of `iters_per_sample` calls.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed() / self.iters_per_sample as u32;
            self.samples.push(elapsed);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
        iters_per_sample: 1,
    };
    f(&mut bencher);
    bencher.samples.sort();
    let median = bencher
        .samples
        .get(bencher.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "bench: {label:<48} median {median:>12.2?} ({} samples)",
        bencher.samples.len()
    );
}

/// Collects benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running every group (the bench target uses `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
