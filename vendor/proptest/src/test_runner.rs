//! The runner configuration and per-case RNG derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mirror of `proptest::test_runner::Config` (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Deterministic RNG for one test case: seeded from the test name and the
/// case index, so every run of the suite sees the same inputs.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ (u64::from(case) << 32) ^ u64::from(case))
}
