//! The runner configuration, per-case RNG derivation and the shrinking
//! engine behind the [`crate::proptest!`] macro.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

/// Mirror of `proptest::test_runner::Config` (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Deterministic RNG for one test case: seeded from the test name and the
/// case index, so every run of the suite sees the same inputs.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ (u64::from(case) << 32) ^ u64::from(case))
}

/// Probe budget of one shrink session: enough for binary-search halving over
/// any realistic input, small enough that a pathological strategy cannot hang
/// the suite.
pub const MAX_SHRINK_PROBES: usize = 512;

thread_local! {
    /// Set while a shrink probe (or the initial guarded run) executes, so
    /// the panic hook stays quiet for panics the runner is going to catch.
    static SILENT: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

/// Wraps the current panic hook (once, process-wide) with one that skips
/// printing while this thread is inside a guarded proptest execution.
fn install_silencing_hook() {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SILENT.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs one case body silently; `Err` carries the panic message when it
/// failed. A body that returns early via `prop_assume!` counts as passing.
fn runs_clean<V, F>(run: &mut F, value: &V) -> Result<(), String>
where
    F: FnMut(&V) -> Result<(), ()>,
{
    install_silencing_hook();
    SILENT.with(|s| s.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        let _ = run(value);
    }));
    SILENT.with(|s| s.set(false));
    result.map_err(|p| payload_message(p.as_ref()))
}

/// The pure shrink loop: starting from a value for which `fails` holds,
/// repeatedly takes the first candidate from [`Strategy::shrink`] that still
/// fails, until no candidate fails or the probe budget is spent. Returns the
/// minimal failing value and the number of probes used.
pub fn shrink_to_minimal<S: Strategy>(
    strategy: &S,
    initial: S::Value,
    fails: &mut dyn FnMut(&S::Value) -> bool,
    max_probes: usize,
) -> (S::Value, usize) {
    let mut current = initial;
    let mut probes = 0usize;
    'outer: loop {
        for cand in strategy.shrink(&current) {
            if probes >= max_probes {
                break 'outer;
            }
            probes += 1;
            if fails(&cand) {
                current = cand;
                continue 'outer;
            }
        }
        break;
    }
    (current, probes)
}

/// Executes one sampled case for the [`crate::proptest!`] macro: on failure,
/// shrinks the input to a minimal counterexample and panics with it.
pub fn check_case<S, F>(name: &str, case: u32, strategy: &S, value: S::Value, run: &mut F)
where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
    F: FnMut(&S::Value) -> Result<(), ()>,
{
    let original_msg = match runs_clean(run, &value) {
        Ok(()) => return,
        Err(msg) => msg,
    };
    let original = value.clone();
    let mut message = original_msg.clone();
    let (minimal, probes) = shrink_to_minimal(
        strategy,
        value,
        &mut |cand| match runs_clean(run, cand) {
            Ok(()) => false,
            Err(msg) => {
                message = msg;
                true
            }
        },
        MAX_SHRINK_PROBES,
    );
    panic!(
        "proptest '{name}' failed (case {case}, {probes} shrink probes)\n\
         minimal counterexample: {minimal:?}\n\
         failure: {message}\n\
         original input: {original:?}\n\
         original failure: {original_msg}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_to_minimal_finds_the_boundary_of_a_threshold_failure() {
        // "Fails whenever v >= 7": halving from 83 must land exactly on 7.
        let strat = 0usize..100;
        let (minimal, probes) = shrink_to_minimal(&strat, 83, &mut |v| *v >= 7, 512);
        assert_eq!(minimal, 7);
        assert!(probes > 0 && probes < 64, "probes {probes}");
    }

    #[test]
    fn shrink_to_minimal_respects_the_probe_budget() {
        // Only the topmost values fail, so each round burns probes on the
        // low candidates before inching down — the budget must cut it off.
        let strat = 0usize..1_000_000;
        let (minimal, probes) = shrink_to_minimal(&strat, 999_999, &mut |v| *v >= 999_000, 3);
        assert_eq!(probes, 3);
        assert!(minimal >= 999_000, "stopped at a still-failing value");
    }

    #[test]
    fn shrink_to_minimal_shrinks_vectors_by_prefix_and_element() {
        // "Fails when any element >= 5": minimal case is a single [5].
        let strat = crate::collection::vec(0usize..100, 1..10);
        let (minimal, _) = shrink_to_minimal(
            &strat,
            vec![12, 3, 40, 7],
            &mut |v| v.iter().any(|&x| x >= 5),
            512,
        );
        assert_eq!(minimal, vec![5]);
    }

    #[test]
    fn check_case_reports_the_minimal_counterexample() {
        let strat = 0usize..100;
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            check_case("boundary", 0, &strat, 83, &mut |v: &usize| {
                assert!(*v < 7, "value {v} crossed the threshold");
                Ok(())
            });
        }));
        let msg = payload_message(caught.unwrap_err().as_ref());
        assert!(
            msg.contains("minimal counterexample: 7"),
            "message did not name the minimal case: {msg}"
        );
        assert!(msg.contains("value 7 crossed the threshold"), "{msg}");
    }

    #[test]
    fn check_case_passes_silently_on_success() {
        let strat = 0usize..100;
        check_case("fine", 0, &strat, 42, &mut |_: &usize| Ok(()));
    }
}
