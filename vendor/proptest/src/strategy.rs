//! The [`Strategy`] trait and implementations for ranges and tuples.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value` and for simplifying a
/// failing value toward a minimal counterexample.
///
/// Unlike real proptest there is no lazy value tree: [`Strategy::shrink`]
/// eagerly proposes a short list of candidate simplifications (simplest
/// first), and the runner keeps the first candidate that still fails,
/// repeating until no candidate reproduces the failure.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Candidate simplifications of `value`, simplest first. Every candidate
    /// must itself be a value this strategy could have produced, and must be
    /// strictly "smaller" than `value` under some well-founded order so the
    /// shrink loop terminates. The default is no shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// Integer shrink candidates inside `[lo, v)`: the range minimum, the
/// binary-search midpoint and the immediate predecessor.
fn int_candidates(lo: i128, v: i128) -> Vec<i128> {
    let mut out = Vec::new();
    if v > lo {
        for c in [lo, lo + (v - lo) / 2, v - 1] {
            if c != v && !out.contains(&c) {
                out.push(c);
            }
        }
    }
    out
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_candidates(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_candidates(*self.start() as i128, *value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Float shrink candidates: the range minimum, zero when it lies between,
/// and the binary-search midpoint toward the minimum.
fn float_candidates(lo: f64, v: f64) -> Vec<f64> {
    let mut out: Vec<f64> = Vec::new();
    let mut push = |c: f64| {
        if c.is_finite() && c != v && (c - lo).abs() < (v - lo).abs() && !out.contains(&c) {
            out.push(c);
        }
    };
    push(lo);
    if lo <= 0.0 && v > 0.0 {
        push(0.0);
    }
    push(lo + (v - lo) / 2.0);
    out
}

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                float_candidates(self.start as f64, *value as f64)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                float_candidates(*self.start() as f64, *value as f64)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($name:ident, $idx:tt)),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }

            /// Shrinks one component at a time, the others held fixed.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!((A, 0));
impl_tuple_strategy!((A, 0), (B, 1));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6));
impl_tuple_strategy!(
    (A, 0),
    (B, 1),
    (C, 2),
    (D, 3),
    (E, 4),
    (F, 5),
    (G, 6),
    (H, 7)
);

/// A strategy producing one fixed value, like `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_shrink_halves_toward_the_low_bound() {
        let strat = 0usize..100;
        assert_eq!(strat.shrink(&83), vec![0, 41, 82]);
        assert_eq!(strat.shrink(&1), vec![0]);
        assert!(strat.shrink(&0).is_empty());
        let inclusive = 5u64..=20;
        assert_eq!(inclusive.shrink(&9), vec![5, 7, 8]);
    }

    #[test]
    fn float_shrink_moves_toward_the_low_bound() {
        let strat = -2.0f32..2.0;
        let cands = strat.shrink(&1.5);
        assert!(cands.contains(&-2.0));
        assert!(cands.contains(&0.0));
        for c in &cands {
            assert!((c + 2.0).abs() < 3.5, "candidate {c} not simpler");
        }
        assert!(strat.shrink(&-2.0).is_empty());
    }

    #[test]
    fn tuple_shrink_varies_one_component_at_a_time() {
        let strat = (0usize..10, 0usize..10);
        let cands = strat.shrink(&(4, 6));
        assert!(cands.contains(&(0, 6)));
        assert!(cands.contains(&(4, 0)));
        for (a, b) in &cands {
            assert!((*a, *b) != (4, 6));
            assert!(*a == 4 || *b == 6, "both components moved at once");
        }
    }
}
