//! The [`Strategy`] trait and implementations for ranges and tuples.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a sampler over a deterministic RNG.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// A strategy producing one fixed value, like `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}
