//! Minimal stand-in for `proptest`, covering the subset the workspace's
//! property tests use: the [`proptest!`] macro, numeric-range and tuple
//! strategies, [`collection::vec`], `ProptestConfig::with_cases`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Instead of proptest's adaptive shrinking runner, each test body simply
//! runs `cases` times with inputs drawn from a deterministic RNG (the case
//! index seeds the generator), so failures are reproducible run-to-run.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Expands each `fn name(pat in strategy, ...) { body }` into a `#[test]`
/// that samples the strategies `cases` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases {
                let mut proptest_rng = $crate::test_runner::case_rng(stringify!($name), case);
                $(let $pat = $crate::strategy::Strategy::sample(
                    &($strat),
                    &mut proptest_rng,
                );)*
                // The closure gives `prop_assume!` an early exit per case.
                let _ = (|| -> ::std::result::Result<(), ()> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Panics (failing the test) when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Panics (failing the test) when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return Ok(());
        }
    };
}
