//! Minimal stand-in for `proptest`, covering the subset the workspace's
//! property tests use: the [`proptest!`] macro, numeric-range and tuple
//! strategies, [`collection::vec`], `ProptestConfig::with_cases`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Each test body runs `cases` times with inputs drawn from a deterministic
//! RNG (the case index seeds the generator), so failures are reproducible
//! run-to-run. Unlike real proptest's lazy value trees, shrinking is eager
//! and greedy: on a failing case the runner asks the strategy for candidate
//! simplifications (binary-search halving for numbers, prefix/element
//! shrinking for vectors, componentwise for tuples), keeps the first
//! candidate that still fails, and repeats until the failure is minimal —
//! the reported counterexample names the simplest input found, not just the
//! case seed.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Expands each `fn name(pat in strategy, ...) { body }` into a `#[test]`
/// that samples the strategies `cases` times and runs the body; a failing
/// case is shrunk to a minimal counterexample before the test panics.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let strategy = ($(($strat),)*);
            for case in 0..config.cases {
                let mut proptest_rng = $crate::test_runner::case_rng(stringify!($name), case);
                let value = $crate::strategy::Strategy::sample(&strategy, &mut proptest_rng);
                // The closure gives `prop_assume!` an early exit per case;
                // failures are panics, caught and shrunk by `check_case`.
                $crate::test_runner::check_case(
                    stringify!($name),
                    case,
                    &strategy,
                    value,
                    &mut |candidate| -> ::std::result::Result<(), ()> {
                        let ($($pat,)*) = ::std::clone::Clone::clone(candidate);
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Panics (failing the test) when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Panics (failing the test) when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod macro_tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro still drives passing properties across tuple, range and
        /// vec strategies (sampling order unchanged by the shrink upgrade).
        #[test]
        fn samples_stay_inside_their_ranges(
            a in 1usize..10,
            b in -2.0f32..2.0,
            v in crate::collection::vec(0u64..100, 0..5),
        ) {
            prop_assert!((1..10).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        /// `prop_assume!` keeps skipping cases that miss the precondition.
        #[test]
        fn assume_skips_cases(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a != b);
            prop_assert!(a != b);
        }
    }
}
