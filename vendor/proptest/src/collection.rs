//! Collection strategies: `proptest::collection::vec`.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Length specification for [`vec()`]: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy generating a `Vec` whose elements come from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
