//! Collection strategies: `proptest::collection::vec`.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Length specification for [`vec()`]: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy generating a `Vec` whose elements come from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }

    /// Shrinks the length first (halve toward the minimum, then drop the last
    /// element), then each element in place through the element strategy.
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let len = value.len();
        if len > self.size.lo {
            let half = self.size.lo + (len - self.size.lo) / 2;
            if half < len {
                out.push(value[..half].to_vec());
            }
            if len - 1 != half {
                out.push(value[..len - 1].to_vec());
            }
        }
        for (i, elem) in value.iter().enumerate() {
            for cand in self.element.shrink(elem) {
                let mut next = value.clone();
                next[i] = cand;
                out.push(next);
            }
        }
        out
    }
}

/// `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_shrink_prefers_shorter_prefixes_then_elements() {
        let strat = vec(0usize..10, 1..8);
        let cands = strat.shrink(&std::vec![5, 6, 7, 8]);
        // Prefix halving toward the minimum length (1), then len - 1.
        assert_eq!(cands[0], std::vec![5, 6]);
        assert_eq!(cands[1], std::vec![5, 6, 7]);
        // Element shrinks keep the length.
        assert!(cands[2..].iter().all(|v| v.len() == 4));
        assert!(cands.contains(&std::vec![0, 6, 7, 8]));
    }

    #[test]
    fn vec_shrink_respects_the_minimum_length() {
        let strat = vec(0usize..10, 3);
        let cands = strat.shrink(&std::vec![1, 2, 3]);
        assert!(cands.iter().all(|v| v.len() == 3), "fixed size must hold");
    }
}
