//! # pit — Pruning In Time, reproduced in Rust
//!
//! This is the umbrella crate of the workspace reproducing *"Pruning In Time
//! (PIT): A Lightweight Network Architecture Optimizer for Temporal
//! Convolutional Networks"* (Risso et al., DAC 2021). It re-exports every
//! layer of the stack so applications only need a single dependency:
//!
//! * [`tensor`] — n-dimensional tensors and reverse-mode autograd;
//! * [`nn`] — layers, losses, optimizers and the training loop;
//! * [`nas`] — the PIT optimizer itself (searchable convolution, size
//!   regulariser, three-phase search, Pareto tooling);
//! * [`models`] — the ResTCN and TEMPONet seed architectures;
//! * [`infer`] — the streaming inference engine (compiled plans, stateful
//!   sessions, batch-of-sessions serving);
//! * [`datasets`] — synthetic Nottingham and PPG-Dalia workloads;
//! * [`baselines`] — ProxylessNAS-style and random-search baselines;
//! * [`hw`] — the GAP8 deployment model (int8, latency, energy).
//!
//! # Quick start
//!
//! ```
//! use pit::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // A tiny searchable TCN and a tiny synthetic benchmark.
//! let mut rng = StdRng::seed_from_u64(0);
//! let net = GenericTcn::new(&mut rng, &GenericTcnConfig::tiny());
//! assert_eq!(net.dilations(), vec![1, 1]); // the seed starts un-dilated
//! ```
//!
//! See `examples/quickstart.rs` for a complete search run.

pub use pit_baselines as baselines;
pub use pit_datasets as datasets;
pub use pit_hw as hw;
pub use pit_infer as infer;
pub use pit_models as models;
pub use pit_nas as nas;
pub use pit_nn as nn;
pub use pit_tensor as tensor;

/// The most commonly used types, re-exported in one place.
pub mod prelude {
    pub use pit_baselines::{ProxylessConfig, ProxylessSearch, ProxylessSupernet, RandomSearch};
    pub use pit_datasets::{
        NottinghamConfig, NottinghamGenerator, PpgDaliaConfig, PpgDaliaGenerator,
    };
    pub use pit_hw::{Deployment, DeploymentReport, Gap8Config};
    pub use pit_infer::{InferencePlan, Session, SessionPool};
    pub use pit_models::{
        ConcreteTcn, GenericTcn, GenericTcnConfig, NetworkDescriptor, ResTcn, ResTcnConfig,
        TempoNet, TempoNetConfig,
    };
    pub use pit_nas::{
        pareto_front, ParetoPoint, PitConfig, PitConv1d, PitOutcome, PitSearch, SearchSpace,
        SearchableNetwork, SizeRegularizer,
    };
    pub use pit_nn::{
        Adam, Batch, Dataset, EarlyStopping, Layer, LossKind, Mode, Optimizer, Sgd, TrainConfig,
        TrainReport, Trainer,
    };
    pub use pit_tensor::{Param, Shape, Tape, Tensor, Var};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_main_types() {
        let space = SearchSpace::new(vec![9, 17]);
        assert_eq!(space.num_layers(), 2);
        let t = Tensor::ones(&[2, 2]);
        assert_eq!(t.sum_all(), 4.0);
        let cfg = PitConfig::default();
        assert!(cfg.learning_rate > 0.0);
    }
}
