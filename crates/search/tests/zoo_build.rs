//! Search-to-serve end to end: a quick fixed-seed search builds an artifact
//! library, a real `pit-serve` daemon boots from its manifest, and clients
//! select every searched model by name over protocol v3.

use pit_infer::ZooManifest;
use pit_search::{lag_dataset, run_library_search, write_library, LibraryConfig, CHANNELS};
use pit_serve::{Client, Server, ServerConfig, ServerFrame};
use std::time::Duration;

const RECV_TIMEOUT: Duration = Duration::from_secs(10);

#[test]
fn quick_search_builds_a_servable_zoo() {
    let points = run_library_search(&LibraryConfig::quick());
    assert!(!points.is_empty(), "quick search yields at least one point");

    let dir = std::env::temp_dir().join(format!("pit-search-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (manifest, manifest_path) = write_library(&points, &dir).expect("library writes");
    assert!(
        manifest.models.len() >= 2,
        "f32 + int8 per point: {:?}",
        manifest.models.iter().map(|m| &m.name).collect::<Vec<_>>()
    );
    assert!(manifest.models.iter().any(|m| m.kind == "f32"));
    assert!(manifest.models.iter().any(|m| m.kind == "i8"));

    // The manifest on disk round-trips and its paths resolve.
    let (reloaded, base) = ZooManifest::load(&manifest_path).expect("manifest reloads");
    assert_eq!(reloaded.default, manifest.default);
    for entry in &reloaded.models {
        assert!(
            entry.artifact_path(&base).is_file(),
            "artifact of '{}' exists",
            entry.name
        );
    }

    // A daemon boots from it and serves every model by name.
    let server = Server::bind_zoo(&manifest_path, ServerConfig::default()).expect("zoo boots");
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut client = Client::connect(addr).expect("connect");
    let listed = client.list_models().expect("LIST_MODELS");
    assert_eq!(listed.len(), manifest.models.len());
    assert_eq!(listed.iter().filter(|m| m.default).count(), 1);

    // One stream per registry model, all on the same connection; every
    // stream gets a real emission back from its own model.
    let window = lag_dataset(1, 1).sample(0).0.data().to_vec();
    let steps = window.len() / CHANNELS;
    // Samples are [channels, time]; the wire wants time-major steps.
    let mut interleaved = Vec::with_capacity(window.len());
    for t in 0..steps {
        for c in 0..CHANNELS {
            interleaved.push(window[c * steps + t]);
        }
    }
    for (sid, model) in manifest.models.iter().enumerate() {
        client
            .open_with_model(sid as u32, &model.name)
            .expect("open by name");
        let reply = client.recv_timeout(RECV_TIMEOUT).unwrap();
        assert!(
            matches!(reply, Some(ServerFrame::Opened { .. })),
            "open '{}': {reply:?}",
            model.name
        );
    }
    for sid in 0..manifest.models.len() {
        client
            .push(sid as u32, CHANNELS as u32, &interleaved)
            .expect("push");
    }
    let mut emitted = vec![0usize; manifest.models.len()];
    while emitted.contains(&0) {
        match client
            .recv_timeout(RECV_TIMEOUT)
            .expect("transport healthy")
            .expect("emissions arrive")
        {
            ServerFrame::Emit {
                stream_id, outputs, ..
            } => {
                assert!(!outputs.is_empty());
                emitted[stream_id as usize] += 1;
            }
            ServerFrame::EmitN { entries, .. } => {
                for (stream_id, count) in &entries {
                    emitted[*stream_id as usize] += *count as usize;
                }
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
