//! # pit-search
//!
//! The search half of the search-to-serve pipeline: run the three-phase PIT
//! procedure ([`pit_nas::PitSearch`], Algorithm 1 of the DAC 2021 paper)
//! across many `(seed, λ)` combinations in parallel on the persistent
//! worker pool, keep the Pareto-optimal points of the accuracy-vs-size
//! plane, then calibrate and int8-quantize each survivor and write the
//! whole set out as an **artifact library**: a directory of `pit-arch/2`
//! model files plus a `pit-zoo/1` manifest (`zoo.json`,
//! [`pit_infer::ZooManifest`]) that `pit-serve --zoo` boots directly.
//!
//! Every Pareto point yields *two* registry models — the f32 plan and its
//! calibrated int8 lowering — so even a single-point front produces a
//! multi-model zoo with a meaningful accuracy/footprint choice per stream.
//!
//! The search task is self-contained: a synthetic multi-channel lag
//! regression ([`lag_dataset`]) whose target mixes one live channel with a
//! lag-4 echo of another, searched over a two-layer [`GenericTcn`]. Small λ
//! keeps the dense kernels; large λ prunes towards dilated, smaller models
//! — the spread that makes the Pareto front non-trivial.

use pit_infer::{compile_generic, InferencePlan, QuantizedPlan, ZooEntry, ZooManifest};
use pit_models::{GenericTcn, GenericTcnConfig};
use pit_nas::{pareto_front, PitConfig, PitOutcome, PitSearch};
use pit_nn::{Dataset, LossKind};
use pit_tensor::{init, pool, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Input channels of the synthetic search task.
pub const CHANNELS: usize = 2;
/// Timesteps per training sample.
pub const WINDOW: usize = 24;
/// RNG seed of the shared train/validation data (fixed so every combo
/// trains on identical data and val losses are comparable).
const DATA_SEED: u64 = 0xD47A;
/// RNG seed of the calibration windows used for int8 quantization.
const CAL_SEED: u64 = 0xCA11;

/// One searched, Pareto-surviving architecture: the outcome of a PIT run
/// plus its compiled streaming plan, named uniquely for the registry.
#[derive(Debug, Clone)]
pub struct SearchPoint {
    /// RNG seed the combo trained with.
    pub seed: u64,
    /// Regulariser strength λ of the combo.
    pub lambda: f32,
    /// The three-phase search outcome (sizes, losses, timings).
    pub outcome: PitOutcome,
    /// The compiled f32 plan, renamed to [`point_name`].
    pub plan: InferencePlan,
}

/// Configuration of one library build: which combos to search and how hard.
#[derive(Debug, Clone)]
pub struct LibraryConfig {
    /// `(seed, λ)` pairs, one PIT run each.
    pub combos: Vec<(u64, f32)>,
    /// Warmup epochs per run.
    pub warmup_epochs: usize,
    /// Pruning (search) epochs per run.
    pub search_epochs: usize,
    /// Fine-tuning epochs per run.
    pub finetune_epochs: usize,
    /// Training samples to synthesize.
    pub samples: usize,
    /// Parallel search jobs (capped by the worker pool and combo count).
    pub jobs: usize,
}

impl LibraryConfig {
    /// The CI-sized build: two fixed-seed combos at the λ extremes, a
    /// couple of epochs each. Finishes in seconds and still yields a
    /// ≥ 2-model library (f32 + int8 per point).
    pub fn quick() -> Self {
        Self {
            combos: vec![(17, 0.0), (29, 25.0)],
            warmup_epochs: 1,
            search_epochs: 5,
            finetune_epochs: 1,
            samples: 48,
            jobs: 2,
        }
    }

    /// The default build: two seeds across three λ decades.
    pub fn full() -> Self {
        Self {
            combos: vec![
                (17, 0.0),
                (29, 0.0),
                (17, 0.05),
                (29, 0.05),
                (17, 5.0),
                (29, 5.0),
            ],
            warmup_epochs: 2,
            search_epochs: 10,
            finetune_epochs: 3,
            samples: 96,
            jobs: pool::max_threads(),
        }
    }
}

/// The registry name of a combo's f32 model (the int8 sibling gets the
/// usual `-int8` suffix when quantized).
pub fn point_name(seed: u64, lambda: f32) -> String {
    // λ renders as a plain decimal ("0.05"), fine inside a name.
    format!("pit-s{seed}-l{lambda}")
}

/// The searched network seed: two searchable convolutions over
/// [`CHANNELS`] inputs, regression head of one output.
fn tcn_config() -> GenericTcnConfig {
    GenericTcnConfig {
        input_channels: CHANNELS,
        channels: vec![4, 4],
        rf_max: vec![9, 9],
        outputs: 1,
    }
}

/// Synthesizes the multi-channel lag-regression dataset: per sample,
/// `CHANNELS × WINDOW` uniform inputs and the scalar target
/// `mean_t(x₀[t] + x₁[t−4])` — solvable only with lag-4 context, which is
/// what makes dilation search non-degenerate.
pub fn lag_dataset(samples: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::new();
    for _ in 0..samples {
        let x: Vec<f32> = (0..CHANNELS * WINDOW)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        let (c0, c1) = x.split_at(WINDOW);
        let mut y = 0.0f32;
        for t in 0..WINDOW {
            y += c0[t] + if t >= 4 { c1[t - 4] } else { 0.0 };
        }
        y /= WINDOW as f32;
        ds.push(
            Tensor::from_vec(x, &[CHANNELS, WINDOW]).expect("sample shape"),
            Tensor::from_vec(vec![y], &[1]).expect("target shape"),
        );
    }
    ds
}

/// Runs one PIT search per combo — in parallel on the persistent worker
/// pool — and returns the Pareto-optimal points of the
/// (effective params, validation loss) plane, smallest model first.
///
/// Every combo trains on the same fixed-seed dataset, so validation losses
/// are directly comparable and the Pareto filter is meaningful.
pub fn run_library_search(cfg: &LibraryConfig) -> Vec<SearchPoint> {
    let data = lag_dataset(cfg.samples, DATA_SEED);
    let (train, val) = data.split(0.75);
    let n = cfg.combos.len();
    if n == 0 {
        return Vec::new();
    }

    // One worker-pool chunk per combo; the f32 buffer is just the carrier
    // the pool hands out disjoint indices through.
    let slots: Mutex<Vec<Option<SearchPoint>>> = Mutex::new((0..n).map(|_| None).collect());
    let threads = pool::max_threads().min(cfg.jobs.max(1)).min(n);
    let mut carrier = vec![0.0f32; n];
    pool::for_each_chunk(&mut carrier, 1, threads, |i, _| {
        let (seed, lambda) = cfg.combos[i];
        let pit_cfg = PitConfig {
            lambda,
            warmup_epochs: cfg.warmup_epochs,
            search_epochs: cfg.search_epochs,
            finetune_epochs: cfg.finetune_epochs,
            patience: None,
            batch_size: 12,
            learning_rate: 0.02,
            gamma_learning_rate: 0.05,
            seed,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let net = GenericTcn::new(&mut rng, &tcn_config());
        let outcome = PitSearch::new(pit_cfg).run(&net, &train, &val, LossKind::Mse);
        let plan = compile_generic(&net).with_name(point_name(seed, lambda));
        slots.lock().expect("search slot lock")[i] = Some(SearchPoint {
            seed,
            lambda,
            outcome,
            plan,
        });
    });
    let points: Vec<SearchPoint> = slots
        .into_inner()
        .expect("search slots")
        .into_iter()
        .flatten()
        .collect();

    // Keep the Pareto front of the accuracy-vs-size plane.
    let plane: Vec<_> = points
        .iter()
        .map(|p| p.outcome.to_pareto_point(p.plan.name()))
        .collect();
    let front = pareto_front(&plane);
    let mut kept: Vec<SearchPoint> = points
        .into_iter()
        .filter(|p| front.iter().any(|f| f.label == p.plan.name()))
        .collect();
    kept.sort_by_key(|p| p.outcome.effective_params);
    kept
}

/// Writes the artifact library for `points` into `out_dir`: per point one
/// f32 `pit-arch/2` file and one calibrated int8 file, plus the `zoo.json`
/// manifest tying them together. The default model is the f32 point with
/// the lowest validation loss.
///
/// Returns the manifest and the path of the written `zoo.json`.
///
/// # Errors
///
/// Returns a message when `points` is empty, a file cannot be written, or
/// quantization fails.
pub fn write_library(
    points: &[SearchPoint],
    out_dir: &Path,
) -> Result<(ZooManifest, PathBuf), String> {
    if points.is_empty() {
        return Err("no search points to write".into());
    }
    std::fs::create_dir_all(out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;

    let mut rng = StdRng::seed_from_u64(CAL_SEED);
    let windows: Vec<Tensor> = (0..4)
        .map(|_| init::uniform(&mut rng, &[1, CHANNELS, WINDOW], 1.0))
        .collect();

    let mut entries = Vec::with_capacity(points.len() * 2);
    for point in points {
        let plan = &point.plan;
        let f32_file = format!("{}.pit2.json", plan.name());
        std::fs::write(out_dir.join(&f32_file), plan.to_artifact_string())
            .map_err(|e| format!("cannot write {f32_file}: {e}"))?;
        entries.push(ZooEntry {
            name: plan.name().to_string(),
            path: f32_file,
            kind: "f32".into(),
            seed: point.seed,
            lambda: point.lambda,
            params: point.outcome.effective_params,
            receptive_field: plan.receptive_field(),
            val_loss: point.outcome.val_loss,
            error_bound: 0.0,
            input_channels: plan.input_channels(),
            output_dim: plan.output_dim(),
        });

        let qplan = QuantizedPlan::quantize(plan, &windows)
            .map_err(|e| format!("quantizing {}: {e}", plan.name()))?;
        let i8_file = format!("{}.pit2.json", qplan.name());
        std::fs::write(out_dir.join(&i8_file), qplan.to_artifact_string())
            .map_err(|e| format!("cannot write {i8_file}: {e}"))?;
        entries.push(ZooEntry {
            name: qplan.name().to_string(),
            path: i8_file,
            kind: "i8".into(),
            seed: point.seed,
            lambda: point.lambda,
            params: point.outcome.effective_params,
            receptive_field: qplan.receptive_field(),
            val_loss: point.outcome.val_loss,
            error_bound: qplan.error_bound(),
            input_channels: qplan.input_channels(),
            output_dim: qplan.output_dim(),
        });
    }

    let default = entries
        .iter()
        .filter(|e| e.kind == "f32")
        .min_by(|a, b| a.val_loss.total_cmp(&b.val_loss))
        .map(|e| e.name.clone())
        .expect("at least one f32 entry");
    let manifest = ZooManifest::new(default, entries)?;
    let manifest_path = manifest.save(out_dir)?;
    Ok((manifest, manifest_path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_dataset_is_deterministic_and_shaped() {
        let a = lag_dataset(8, 3);
        let b = lag_dataset(8, 3);
        assert_eq!(a.len(), 8);
        let (xa, ya) = a.sample(0);
        let (xb, yb) = b.sample(0);
        assert_eq!(xa.dims(), &[CHANNELS, WINDOW]);
        assert_eq!(ya.dims(), &[1]);
        assert_eq!(xa.data(), xb.data());
        assert_eq!(ya.data(), yb.data());
    }

    #[test]
    fn point_names_are_unique_per_combo() {
        let quick = LibraryConfig::quick();
        let names: Vec<String> = quick
            .combos
            .iter()
            .map(|&(s, l)| point_name(s, l))
            .collect();
        let mut deduped = names.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "{names:?}");
    }

    #[test]
    fn empty_library_is_refused() {
        let err = write_library(&[], Path::new("/tmp/never-created")).unwrap_err();
        assert!(err.contains("no search points"), "{err}");
    }
}
