//! `pit-search` — run parallel multi-seed PIT searches and emit an artifact
//! library a `pit-serve --zoo` daemon boots directly.
//!
//! ```text
//! pit-search --out DIR [--quick] [--jobs N]
//!
//!   --out DIR    directory to write the library into (created if missing)
//!   --quick      CI-sized build: 2 fixed-seed combos, a few epochs
//!   --jobs N     parallel search jobs (default: worker-pool width)
//! ```
//!
//! The library is a set of `pit-arch/2` files (one f32 + one int8 per
//! Pareto-optimal searched point) plus `zoo.json`, a `pit-zoo/1` manifest
//! naming every model with its size / receptive-field / error-bound
//! metadata and a default selection.

use pit_search::{run_library_search, write_library, LibraryConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: pit-search --out DIR [--quick] [--jobs N]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut out: Option<PathBuf> = None;
    let mut quick = false;
    let mut jobs: Option<usize> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--out" => match argv.next() {
                Some(dir) => out = Some(PathBuf::from(dir)),
                None => usage(),
            },
            "--quick" => quick = true,
            "--jobs" => match argv.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => jobs = Some(n),
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("pit-search: unknown argument '{other}'");
                usage();
            }
        }
    }
    let Some(out) = out else { usage() };

    let mut cfg = if quick {
        LibraryConfig::quick()
    } else {
        LibraryConfig::full()
    };
    if let Some(n) = jobs {
        cfg.jobs = n;
    }

    eprintln!(
        "pit-search: {} combos ({} jobs), {}+{}+{} epochs",
        cfg.combos.len(),
        cfg.jobs,
        cfg.warmup_epochs,
        cfg.search_epochs,
        cfg.finetune_epochs,
    );
    let points = run_library_search(&cfg);
    eprintln!("pit-search: {} Pareto-optimal points", points.len());
    for p in &points {
        eprintln!(
            "  {:24} {} params  val_loss {:.5}  (seed {}, lambda {})",
            p.plan.name(),
            p.outcome.effective_params,
            p.outcome.val_loss,
            p.seed,
            p.lambda,
        );
    }

    match write_library(&points, &out) {
        Ok((manifest, path)) => {
            println!(
                "wrote {} models to {} (default: {})",
                manifest.models.len(),
                path.display(),
                manifest.default,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pit-search: {e}");
            ExitCode::FAILURE
        }
    }
}
