//! Synthetic PPG heart-rate dataset (PPG-Dalia stand-in).
//!
//! Each sample mimics one 8-second window of the PPG-Dalia protocol:
//! channel 0 is a wrist PPG signal, channels 1–3 are a 3-axis accelerometer,
//! and the target is the mean heart rate of the window in bpm. The PPG
//! channel contains a pseudo-periodic cardiac component at the instantaneous
//! heart rate (with a second harmonic), a motion artefact proportional to
//! the accelerometer magnitude and white noise. Heart rate drifts slowly
//! across consecutive windows of the same synthetic subject, as it does in
//! the real recordings.

use pit_nn::Dataset;
use pit_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic PPG generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PpgDaliaConfig {
    /// Number of generated windows.
    pub num_windows: usize,
    /// Samples per window (8 s at 32 Hz = 256 in the real protocol).
    pub window_len: usize,
    /// Sampling rate in Hz.
    pub sample_rate: f32,
    /// Number of synthetic subjects (heart-rate trajectories).
    pub subjects: usize,
    /// Minimum heart rate in bpm.
    pub hr_min: f32,
    /// Maximum heart rate in bpm.
    pub hr_max: f32,
    /// Standard deviation of the per-window heart-rate drift in bpm.
    pub hr_drift: f32,
    /// Amplitude of the motion artefact added to the PPG channel.
    pub motion_level: f32,
    /// Standard deviation of the additive white noise.
    pub noise_level: f32,
    /// RNG seed.
    pub seed: u64,
}

impl PpgDaliaConfig {
    /// Paper-shaped configuration: 256-sample windows at 32 Hz, 15 subjects.
    pub fn paper() -> Self {
        Self {
            num_windows: 512,
            window_len: 256,
            sample_rate: 32.0,
            subjects: 15,
            hr_min: 50.0,
            hr_max: 180.0,
            hr_drift: 2.0,
            motion_level: 0.4,
            noise_level: 0.2,
            seed: 0,
        }
    }

    /// A small configuration for fast tests and examples.
    pub fn tiny() -> Self {
        Self {
            num_windows: 64,
            window_len: 64,
            subjects: 4,
            ..Self::paper()
        }
    }
}

impl Default for PpgDaliaConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Deterministic generator of synthetic PPG + accelerometer windows.
#[derive(Debug, Clone)]
pub struct PpgDaliaGenerator {
    config: PpgDaliaConfig,
}

impl PpgDaliaGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if any size is zero or the heart-rate range is empty.
    pub fn new(config: PpgDaliaConfig) -> Self {
        assert!(config.num_windows > 0 && config.window_len > 0 && config.subjects > 0);
        assert!(config.hr_min < config.hr_max, "empty heart-rate range");
        assert!(config.sample_rate > 0.0, "sample rate must be positive");
        Self { config }
    }

    /// The generator configuration.
    pub fn config(&self) -> &PpgDaliaConfig {
        &self.config
    }

    /// Number of input channels (PPG + 3-axis accelerometer).
    pub const CHANNELS: usize = 4;

    fn window(&self, rng: &mut StdRng, hr_bpm: f32, phase0: f32) -> (Vec<f32>, f32) {
        let cfg = &self.config;
        let t_len = cfg.window_len;
        let dt = 1.0 / cfg.sample_rate;
        let hr_hz = hr_bpm / 60.0;

        // 3-axis accelerometer: smoothed random walks (arm motion).
        let mut accel = vec![0.0f32; 3 * t_len];
        for axis in 0..3 {
            let mut v = 0.0f32;
            let mut x = 0.0f32;
            for t in 0..t_len {
                v = 0.9 * v + 0.1 * rng.gen_range(-1.0f32..1.0);
                x = 0.95 * x + v * 0.3;
                accel[axis * t_len + t] = x;
            }
        }

        // PPG channel: cardiac pulse + harmonic + motion artefact + noise.
        let mut ppg = vec![0.0f32; t_len];
        let mut phase = phase0;
        for (t, slot) in ppg.iter_mut().enumerate() {
            phase += 2.0 * std::f32::consts::PI * hr_hz * dt;
            let cardiac = phase.sin() + 0.35 * (2.0 * phase).sin();
            let motion: f32 = (0..3).map(|a| accel[a * t_len + t]).sum::<f32>() / 3.0;
            let noise = rng.gen_range(-1.0f32..1.0) * cfg.noise_level;
            *slot = cardiac + cfg.motion_level * motion + noise;
        }

        let mut sample = Vec::with_capacity(Self::CHANNELS * t_len);
        sample.extend_from_slice(&ppg);
        sample.extend_from_slice(&accel);
        (sample, phase)
    }

    /// Generates the full supervised dataset: inputs `[4, window_len]` and
    /// scalar heart-rate targets `[1]` in bpm.
    pub fn generate(&self) -> Dataset {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut ds = Dataset::new();
        let windows_per_subject = cfg.num_windows.div_ceil(cfg.subjects);
        let mut produced = 0usize;
        for _subject in 0..cfg.subjects {
            // Each subject starts from its own baseline heart rate and drifts.
            let mut hr = rng.gen_range(cfg.hr_min..cfg.hr_max);
            let mut phase = rng.gen_range(0.0..std::f32::consts::TAU);
            for _ in 0..windows_per_subject {
                if produced >= cfg.num_windows {
                    break;
                }
                let drift = if cfg.hr_drift > 0.0 {
                    rng.gen_range(-cfg.hr_drift..cfg.hr_drift)
                } else {
                    0.0
                };
                hr = (hr + drift).clamp(cfg.hr_min, cfg.hr_max);
                let (sample, next_phase) = self.window(&mut rng, hr, phase);
                phase = next_phase;
                ds.push(
                    Tensor::from_vec(sample, &[Self::CHANNELS, cfg.window_len])
                        .expect("input shape"),
                    Tensor::from_vec(vec![hr], &[1]).expect("target shape"),
                );
                produced += 1;
            }
        }
        ds
    }

    /// Generates and splits the data into train / validation / test sets
    /// (70 / 15 / 15).
    pub fn generate_splits(&self) -> (Dataset, Dataset, Dataset) {
        let all = self.generate();
        let (train, rest) = all.split(0.7);
        let (val, test) = rest.split(0.5);
        (train, val, test)
    }

    /// The mean heart rate of the dataset's targets, in bpm (useful as a
    /// trivial-predictor baseline when reporting MAE).
    pub fn mean_heart_rate(ds: &Dataset) -> f32 {
        if ds.is_empty() {
            return 0.0;
        }
        let sum: f32 = (0..ds.len()).map(|i| ds.sample(i).1.data()[0]).sum();
        sum / ds.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_config() {
        let gen = PpgDaliaGenerator::new(PpgDaliaConfig::tiny());
        let ds = gen.generate();
        assert_eq!(ds.len(), 64);
        assert_eq!(ds.input_dims().unwrap(), vec![4, 64]);
        assert_eq!(ds.target_dims().unwrap(), vec![1]);
    }

    #[test]
    fn heart_rates_within_configured_range() {
        let cfg = PpgDaliaConfig::tiny();
        let gen = PpgDaliaGenerator::new(cfg.clone());
        let ds = gen.generate();
        for i in 0..ds.len() {
            let hr = ds.sample(i).1.data()[0];
            assert!(hr >= cfg.hr_min && hr <= cfg.hr_max, "hr {hr} out of range");
        }
    }

    #[test]
    fn ppg_channel_has_cardiac_periodicity() {
        // With no motion and no noise, the autocorrelation of the PPG channel
        // at the heart-rate lag should be strongly positive.
        let cfg = PpgDaliaConfig {
            motion_level: 0.0,
            noise_level: 0.0,
            hr_min: 119.0,
            hr_max: 121.0,
            hr_drift: 0.0,
            num_windows: 4,
            window_len: 128,
            subjects: 1,
            ..PpgDaliaConfig::tiny()
        };
        let gen = PpgDaliaGenerator::new(cfg.clone());
        let ds = gen.generate();
        let (x, y) = ds.sample(0);
        let hr = y.data()[0];
        let lag = (60.0 / hr * cfg.sample_rate).round() as usize; // one beat in samples
        let t_len = cfg.window_len;
        let ppg: Vec<f32> = (0..t_len).map(|t| x.at(&[0, t]).unwrap()).collect();
        let mut corr = 0.0f32;
        let mut norm = 0.0f32;
        for t in lag..t_len {
            corr += ppg[t] * ppg[t - lag];
            norm += ppg[t] * ppg[t];
        }
        assert!(
            corr / norm > 0.5,
            "autocorrelation at one beat = {}",
            corr / norm
        );
    }

    #[test]
    fn deterministic_with_same_seed() {
        let a = PpgDaliaGenerator::new(PpgDaliaConfig::tiny()).generate();
        let b = PpgDaliaGenerator::new(PpgDaliaConfig::tiny()).generate();
        assert_eq!(a.sample(5).0.data(), b.sample(5).0.data());
        assert_eq!(a.sample(5).1.data(), b.sample(5).1.data());
    }

    #[test]
    fn consecutive_windows_of_a_subject_have_similar_hr() {
        let cfg = PpgDaliaConfig {
            subjects: 1,
            hr_drift: 1.0,
            num_windows: 16,
            ..PpgDaliaConfig::tiny()
        };
        let gen = PpgDaliaGenerator::new(cfg);
        let ds = gen.generate();
        for i in 1..ds.len() {
            let prev = ds.sample(i - 1).1.data()[0];
            let cur = ds.sample(i).1.data()[0];
            assert!((prev - cur).abs() <= 1.0 + 1e-4);
        }
    }

    #[test]
    fn mean_heart_rate_helper() {
        let gen = PpgDaliaGenerator::new(PpgDaliaConfig::tiny());
        let ds = gen.generate();
        let mean = PpgDaliaGenerator::mean_heart_rate(&ds);
        assert!(mean > 50.0 && mean < 180.0);
        assert_eq!(PpgDaliaGenerator::mean_heart_rate(&Dataset::new()), 0.0);
    }

    #[test]
    fn splits_partition_the_data() {
        let gen = PpgDaliaGenerator::new(PpgDaliaConfig::tiny());
        let (train, val, test) = gen.generate_splits();
        assert_eq!(train.len() + val.len() + test.len(), 64);
    }

    #[test]
    #[should_panic]
    fn invalid_hr_range_panics() {
        let _ = PpgDaliaGenerator::new(PpgDaliaConfig {
            hr_min: 100.0,
            hr_max: 90.0,
            ..PpgDaliaConfig::tiny()
        });
    }
}
