//! # pit-datasets
//!
//! Synthetic stand-ins for the two benchmarks of the PIT paper.
//!
//! The paper evaluates on the **Nottingham** polyphonic-music dataset
//! (88-key piano rolls, frame-level NLL) and on **PPG-Dalia** (wrist PPG +
//! 3-axis accelerometer, heart-rate MAE). Neither dataset can be shipped
//! with this reproduction, so this crate provides generators that produce
//! workloads with the same tensor shapes, the same loss/metric and — most
//! importantly — the same *temporal structure knob* the experiments probe:
//! how far back in time a model must look (and therefore how much dilation
//! helps) is controlled explicitly.
//!
//! * [`nottingham`] — Markov-chain chord progressions and melodies rendered
//!   onto an 88-bit piano roll; the task is next-frame prediction with
//!   frame-level NLL, exactly as in Bai et al.;
//! * [`ppg_dalia`] — a pseudo-periodic cardiac component (drifting heart
//!   rate), motion artefacts correlated with a synthetic accelerometer and
//!   noise; the task is per-window heart-rate regression with MAE in bpm.
//!
//! Both generators are deterministic given their seed, so every experiment
//! in the benchmark harness is reproducible.

pub mod nottingham;
pub mod ppg_dalia;

pub use nottingham::{NottinghamConfig, NottinghamGenerator};
pub use ppg_dalia::{PpgDaliaConfig, PpgDaliaGenerator};
