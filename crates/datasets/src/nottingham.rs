//! Synthetic polyphonic-music generator (Nottingham stand-in).
//!
//! Each sample is a piano roll of `num_keys` binary key states over
//! `seq_len + 1` frames, generated from:
//!
//! * a chord progression that changes every `chord_period` frames and cycles
//!   with a long period (the long-range temporal structure that dilation is
//!   supposed to capture cheaply);
//! * a melody that walks over the scale of the active chord;
//! * a small amount of random note noise.
//!
//! The supervised task is next-frame prediction: the input is frames
//! `0 .. T` and the target is frames `1 .. T+1`, evaluated with the
//! frame-level NLL (sum of the per-key binary cross-entropies), exactly the
//! metric reported for the Nottingham benchmark.

use pit_nn::Dataset;
use pit_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic polyphonic-music generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NottinghamConfig {
    /// Number of piano keys (88 for the real dataset).
    pub num_keys: usize,
    /// Number of frames per training sample (the network sees `seq_len`
    /// input frames and predicts the next frame at every position).
    pub seq_len: usize,
    /// Number of generated sequences.
    pub num_sequences: usize,
    /// Frames between chord changes: the long-range correlation length of
    /// the data. Larger values need a larger receptive field to predict well.
    pub chord_period: usize,
    /// Number of distinct chords in the cycled progression.
    pub progression_length: usize,
    /// Probability of a random spurious note per frame.
    pub note_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl NottinghamConfig {
    /// Paper-shaped configuration: 88 keys, 128-frame windows.
    pub fn paper() -> Self {
        Self {
            num_keys: 88,
            seq_len: 128,
            num_sequences: 200,
            chord_period: 16,
            progression_length: 8,
            note_noise: 0.01,
            seed: 0,
        }
    }

    /// A small configuration for fast tests and examples.
    pub fn tiny() -> Self {
        Self {
            num_keys: 24,
            seq_len: 32,
            num_sequences: 32,
            chord_period: 8,
            progression_length: 4,
            note_noise: 0.01,
            seed: 0,
        }
    }
}

impl Default for NottinghamConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Deterministic generator of synthetic piano-roll sequences.
#[derive(Debug, Clone)]
pub struct NottinghamGenerator {
    config: NottinghamConfig,
}

impl NottinghamGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if any size in the configuration is zero.
    pub fn new(config: NottinghamConfig) -> Self {
        assert!(config.num_keys >= 13, "need at least one octave of keys");
        assert!(
            config.seq_len > 0 && config.num_sequences > 0,
            "sizes must be positive"
        );
        assert!(
            config.chord_period > 0 && config.progression_length > 0,
            "periods must be positive"
        );
        Self { config }
    }

    /// The generator configuration.
    pub fn config(&self) -> &NottinghamConfig {
        &self.config
    }

    /// Generates one piano roll of `frames` frames as a flat row-major
    /// `[num_keys, frames]` vector of 0/1 values.
    fn piano_roll(&self, rng: &mut StdRng, frames: usize) -> Vec<f32> {
        let cfg = &self.config;
        let keys = cfg.num_keys;
        // A fixed progression of chord roots (as key offsets), regenerated per
        // sequence so different tunes differ, cycled with the same period.
        let progression: Vec<usize> = (0..cfg.progression_length)
            .map(|_| rng.gen_range(0..keys.saturating_sub(12)))
            .collect();
        let mut roll = vec![0.0f32; keys * frames];
        let mut melody = rng.gen_range(0..keys);
        for t in 0..frames {
            let chord_idx = (t / cfg.chord_period) % cfg.progression_length;
            let root = progression[chord_idx];
            // Triad: root, major third, fifth.
            for &offset in &[0usize, 4, 7] {
                let key = root + offset;
                if key < keys {
                    roll[key * frames + t] = 1.0;
                }
            }
            // Melody: random walk biased towards chord tones.
            let step: i64 = rng.gen_range(-2..=2);
            melody = (melody as i64 + step).clamp(0, keys as i64 - 1) as usize;
            if rng.gen_bool(0.7) {
                // Snap to the nearest chord tone half of the time.
                let target = root + [0usize, 4, 7][rng.gen_range(0..3)];
                if target < keys {
                    melody = target;
                }
            }
            roll[melody * frames + t] = 1.0;
            // Sparse random noise notes.
            if rng.gen_bool(cfg.note_noise) {
                let key = rng.gen_range(0..keys);
                roll[key * frames + t] = 1.0;
            }
        }
        roll
    }

    /// Generates the full supervised dataset: inputs `[num_keys, seq_len]`
    /// and next-frame targets `[num_keys, seq_len]`.
    pub fn generate(&self) -> Dataset {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut ds = Dataset::new();
        let frames = cfg.seq_len + 1;
        for _ in 0..cfg.num_sequences {
            let roll = self.piano_roll(&mut rng, frames);
            let mut input = vec![0.0f32; cfg.num_keys * cfg.seq_len];
            let mut target = vec![0.0f32; cfg.num_keys * cfg.seq_len];
            for k in 0..cfg.num_keys {
                for t in 0..cfg.seq_len {
                    input[k * cfg.seq_len + t] = roll[k * frames + t];
                    target[k * cfg.seq_len + t] = roll[k * frames + t + 1];
                }
            }
            ds.push(
                Tensor::from_vec(input, &[cfg.num_keys, cfg.seq_len]).expect("input shape"),
                Tensor::from_vec(target, &[cfg.num_keys, cfg.seq_len]).expect("target shape"),
            );
        }
        ds
    }

    /// Generates and splits the data into train / validation / test sets
    /// (70 / 15 / 15).
    pub fn generate_splits(&self) -> (Dataset, Dataset, Dataset) {
        let all = self.generate();
        let (train, rest) = all.split(0.7);
        let (val, test) = rest.split(0.5);
        (train, val, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_config() {
        let gen = NottinghamGenerator::new(NottinghamConfig::tiny());
        let ds = gen.generate();
        assert_eq!(ds.len(), 32);
        assert_eq!(ds.input_dims().unwrap(), vec![24, 32]);
        assert_eq!(ds.target_dims().unwrap(), vec![24, 32]);
    }

    #[test]
    fn values_are_binary() {
        let gen = NottinghamGenerator::new(NottinghamConfig::tiny());
        let ds = gen.generate();
        let (x, y) = ds.sample(0);
        assert!(x.data().iter().all(|&v| v == 0.0 || v == 1.0));
        assert!(y.data().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn target_is_shifted_input() {
        // target[:, t] must equal the next input frame input[:, t+1].
        let gen = NottinghamGenerator::new(NottinghamConfig::tiny());
        let ds = gen.generate();
        let (x, y) = ds.sample(0);
        let (keys, t_len) = (24, 32);
        for k in 0..keys {
            for t in 0..t_len - 1 {
                assert_eq!(
                    y.at(&[k, t]).unwrap(),
                    x.at(&[k, t + 1]).unwrap(),
                    "key {k} frame {t}"
                );
            }
        }
    }

    #[test]
    fn deterministic_with_same_seed() {
        let a = NottinghamGenerator::new(NottinghamConfig::tiny()).generate();
        let b = NottinghamGenerator::new(NottinghamConfig::tiny()).generate();
        assert_eq!(a.sample(3).0.data(), b.sample(3).0.data());
        let c = NottinghamGenerator::new(NottinghamConfig {
            seed: 7,
            ..NottinghamConfig::tiny()
        })
        .generate();
        assert_ne!(a.sample(3).0.data(), c.sample(3).0.data());
    }

    #[test]
    fn chords_persist_for_chord_period() {
        // Within one chord period the chord keys stay on, so consecutive
        // frames are highly correlated; across the boundary they change.
        let cfg = NottinghamConfig {
            note_noise: 0.0,
            ..NottinghamConfig::tiny()
        };
        let gen = NottinghamGenerator::new(cfg.clone());
        let ds = gen.generate();
        let (x, _) = ds.sample(0);
        // Count active keys per frame: chords always contribute up to 3 notes.
        for t in 0..cfg.seq_len {
            let active: f32 = (0..cfg.num_keys).map(|k| x.at(&[k, t]).unwrap()).sum();
            assert!(
                (1.0..=4.0).contains(&active),
                "frame {t} has {active} notes"
            );
        }
    }

    #[test]
    fn splits_partition_the_data() {
        let gen = NottinghamGenerator::new(NottinghamConfig {
            num_sequences: 40,
            ..NottinghamConfig::tiny()
        });
        let (train, val, test) = gen.generate_splits();
        assert_eq!(train.len() + val.len() + test.len(), 40);
        assert!(train.len() > val.len());
    }

    #[test]
    #[should_panic]
    fn too_few_keys_panics() {
        let _ = NottinghamGenerator::new(NottinghamConfig {
            num_keys: 4,
            ..NottinghamConfig::tiny()
        });
    }
}
