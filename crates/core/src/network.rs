//! The trait searchable models implement, plus network-level accounting.

use crate::conv::PitConv1d;
use pit_nn::Layer;

/// A network whose temporal convolutions are [`PitConv1d`] layers and can
/// therefore be optimised by [`crate::PitSearch`].
///
/// Implementors expose their searchable convolutions in network order so
/// that extracted dilation vectors match the per-layer tables of the paper
/// (Table I).
pub trait SearchableNetwork: Layer {
    /// The searchable convolutions of the network, in topological order.
    fn pit_layers(&self) -> Vec<&PitConv1d>;

    /// Current dilation of every searchable convolution, in network order.
    fn dilations(&self) -> Vec<usize> {
        self.pit_layers().iter().map(|l| l.dilation()).collect()
    }

    /// Applies an explicit dilation configuration to the searchable layers.
    ///
    /// # Panics
    ///
    /// Panics if the number of dilations does not match the number of
    /// searchable layers, or any dilation is invalid for its layer.
    fn set_dilations(&self, dilations: &[usize]) {
        let layers = self.pit_layers();
        assert_eq!(
            layers.len(),
            dilations.len(),
            "expected {} dilations, got {}",
            layers.len(),
            dilations.len()
        );
        for (layer, &d) in layers.iter().zip(dilations.iter()) {
            layer.set_dilation(d);
        }
    }

    /// Total number of weights of the network before pruning.
    fn total_weights(&self) -> usize {
        self.num_weights()
    }

    /// Number of weights that survive the current dilation configuration
    /// (total weights minus the convolution taps removed by the masks).
    ///
    /// This is the "# parameters" axis of Fig. 4 and the "# weights" column
    /// of Tables II and III.
    fn effective_weights(&self) -> usize {
        let masked: usize = self.pit_layers().iter().map(|l| l.masked_weights()).sum();
        self.num_weights() - masked - self.gamma_weights()
    }

    /// Number of γ search parameters (they are not part of the deployed model).
    fn gamma_weights(&self) -> usize {
        self.pit_layers()
            .iter()
            .map(|l| l.gamma_param().len())
            .sum()
    }

    /// Freezes every searchable layer (entering the fine-tuning phase).
    fn freeze_all(&self) {
        for layer in self.pit_layers() {
            layer.freeze();
        }
    }

    /// Unfreezes every searchable layer.
    fn unfreeze_all(&self) {
        for layer in self.pit_layers() {
            layer.unfreeze();
        }
    }

    /// One-line summary of the architecture and its current dilations.
    fn architecture_summary(&self) -> String {
        format!(
            "dilations={:?}, effective weights={}, total weights={}",
            self.dilations(),
            self.effective_weights(),
            self.total_weights()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_nn::{Layer, Mode};
    use pit_tensor::{Param, Tape, Var};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A minimal two-layer searchable network used by the unit tests.
    struct TinyNet {
        a: PitConv1d,
        b: PitConv1d,
    }

    impl TinyNet {
        fn new() -> Self {
            let mut rng = StdRng::seed_from_u64(0);
            Self {
                a: PitConv1d::new(&mut rng, 1, 2, 9, "a"),
                b: PitConv1d::new(&mut rng, 2, 1, 5, "b"),
            }
        }
    }

    impl Layer for TinyNet {
        fn forward(&self, tape: &mut Tape, input: Var, mode: Mode) -> Var {
            let h = self.a.forward(tape, input, mode);
            let h = tape.relu(h);
            self.b.forward(tape, h, mode)
        }

        fn params(&self) -> Vec<Param> {
            let mut p = self.a.params();
            p.extend(self.b.params());
            p
        }
    }

    impl SearchableNetwork for TinyNet {
        fn pit_layers(&self) -> Vec<&PitConv1d> {
            vec![&self.a, &self.b]
        }
    }

    #[test]
    fn dilations_and_set_dilations() {
        let net = TinyNet::new();
        assert_eq!(net.dilations(), vec![1, 1]);
        net.set_dilations(&[4, 2]);
        assert_eq!(net.dilations(), vec![4, 2]);
    }

    #[test]
    #[should_panic]
    fn set_dilations_wrong_length_panics() {
        TinyNet::new().set_dilations(&[1]);
    }

    #[test]
    fn effective_weights_shrink_with_dilation() {
        let net = TinyNet::new();
        let dense = net.effective_weights();
        // a: 1*2*9 + 2 = 20 conv weights, b: 2*1*5 + 1 = 11 -> 31 (gammas excluded)
        assert_eq!(dense, 31);
        net.set_dilations(&[8, 4]);
        let pruned = net.effective_weights();
        // a alive taps: 2 -> 1*2*2+2 = 6 ; b alive taps: 2 -> 2*1*2+1 = 5
        assert_eq!(pruned, 11);
        assert!(pruned < dense);
    }

    #[test]
    fn freeze_all_marks_layers_frozen() {
        let net = TinyNet::new();
        net.freeze_all();
        assert!(net.pit_layers().iter().all(|l| l.is_frozen()));
        net.unfreeze_all();
        assert!(net.pit_layers().iter().all(|l| !l.is_frozen()));
    }

    #[test]
    fn summary_mentions_dilations() {
        let net = TinyNet::new();
        net.set_dilations(&[2, 1]);
        let s = net.architecture_summary();
        assert!(s.contains("[2, 1]"));
    }
}
