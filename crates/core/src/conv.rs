//! The searchable PIT convolution layer.

use pit_nn::{Layer, Mode};
use pit_tensor::ops::mask::gamma_len;
use pit_tensor::{init, Param, Tape, Tensor, Var};
use rand::Rng;

/// Default binarisation threshold δ of Eq. 2 (the paper fixes it to 0.5).
pub const DEFAULT_THRESHOLD: f32 = 0.5;

/// A causal 1-D convolution whose time taps are gated by trainable γ
/// parameters, implementing Sec. III-A of the PIT paper.
///
/// The layer starts from a maximally sized filter (`rf_max` taps, dilation 1)
/// and learns, through the binarised γ vector and its expansion into the
/// time mask `M`, which regular power-of-two dilation to use. After the
/// search, [`PitConv1d::freeze`] locks the γ values so the fine-tuning phase
/// only updates the weights.
pub struct PitConv1d {
    weight: Param,
    bias: Param,
    /// Trainable tail of the γ vector (γ₁ … γ_{L−1}); γ₀ ≡ 1.
    gamma: Param,
    in_channels: usize,
    out_channels: usize,
    rf_max: usize,
    threshold: f32,
    name: String,
}

impl PitConv1d {
    /// Creates a searchable convolution with a maximum receptive field of
    /// `rf_max` taps. Weights use Kaiming-uniform initialisation, the bias
    /// starts at zero and every γ starts at 1 (dilation 1, nothing pruned).
    ///
    /// # Panics
    ///
    /// Panics if any size is zero or `rf_max < 2`.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        in_channels: usize,
        out_channels: usize,
        rf_max: usize,
        name: impl Into<String>,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0,
            "channel counts must be positive"
        );
        assert!(
            rf_max >= 2,
            "rf_max must be at least 2 for a searchable convolution"
        );
        let name = name.into();
        let fan_in = in_channels * rf_max;
        let weight = Param::new(
            init::kaiming_uniform(rng, &[out_channels, in_channels, rf_max], fan_in),
            format!("{name}.weight"),
        );
        let bias = Param::new(Tensor::zeros(&[out_channels]), format!("{name}.bias"));
        let l = gamma_len(rf_max);
        let gamma = Param::new(Tensor::ones(&[l - 1]), format!("{name}.gamma"));
        Self {
            weight,
            bias,
            gamma,
            in_channels,
            out_channels,
            rf_max,
            threshold: DEFAULT_THRESHOLD,
            name,
        }
    }

    /// The layer's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Maximum receptive field (number of taps of the un-pruned filter).
    pub fn rf_max(&self) -> usize {
        self.rf_max
    }

    /// Number of γ parameters including the constant γ₀.
    pub fn gamma_count(&self) -> usize {
        gamma_len(self.rf_max)
    }

    /// The trainable γ tail parameter (γ₁ … γ_{L−1}).
    pub fn gamma_param(&self) -> &Param {
        &self.gamma
    }

    /// The convolution weight parameter (`[C_out, C_in, rf_max]`).
    pub fn weight_param(&self) -> &Param {
        &self.weight
    }

    /// The bias parameter (`[C_out]`).
    pub fn bias_param(&self) -> &Param {
        &self.bias
    }

    /// Binarised γ tail under the current threshold.
    pub fn binarized_gamma(&self) -> Vec<f32> {
        self.gamma
            .value()
            .data()
            .iter()
            .map(|&g| if g >= self.threshold { 1.0 } else { 0.0 })
            .collect()
    }

    /// The dilation encoded by the current (binarised) γ values:
    /// `d = 2^(L−1−p)` where `p` is the length of the all-ones prefix of the
    /// γ tail.
    pub fn dilation(&self) -> usize {
        let bin = self.binarized_gamma();
        let l = self.gamma_count();
        let prefix = bin.iter().take_while(|&&b| b >= 0.5).count();
        1usize << (l - 1 - prefix)
    }

    /// Number of filter taps kept alive by the current dilation:
    /// `⌊(rf_max − 1)/d⌋ + 1`.
    pub fn alive_taps(&self) -> usize {
        (self.rf_max - 1) / self.dilation() + 1
    }

    /// Number of weights of the layer that survive the current mask
    /// (convolution weights of alive taps plus the bias).
    pub fn effective_weights(&self) -> usize {
        self.out_channels * self.in_channels * self.alive_taps() + self.out_channels
    }

    /// Number of convolution weights removed by the current mask.
    pub fn masked_weights(&self) -> usize {
        self.out_channels * self.in_channels * (self.rf_max - self.alive_taps())
    }

    /// Sets the γ tail to an explicit dilation (used to replay hand-tuned or
    /// externally chosen architectures through the same layer).
    ///
    /// # Panics
    ///
    /// Panics if `dilation` is not a power of two or exceeds the maximum
    /// supported dilation `2^(L−1)`.
    pub fn set_dilation(&self, dilation: usize) {
        assert!(
            dilation.is_power_of_two(),
            "dilation must be a power of two, got {dilation}"
        );
        let l = self.gamma_count();
        let max_d = 1usize << (l - 1);
        assert!(
            dilation <= max_d,
            "dilation {dilation} exceeds maximum supported {max_d}"
        );
        let prefix = l - 1 - dilation.trailing_zeros() as usize;
        let mut tail = vec![0.0f32; l - 1];
        for slot in tail.iter_mut().take(prefix) {
            *slot = 1.0;
        }
        self.gamma
            .set_value(Tensor::from_vec(tail, &[l - 1]).expect("gamma tail shape"));
    }

    /// Freezes the γ parameters at their binarised values so that the
    /// fine-tuning phase of Algorithm 1 only updates the weights.
    pub fn freeze(&self) {
        let bin = self.binarized_gamma();
        let len = bin.len();
        self.gamma
            .set_value(Tensor::from_vec(bin, &[len]).expect("gamma freeze shape"));
        self.gamma.set_trainable(false);
    }

    /// Re-enables training of the γ parameters (undoes [`PitConv1d::freeze`]).
    pub fn unfreeze(&self) {
        self.gamma.set_trainable(true);
    }

    /// Returns `true` when γ is frozen (fine-tuning phase).
    pub fn is_frozen(&self) -> bool {
        !self.gamma.trainable()
    }

    /// Per-γ regularisation coefficients of Eq. 6 **excluding** the
    /// `C_in · C_out` factor: `round((rf_max − 1) / 2^(L−i))` for
    /// `i = 1 … L−1`, i.e. the number of filter time-slices kept alive by
    /// each non-zero γ.
    pub fn slice_counts(&self) -> Vec<f32> {
        let l = self.gamma_count();
        (1..l)
            .map(|i| ((self.rf_max - 1) as f32 / (1u64 << (l - i)) as f32).round())
            .collect()
    }

    /// Full regularisation coefficients of Eq. 6 for this layer:
    /// `C_in · C_out · round((rf_max − 1) / 2^(L−i))`.
    pub fn regularizer_coefficients(&self) -> Vec<f32> {
        let cc = (self.in_channels * self.out_channels) as f32;
        self.slice_counts().iter().map(|&s| cc * s).collect()
    }

    /// The binarised time mask `M` (length `rf_max`) under the current γ
    /// values, computed without a tape.
    ///
    /// This is the inference-side mask extraction API: with γ binarised, the
    /// Γ-product construction of Eq. 3–4 collapses to the dilation pattern
    /// `M[i] = 1 ⇔ d | i` for the dilation `d` encoded by the all-ones γ
    /// prefix, so the mask can be read directly off [`PitConv1d::dilation`]
    /// and matches the tape-built [`PitConv1d::mask`] exactly.
    pub fn time_mask_values(&self) -> Vec<f32> {
        let d = self.dilation();
        (0..self.rf_max)
            .map(|i| if i % d == 0 { 1.0 } else { 0.0 })
            .collect()
    }

    /// Builds the differentiable time mask `M` for this layer on `tape`
    /// (binarised γ → Γ products → mask), as used in the forward pass.
    pub fn mask(&self, tape: &mut Tape) -> Var {
        let g = tape.param(&self.gamma);
        let g_bin = tape.binarize_ste(g, self.threshold);
        tape.pit_time_mask(g_bin, self.rf_max)
    }

    /// Extracts the dense weights of the *pruned* layer: a
    /// `[C_out, C_in, alive_taps]` tensor holding only the taps kept by the
    /// current dilation, suitable for deployment as a standard dilated
    /// convolution.
    pub fn export_pruned_weight(&self) -> Tensor {
        let d = self.dilation();
        let alive = self.alive_taps();
        let w = self.weight.value();
        let mut out = Vec::with_capacity(self.out_channels * self.in_channels * alive);
        for co in 0..self.out_channels {
            for ci in 0..self.in_channels {
                let base = (co * self.in_channels + ci) * self.rf_max;
                for a in 0..alive {
                    out.push(w.data()[base + a * d]);
                }
            }
        }
        Tensor::from_vec(out, &[self.out_channels, self.in_channels, alive])
            .expect("pruned weight shape")
    }
}

impl Layer for PitConv1d {
    fn forward(&self, tape: &mut Tape, input: Var, _mode: Mode) -> Var {
        let w = tape.param(&self.weight);
        let b = tape.param(&self.bias);
        let mask = self.mask(tape);
        // Fused mask ⊙ weight gather: one pass, no materialised W ⊙ M node,
        // and fully masked taps are skipped by the conv kernels.
        tape.conv1d_causal_masked(input, w, mask, Some(b), 1)
    }

    fn params(&self) -> Vec<Param> {
        vec![self.weight.clone(), self.bias.clone(), self.gamma.clone()]
    }

    fn describe(&self) -> String {
        format!(
            "PitConv1d({}→{}, rf_max={}, d={})",
            self.in_channels,
            self.out_channels,
            self.rf_max,
            self.dilation()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_nn::layers::CausalConv1d;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn conv(rf_max: usize) -> PitConv1d {
        let mut rng = StdRng::seed_from_u64(0);
        PitConv1d::new(&mut rng, 2, 3, rf_max, "test")
    }

    #[test]
    fn starts_with_dilation_one_and_all_taps() {
        let c = conv(9);
        assert_eq!(c.dilation(), 1);
        assert_eq!(c.alive_taps(), 9);
        assert_eq!(c.effective_weights(), 3 * 2 * 9 + 3);
        assert_eq!(c.masked_weights(), 0);
        assert_eq!(c.gamma_count(), 4);
        assert!(!c.is_frozen());
    }

    #[test]
    fn set_dilation_roundtrips() {
        let c = conv(9);
        for d in [1usize, 2, 4, 8] {
            c.set_dilation(d);
            assert_eq!(c.dilation(), d, "dilation {d}");
            assert_eq!(c.alive_taps(), (9 - 1) / d + 1);
        }
    }

    #[test]
    #[should_panic]
    fn set_dilation_rejects_non_power_of_two() {
        conv(9).set_dilation(3);
    }

    #[test]
    #[should_panic]
    fn set_dilation_rejects_too_large() {
        conv(9).set_dilation(16);
    }

    #[test]
    fn forward_shape_and_mask_effect() {
        let c = conv(9);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[1, 2, 12]));
        let y = c.forward(&mut tape, x, Mode::Train);
        assert_eq!(tape.dims(y), vec![1, 3, 12]);

        // With dilation 8 only 2 taps remain: outputs must differ from the dense ones.
        c.set_dilation(8);
        let mut tape2 = Tape::new();
        let x2 = tape2.constant(Tensor::ones(&[1, 2, 12]));
        let y2 = c.forward(&mut tape2, x2, Mode::Train);
        assert!(!tape.value(y).approx_eq(tape2.value(y2), 1e-6));
    }

    #[test]
    fn masked_forward_equals_true_dilated_conv() {
        // The masked dense convolution must produce exactly the same output
        // as a standard dilated convolution using the exported pruned weights.
        let mut rng = StdRng::seed_from_u64(3);
        let c = PitConv1d::new(&mut rng, 3, 4, 9, "eq");
        c.set_dilation(4);

        let x = init::uniform(&mut rng, &[2, 3, 20], 1.0);
        let mut tape = Tape::new();
        let vx = tape.constant(x.clone());
        let y_masked = c.forward(&mut tape, vx, Mode::Eval);

        let pruned = c.export_pruned_weight();
        assert_eq!(pruned.dims(), &[4, 3, 3]); // (9-1)/4 + 1 = 3 taps
        let y_dilated = x
            .conv1d_causal(&pruned, Some(&c.bias_param().value()), 4)
            .unwrap();
        assert!(tape.value(y_masked).approx_eq(&y_dilated, 1e-5));
    }

    #[test]
    fn equivalent_to_plain_conv_when_unpruned() {
        // With all gammas = 1 the layer behaves like a dense causal conv.
        let mut rng = StdRng::seed_from_u64(1);
        let c = PitConv1d::new(&mut rng, 2, 2, 5, "dense");
        let mut rng2 = StdRng::seed_from_u64(99);
        let plain = CausalConv1d::new(&mut rng2, 2, 2, 5, 1);
        plain.weight().set_value(c.weight_param().value());
        if let Some(b) = plain.bias() {
            b.set_value(c.bias_param().value());
        }
        let x = init::uniform(&mut rng, &[1, 2, 10], 1.0);
        let mut t1 = Tape::new();
        let v1 = t1.constant(x.clone());
        let y1 = c.forward(&mut t1, v1, Mode::Eval);
        let mut t2 = Tape::new();
        let v2 = t2.constant(x);
        let y2 = plain.forward(&mut t2, v2, Mode::Eval);
        assert!(t1.value(y1).approx_eq(t2.value(y2), 1e-5));
    }

    #[test]
    fn time_mask_values_match_tape_mask() {
        // The tape-free extraction must agree with the differentiable mask
        // for arbitrary (not just prefix-shaped) gamma patterns.
        let tails: &[&[f32]] = &[
            &[1.0, 1.0, 1.0],
            &[1.0, 1.0, 0.2],
            &[0.9, 0.3, 0.7],
            &[0.1, 0.8, 0.8],
            &[0.0, 0.0, 0.0],
        ];
        for tail in tails {
            let c = conv(9);
            c.gamma_param()
                .set_value(Tensor::from_vec(tail.to_vec(), &[3]).unwrap());
            let mut tape = Tape::new();
            let m = c.mask(&mut tape);
            assert_eq!(
                tape.value(m).data(),
                c.time_mask_values().as_slice(),
                "tail {tail:?}"
            );
        }
    }

    #[test]
    fn regularizer_coefficients_match_eq6() {
        let c = conv(9); // rf_max 9, L = 4
        assert_eq!(c.slice_counts(), vec![1.0, 2.0, 4.0]);
        assert_eq!(c.regularizer_coefficients(), vec![6.0, 12.0, 24.0]); // C_in*C_out = 6
    }

    #[test]
    fn freeze_locks_gamma() {
        let c = conv(9);
        c.gamma_param()
            .set_value(Tensor::from_vec(vec![0.9, 0.3, 0.7], &[3]).unwrap());
        // prefix of ones under threshold 0.5: gamma_1=1, gamma_2=0 -> prefix 1 -> d = 2^(3-1) = 4
        assert_eq!(c.dilation(), 4);
        c.freeze();
        assert!(c.is_frozen());
        assert_eq!(c.gamma_param().value().data(), &[1.0, 0.0, 1.0]);
        c.unfreeze();
        assert!(!c.is_frozen());
    }

    #[test]
    fn gradient_flows_into_gamma_during_search() {
        let c = conv(9);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[1, 2, 16]));
        let y = c.forward(&mut tape, x, Mode::Train);
        let sq = tape.square(y);
        let loss = tape.sum(sq);
        tape.backward(loss);
        assert!(
            c.gamma_param().grad().abs().sum_all() > 0.0,
            "gamma should receive gradient"
        );
        assert!(c.weight_param().grad().abs().sum_all() > 0.0);
    }

    #[test]
    fn describe_reports_current_dilation() {
        let c = conv(17);
        c.set_dilation(8);
        assert!(c.describe().contains("d=8"));
        assert!(c.describe().contains("rf_max=17"));
    }
}
