//! Search-space accounting.
//!
//! Section IV-B of the paper quotes the size of the explored design space:
//! about 10⁵ dilation combinations for the ResTCN seed and about 10⁴ for
//! TEMPONet. This module reproduces those numbers from the per-layer maximum
//! receptive fields.

use pit_tensor::ops::mask::gamma_len;
use serde::{Deserialize, Serialize};

/// The dilation search space spanned by a set of searchable convolutions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Maximum receptive field of each searchable layer, in network order.
    rf_max: Vec<usize>,
}

impl SearchSpace {
    /// Creates a search space from the per-layer maximum receptive fields.
    ///
    /// # Panics
    ///
    /// Panics if any receptive field is smaller than 2.
    pub fn new(rf_max: impl Into<Vec<usize>>) -> Self {
        let rf_max = rf_max.into();
        assert!(
            rf_max.iter().all(|&rf| rf >= 2),
            "every rf_max must be at least 2"
        );
        Self { rf_max }
    }

    /// Maximum receptive field of each layer.
    pub fn rf_max(&self) -> &[usize] {
        &self.rf_max
    }

    /// Number of searchable layers.
    pub fn num_layers(&self) -> usize {
        self.rf_max.len()
    }

    /// Number of power-of-two dilation choices for layer `i`
    /// (`L = ⌊log2(rf_max − 1)⌋ + 1`).
    pub fn choices_for_layer(&self, i: usize) -> usize {
        gamma_len(self.rf_max[i])
    }

    /// Total number of dilation combinations in the space.
    pub fn size(&self) -> u128 {
        (0..self.rf_max.len())
            .map(|i| self.choices_for_layer(i) as u128)
            .product()
    }

    /// `log10` of the space size (the "~10⁵ solutions" figure of the paper).
    pub fn log10_size(&self) -> f64 {
        (self.size() as f64).log10()
    }

    /// Enumerates every dilation combination (one `Vec<usize>` per
    /// architecture). Intended for the exhaustive baseline on small spaces;
    /// panics if the space holds more than `limit` combinations.
    ///
    /// # Panics
    ///
    /// Panics if `self.size() > limit as u128`.
    pub fn enumerate(&self, limit: usize) -> Vec<Vec<usize>> {
        assert!(
            self.size() <= limit as u128,
            "search space of {} combinations exceeds the enumeration limit {limit}",
            self.size()
        );
        let per_layer: Vec<Vec<usize>> = (0..self.num_layers())
            .map(|i| {
                (0..self.choices_for_layer(i))
                    .map(|j| 1usize << j)
                    .collect()
            })
            .collect();
        let mut combos: Vec<Vec<usize>> = vec![Vec::new()];
        for choices in &per_layer {
            let mut next = Vec::with_capacity(combos.len() * choices.len());
            for combo in &combos {
                for &d in choices {
                    let mut c = combo.clone();
                    c.push(d);
                    next.push(c);
                }
            }
            combos = next;
        }
        combos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_layer_choices() {
        let s = SearchSpace::new(vec![9]);
        assert_eq!(s.choices_for_layer(0), 4); // d in {1, 2, 4, 8}
        assert_eq!(s.size(), 4);
        assert_eq!(s.num_layers(), 1);
    }

    #[test]
    fn multi_layer_space_multiplies() {
        let s = SearchSpace::new(vec![9, 9, 5]);
        assert_eq!(s.size(), 4 * 4 * 3);
    }

    #[test]
    fn restcn_like_space_is_about_1e5() {
        // Eight layers with rf_max = 64 -> L = 6 choices each -> 6^8 ≈ 1.7e6;
        // the paper's ResTCN mixes receptive fields, landing around 1e5.
        // Reproduce the order of magnitude with the actual ResTCN-style
        // configuration used in `pit-models` (kernel 9 per conv pair and
        // growing rf): here we check the arithmetic only.
        let s = SearchSpace::new(vec![17, 17, 33, 33, 33, 33, 65, 65]);
        assert!(
            (4.0..6.5).contains(&s.log10_size()),
            "log10 size = {}",
            s.log10_size()
        );
    }

    #[test]
    fn enumerate_small_space() {
        let s = SearchSpace::new(vec![5, 3]);
        let combos = s.enumerate(100);
        assert_eq!(combos.len(), 3 * 2);
        assert!(combos.contains(&vec![1, 1]));
        assert!(combos.contains(&vec![4, 2]));
        // All dilations are powers of two within range.
        for combo in &combos {
            assert!(combo[0] <= 4 && combo[1] <= 2);
            assert!(combo.iter().all(|d| d.is_power_of_two()));
        }
    }

    #[test]
    #[should_panic]
    fn enumerate_refuses_huge_spaces() {
        let s = SearchSpace::new(vec![65; 10]);
        let _ = s.enumerate(1000);
    }

    #[test]
    #[should_panic]
    fn rejects_rf_smaller_than_two() {
        let _ = SearchSpace::new(vec![1]);
    }
}
