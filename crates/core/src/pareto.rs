//! Pareto-front utilities for the accuracy-vs-size design-space exploration.

use serde::{Deserialize, Serialize};

/// One evaluated architecture in the (model size, task loss) plane.
///
/// Lower is better on both axes: `params` is the number of deployed weights,
/// `loss` is the task metric (NLL or MAE in the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Number of deployed (effective) weights.
    pub params: usize,
    /// Task loss / error metric (lower is better).
    pub loss: f32,
    /// Per-layer dilations of the architecture.
    pub dilations: Vec<usize>,
    /// Free-form label (e.g. the λ / warmup setting that produced the point).
    pub label: String,
}

impl ParetoPoint {
    /// Creates a point.
    pub fn new(params: usize, loss: f32, dilations: Vec<usize>, label: impl Into<String>) -> Self {
        Self {
            params,
            loss,
            dilations,
            label: label.into(),
        }
    }

    /// Returns `true` if `self` dominates `other` (no worse on both axes and
    /// strictly better on at least one).
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        let no_worse = self.params <= other.params && self.loss <= other.loss;
        let strictly_better = self.params < other.params || self.loss < other.loss;
        no_worse && strictly_better
    }
}

/// Extracts the Pareto-optimal subset of `points` (non-dominated points),
/// sorted by increasing parameter count.
pub fn pareto_front(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    let mut front: Vec<ParetoPoint> = points
        .iter()
        .filter(|candidate| !points.iter().any(|other| other.dominates(candidate)))
        .cloned()
        .collect();
    front.sort_by(|a, b| a.params.cmp(&b.params).then(a.loss.total_cmp(&b.loss)));
    front.dedup_by(|a, b| a.params == b.params && a.loss == b.loss);
    front
}

/// Selects the small / medium / large representatives used in Tables I–III:
/// the smallest model, the model closest in size to `reference_params`, and
/// the most accurate model of the front.
///
/// Returns `None` when the front is empty.
pub fn pick_small_medium_large(
    front: &[ParetoPoint],
    reference_params: usize,
) -> Option<(ParetoPoint, ParetoPoint, ParetoPoint)> {
    if front.is_empty() {
        return None;
    }
    let small = front.iter().min_by_key(|p| p.params)?.clone();
    let medium = front
        .iter()
        .min_by_key(|p| p.params.abs_diff(reference_params))?
        .clone();
    let large = front
        .iter()
        .min_by(|a, b| a.loss.total_cmp(&b.loss))?
        .clone();
    Some((small, medium, large))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(params: usize, loss: f32) -> ParetoPoint {
        ParetoPoint::new(params, loss, vec![1], format!("p{params}"))
    }

    #[test]
    fn domination_rules() {
        assert!(p(10, 1.0).dominates(&p(20, 2.0)));
        assert!(p(10, 1.0).dominates(&p(10, 2.0)));
        assert!(!p(10, 1.0).dominates(&p(10, 1.0))); // equal points do not dominate
        assert!(!p(10, 2.0).dominates(&p(20, 1.0))); // trade-off
    }

    #[test]
    fn front_removes_dominated_points() {
        let points = vec![
            p(100, 1.0),
            p(50, 2.0),
            p(80, 1.5),
            p(120, 0.9),
            p(200, 1.0),
        ];
        let front = pareto_front(&points);
        let params: Vec<usize> = front.iter().map(|q| q.params).collect();
        assert_eq!(params, vec![50, 80, 100, 120]);
        // 200/1.0 is dominated by 100/1.0.
        assert!(!front.iter().any(|q| q.params == 200));
    }

    #[test]
    fn front_of_empty_set_is_empty() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn duplicate_points_are_deduplicated() {
        let points = vec![p(10, 1.0), p(10, 1.0)];
        assert_eq!(pareto_front(&points).len(), 1);
    }

    #[test]
    fn small_medium_large_selection() {
        let front = vec![p(50, 2.0), p(100, 1.5), p(200, 1.0)];
        let (s, m, l) = pick_small_medium_large(&front, 90).unwrap();
        assert_eq!(s.params, 50);
        assert_eq!(m.params, 100);
        assert_eq!(l.params, 200);
        assert!(pick_small_medium_large(&[], 10).is_none());
    }
}
