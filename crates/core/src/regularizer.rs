//! The model-size regulariser of Eq. 6.

use crate::conv::PitConv1d;
use pit_tensor::{Tape, Var};

/// Builds the Lasso-style size regulariser
/// `L_R(γ) = λ Σ_l C_in^l · C_out^l Σ_i round((rf_max−1)/2^(L−i)) |γ_i^l|`
/// over a set of [`PitConv1d`] layers.
///
/// The regulariser promotes sparsification of the γ parameters, i.e. larger
/// dilations and therefore smaller deployed models.
#[derive(Debug, Clone, Copy)]
pub struct SizeRegularizer {
    lambda: f32,
}

impl SizeRegularizer {
    /// Creates a regulariser with strength `λ`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative.
    pub fn new(lambda: f32) -> Self {
        assert!(lambda >= 0.0, "lambda must be non-negative, got {lambda}");
        Self { lambda }
    }

    /// The regularisation strength λ.
    pub fn lambda(&self) -> f32 {
        self.lambda
    }

    /// Records the regularisation term for `layers` on `tape` and returns the
    /// scalar node `λ · Σ_l Σ_i coeff_i |γ_i|`.
    ///
    /// Layers whose γ is frozen still contribute a (constant) value but no
    /// useful gradient, matching the fine-tuning phase where the term is
    /// simply dropped from the loss.
    pub fn term(&self, tape: &mut Tape, layers: &[&PitConv1d]) -> Var {
        let mut acc: Option<Var> = None;
        for layer in layers {
            let coeffs = layer.regularizer_coefficients();
            if coeffs.is_empty() {
                continue;
            }
            let g = tape.param(layer.gamma_param());
            let contribution = tape.weighted_abs_sum(g, &coeffs);
            acc = Some(match acc {
                Some(total) => tape.add(total, contribution),
                None => contribution,
            });
        }
        let total = acc.unwrap_or_else(|| tape.constant(pit_tensor::Tensor::scalar(0.0)));
        tape.scale(total, self.lambda)
    }

    /// Evaluates the regulariser outside any tape (diagnostic value).
    pub fn value(&self, layers: &[&PitConv1d]) -> f32 {
        let mut total = 0.0f32;
        for layer in layers {
            let coeffs = layer.regularizer_coefficients();
            let gamma = layer.gamma_param().value();
            total += gamma
                .data()
                .iter()
                .zip(coeffs.iter())
                .map(|(&g, &c)| c * g.abs())
                .sum::<f32>();
        }
        self.lambda * total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer(rf_max: usize, cin: usize, cout: usize) -> PitConv1d {
        let mut rng = StdRng::seed_from_u64(0);
        PitConv1d::new(&mut rng, cin, cout, rf_max, "reg-test")
    }

    #[test]
    fn value_matches_manual_computation() {
        let l = layer(9, 2, 3); // coeffs = [6, 12, 24]
        l.gamma_param()
            .set_value(Tensor::from_vec(vec![1.0, 0.5, 0.0], &[3]).unwrap());
        let reg = SizeRegularizer::new(0.1);
        let expected = 0.1 * (6.0 * 1.0 + 12.0 * 0.5 + 24.0 * 0.0);
        assert!((reg.value(&[&l]) - expected).abs() < 1e-6);
    }

    #[test]
    fn tape_term_matches_value_and_produces_gradient() {
        let l = layer(9, 2, 3);
        l.gamma_param()
            .set_value(Tensor::from_vec(vec![0.9, 0.6, 0.4], &[3]).unwrap());
        let reg = SizeRegularizer::new(0.01);
        let mut tape = Tape::new();
        let term = reg.term(&mut tape, &[&l]);
        assert!((tape.value(term).item() - reg.value(&[&l])).abs() < 1e-6);
        tape.backward(term);
        // d/dgamma_i = lambda * coeff_i * sign(gamma_i)
        let g = l.gamma_param().grad();
        assert!((g.data()[0] - 0.01 * 6.0).abs() < 1e-6);
        assert!((g.data()[1] - 0.01 * 12.0).abs() < 1e-6);
        assert!((g.data()[2] - 0.01 * 24.0).abs() < 1e-6);
    }

    #[test]
    fn multiple_layers_sum() {
        let a = layer(9, 1, 1); // coeffs [1, 2, 4]
        let b = layer(5, 2, 2); // L = 3, coeffs = 4*[1, 2]
        let reg = SizeRegularizer::new(1.0);
        // all gammas are 1 -> value = (1+2+4) + 4*(1+2) = 19
        assert!((reg.value(&[&a, &b]) - 19.0).abs() < 1e-6);
        let mut tape = Tape::new();
        let term = reg.term(&mut tape, &[&a, &b]);
        assert!((tape.value(term).item() - 19.0).abs() < 1e-6);
    }

    #[test]
    fn zero_lambda_means_zero_term() {
        let l = layer(9, 4, 4);
        let reg = SizeRegularizer::new(0.0);
        assert_eq!(reg.value(&[&l]), 0.0);
        let mut tape = Tape::new();
        let term = reg.term(&mut tape, &[&l]);
        assert_eq!(tape.value(term).item(), 0.0);
    }

    #[test]
    fn empty_layer_list_is_zero() {
        let reg = SizeRegularizer::new(0.5);
        let mut tape = Tape::new();
        let term = reg.term(&mut tape, &[]);
        assert_eq!(tape.value(term).item(), 0.0);
        assert_eq!(reg.value(&[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_lambda_panics() {
        let _ = SizeRegularizer::new(-0.1);
    }
}
