//! The three-phase PIT training procedure (Algorithm 1 of the paper).

use crate::network::SearchableNetwork;
use crate::pareto::ParetoPoint;
use crate::regularizer::SizeRegularizer;
use pit_nn::{Adam, Dataset, EarlyStopping, LossKind, Mode, Optimizer, TrainConfig, Trainer};
use pit_tensor::{Param, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Hyper-parameters of one PIT search run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PitConfig {
    /// Strength λ of the size regulariser (Eq. 6). Larger values push the
    /// search towards smaller (more dilated) models.
    pub lambda: f32,
    /// Number of warmup epochs (weights only, γ fixed at 1).
    pub warmup_epochs: usize,
    /// Maximum number of pruning epochs (weights + γ, regularised loss).
    pub search_epochs: usize,
    /// Number of fine-tuning epochs (weights only, γ frozen at the found values).
    pub finetune_epochs: usize,
    /// Early-stopping patience, in epochs of non-improving validation loss,
    /// applied during the pruning phase (`None` disables early stopping).
    pub patience: Option<usize>,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate shared by all phases.
    pub learning_rate: f32,
    /// Adam learning rate of the architecture (γ) parameters during the
    /// pruning phase. DMaskingNAS methods typically move their architecture
    /// parameters faster than the weights; the paper's long schedules hide
    /// this, but with short schedules a dedicated γ step size is required for
    /// the binarised γ to cross the 0.5 threshold at all.
    pub gamma_learning_rate: f32,
    /// RNG seed for batch shuffling.
    pub seed: u64,
}

impl Default for PitConfig {
    fn default() -> Self {
        Self {
            lambda: 1e-5,
            warmup_epochs: 5,
            search_epochs: 20,
            finetune_epochs: 5,
            patience: Some(10),
            batch_size: 32,
            learning_rate: 1e-3,
            gamma_learning_rate: 1e-2,
            seed: 0,
        }
    }
}

/// Wall-clock time spent in each phase of Algorithm 1.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Warmup phase duration.
    pub warmup: Duration,
    /// Pruning (search) phase duration.
    pub search: Duration,
    /// Fine-tuning phase duration.
    pub finetune: Duration,
}

impl PhaseTimings {
    /// Total duration across all three phases.
    pub fn total(&self) -> Duration {
        self.warmup + self.search + self.finetune
    }
}

/// The result of one PIT search run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PitOutcome {
    /// Learned dilation of every searchable layer, in network order.
    pub dilations: Vec<usize>,
    /// Number of weights of the pruned (deployable) model.
    pub effective_params: usize,
    /// Number of weights of the un-pruned seed model.
    pub total_params: usize,
    /// Validation loss of the fine-tuned model.
    pub val_loss: f32,
    /// Final training loss.
    pub train_loss: f32,
    /// Wall-clock timings per phase.
    pub timings: PhaseTimings,
    /// Regulariser strength that produced this outcome.
    pub lambda: f32,
    /// Warmup epochs that produced this outcome.
    pub warmup_epochs: usize,
    /// Epochs actually run in each phase (warmup, search, fine-tune).
    pub epochs_run: (usize, usize, usize),
}

impl PitOutcome {
    /// Converts the outcome into a point of the accuracy-vs-size plane.
    pub fn to_pareto_point(&self, label: impl Into<String>) -> ParetoPoint {
        ParetoPoint::new(
            self.effective_params,
            self.val_loss,
            self.dilations.clone(),
            label,
        )
    }

    /// Compression factor with respect to the un-pruned seed.
    pub fn compression(&self) -> f32 {
        self.total_params as f32 / self.effective_params.max(1) as f32
    }
}

/// Runs the PIT search (Algorithm 1): warmup → pruning → fine-tuning.
#[derive(Debug, Clone)]
pub struct PitSearch {
    config: PitConfig,
}

impl PitSearch {
    /// Creates a search driver with the given configuration.
    pub fn new(config: PitConfig) -> Self {
        Self { config }
    }

    /// The search configuration.
    pub fn config(&self) -> &PitConfig {
        &self.config
    }

    /// Splits the network parameters into (weights, γ) sets.
    fn split_params<N: SearchableNetwork>(net: &N) -> (Vec<Param>, Vec<Param>) {
        let gammas: Vec<Param> = net
            .pit_layers()
            .iter()
            .map(|l| l.gamma_param().clone())
            .collect();
        let weights: Vec<Param> = net
            .params()
            .into_iter()
            .filter(|p| !gammas.iter().any(|g| g.same_param(p)))
            .collect();
        (weights, gammas)
    }

    /// Runs the full three-phase procedure on `net` and returns the outcome.
    ///
    /// The network is trained in place: after the call its weights are the
    /// fine-tuned weights and its γ parameters are frozen at the learned
    /// dilation pattern.
    pub fn run<N: SearchableNetwork>(
        &self,
        net: &N,
        train: &Dataset,
        val: &Dataset,
        loss: LossKind,
    ) -> PitOutcome {
        let cfg = &self.config;
        let (weight_params, gamma_params) = Self::split_params(net);

        // ------------------------------------------------------------------
        // Phase 1 — warmup: weights only, plain task loss.
        // ------------------------------------------------------------------
        let warmup_start = Instant::now();
        let mut warmup_epochs_run = 0usize;
        if cfg.warmup_epochs > 0 {
            let trainer = Trainer::new(TrainConfig {
                epochs: cfg.warmup_epochs,
                batch_size: cfg.batch_size,
                shuffle: true,
                patience: None,
                seed: cfg.seed,
            });
            let mut opt = Adam::new(weight_params.clone(), cfg.learning_rate);
            let report = trainer.train(net, train, Some(val), loss, &mut opt);
            warmup_epochs_run = report.epochs_run;
        }
        let warmup_time = warmup_start.elapsed();

        // ------------------------------------------------------------------
        // Phase 2 — pruning: weights + γ, task loss + size regulariser.
        // ------------------------------------------------------------------
        let search_start = Instant::now();
        let regularizer = SizeRegularizer::new(cfg.lambda);
        let mut opt = Adam::new(weight_params.clone(), cfg.learning_rate);
        let mut gamma_opt = Adam::new(gamma_params, cfg.gamma_learning_rate);
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(1));
        let mut stopper = cfg.patience.map(EarlyStopping::new);
        let mut search_epochs_run = 0usize;
        let mut last_train_loss = f32::NAN;
        for _epoch in 0..cfg.search_epochs {
            let batches = train.batches(cfg.batch_size, Some(&mut rng));
            let mut epoch_loss = 0.0f64;
            let mut seen = 0usize;
            for batch in &batches {
                opt.zero_grad();
                gamma_opt.zero_grad();
                let mut tape = Tape::new();
                let x = tape.constant(batch.inputs.clone());
                let pred = net.forward(&mut tape, x, Mode::Train);
                let task = loss.apply(&mut tape, pred, &batch.targets);
                let reg = regularizer.term(&mut tape, &net.pit_layers());
                let total = tape.add(task, reg);
                epoch_loss += tape.value(task).item() as f64 * batch.len() as f64;
                seen += batch.len();
                tape.backward(total);
                opt.step();
                gamma_opt.step();
            }
            last_train_loss = (epoch_loss / seen.max(1) as f64) as f32;
            search_epochs_run += 1;
            let val_loss = Trainer::evaluate(net, val, loss, cfg.batch_size);
            if let Some(stopper) = &mut stopper {
                if stopper.update(val_loss) {
                    break;
                }
            }
        }
        let search_time = search_start.elapsed();

        // ------------------------------------------------------------------
        // Phase 3 — fine-tuning: γ frozen, weights only, plain task loss.
        // ------------------------------------------------------------------
        let finetune_start = Instant::now();
        net.freeze_all();
        let mut finetune_epochs_run = 0usize;
        if cfg.finetune_epochs > 0 {
            let trainer = Trainer::new(TrainConfig {
                epochs: cfg.finetune_epochs,
                batch_size: cfg.batch_size,
                shuffle: true,
                patience: None,
                seed: cfg.seed.wrapping_add(2),
            });
            let mut opt = Adam::new(weight_params, cfg.learning_rate);
            let report = trainer.train(net, train, Some(val), loss, &mut opt);
            finetune_epochs_run = report.epochs_run;
        }
        let finetune_time = finetune_start.elapsed();

        let val_loss = Trainer::evaluate(net, val, loss, cfg.batch_size);
        PitOutcome {
            dilations: net.dilations(),
            effective_params: net.effective_weights(),
            total_params: net.total_weights() - net.gamma_weights(),
            val_loss,
            train_loss: last_train_loss,
            timings: PhaseTimings {
                warmup: warmup_time,
                search: search_time,
                finetune: finetune_time,
            },
            lambda: cfg.lambda,
            warmup_epochs: cfg.warmup_epochs,
            epochs_run: (warmup_epochs_run, search_epochs_run, finetune_epochs_run),
        }
    }

    /// Runs one search per `(λ, warmup)` combination, constructing a fresh
    /// network for each run through `make_network`, and returns all outcomes.
    ///
    /// This is the design-space exploration used for Fig. 4 of the paper.
    pub fn explore<N, F>(
        base: &PitConfig,
        lambdas: &[f32],
        warmups: &[usize],
        make_network: F,
        train: &Dataset,
        val: &Dataset,
        loss: LossKind,
    ) -> Vec<PitOutcome>
    where
        N: SearchableNetwork,
        F: Fn(u64) -> N,
    {
        let mut outcomes = Vec::with_capacity(lambdas.len() * warmups.len());
        for (i, &lambda) in lambdas.iter().enumerate() {
            for (j, &warmup) in warmups.iter().enumerate() {
                let cfg = PitConfig {
                    lambda,
                    warmup_epochs: warmup,
                    seed: base.seed.wrapping_add((i * warmups.len() + j) as u64),
                    ..base.clone()
                };
                let net = make_network(cfg.seed);
                let outcome = PitSearch::new(cfg).run(&net, train, val, loss);
                outcomes.push(outcome);
            }
        }
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::PitConv1d;
    use pit_nn::Layer;
    use pit_tensor::{Tensor, Var};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A single searchable convolution followed by global pooling — the
    /// target only depends on x[t] and x[t-4], so the search should keep a
    /// dilation that covers lag 4 while pruning the rest.
    struct LagNet {
        conv: PitConv1d,
    }

    impl LagNet {
        fn new(seed: u64) -> Self {
            let mut rng = StdRng::seed_from_u64(seed);
            Self {
                conv: PitConv1d::new(&mut rng, 1, 4, 9, "lag"),
            }
        }
    }

    impl Layer for LagNet {
        fn forward(&self, tape: &mut Tape, input: Var, mode: Mode) -> Var {
            let h = self.conv.forward(tape, input, mode);
            let h = tape.relu(h);
            let pooled = tape.global_avg_pool_time(h); // [N, 4]
                                                       // Sum channels to produce a single regression output per sample.
            let n = tape.dims(pooled)[0];
            let w = tape.constant(Tensor::ones(&[4, 1]));
            let out = tape.matmul(pooled, w);
            tape.reshape(out, &[n, 1])
        }

        fn params(&self) -> Vec<pit_tensor::Param> {
            self.conv.params()
        }
    }

    impl SearchableNetwork for LagNet {
        fn pit_layers(&self) -> Vec<&PitConv1d> {
            vec![&self.conv]
        }
    }

    fn lag_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new();
        for _ in 0..n {
            let x: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            // Target: mean over t of (x[t] + x[t-4]) — requires lag-4 information.
            let mut y = 0.0f32;
            for t in 0..16 {
                y += x[t] + if t >= 4 { x[t - 4] } else { 0.0 };
            }
            y /= 16.0;
            ds.push(
                Tensor::from_vec(x, &[1, 16]).unwrap(),
                Tensor::from_vec(vec![y], &[1]).unwrap(),
            );
        }
        ds
    }

    #[test]
    fn config_default_is_sane() {
        let cfg = PitConfig::default();
        assert!(cfg.lambda > 0.0);
        assert!(cfg.batch_size > 0);
        assert!(cfg.learning_rate > 0.0);
    }

    #[test]
    fn split_params_separates_gamma() {
        let net = LagNet::new(0);
        let (weights, gammas) = PitSearch::split_params(&net);
        assert_eq!(gammas.len(), 1);
        assert_eq!(weights.len(), 2); // conv weight + bias
        assert!(gammas[0].same_param(net.pit_layers()[0].gamma_param()));
    }

    #[test]
    fn run_produces_frozen_network_and_consistent_outcome() {
        let net = LagNet::new(1);
        let data = lag_dataset(48, 3);
        let (train, val) = data.split(0.75);
        let cfg = PitConfig {
            lambda: 1e-4,
            warmup_epochs: 2,
            search_epochs: 4,
            finetune_epochs: 2,
            patience: None,
            batch_size: 16,
            learning_rate: 0.01,
            gamma_learning_rate: 0.01,
            seed: 0,
        };
        let outcome = PitSearch::new(cfg).run(&net, &train, &val, LossKind::Mse);
        assert!(net.pit_layers()[0].is_frozen());
        assert_eq!(outcome.epochs_run, (2, 4, 2));
        assert_eq!(outcome.dilations.len(), 1);
        assert!(outcome.dilations[0].is_power_of_two());
        assert!(outcome.effective_params <= outcome.total_params);
        assert!(outcome.val_loss.is_finite());
        assert!(outcome.compression() >= 1.0);
        assert!(outcome.timings.total() >= outcome.timings.search);
        let point = outcome.to_pareto_point("test");
        assert_eq!(point.params, outcome.effective_params);
    }

    #[test]
    fn strong_regularisation_prunes_more_than_weak() {
        let data = lag_dataset(48, 5);
        let (train, val) = data.split(0.75);
        let base = PitConfig {
            warmup_epochs: 1,
            search_epochs: 15,
            finetune_epochs: 1,
            patience: None,
            batch_size: 16,
            learning_rate: 0.05,
            gamma_learning_rate: 0.05,
            seed: 7,
            lambda: 0.0,
        };

        let weak_net = LagNet::new(11);
        let weak = PitSearch::new(PitConfig {
            lambda: 0.0,
            ..base.clone()
        })
        .run(&weak_net, &train, &val, LossKind::Mse);
        let strong_net = LagNet::new(11);
        let strong = PitSearch::new(PitConfig {
            lambda: 10.0,
            ..base
        })
        .run(&strong_net, &train, &val, LossKind::Mse);

        // A huge lambda must push gamma to zero -> maximum dilation -> fewer params.
        assert!(
            strong.effective_params < weak.effective_params,
            "strong {} vs weak {}",
            strong.effective_params,
            weak.effective_params
        );
        assert_eq!(strong.dilations[0], 8);
    }

    #[test]
    fn explore_returns_one_outcome_per_combination() {
        let data = lag_dataset(24, 9);
        let (train, val) = data.split(0.7);
        let base = PitConfig {
            warmup_epochs: 1,
            search_epochs: 1,
            finetune_epochs: 0,
            patience: None,
            batch_size: 12,
            learning_rate: 0.01,
            gamma_learning_rate: 0.01,
            seed: 0,
            lambda: 0.0,
        };
        let outcomes = PitSearch::explore(
            &base,
            &[0.0, 1.0],
            &[0, 1],
            LagNet::new,
            &train,
            &val,
            LossKind::Mse,
        );
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes
            .iter()
            .any(|o| o.lambda == 0.0 && o.warmup_epochs == 0));
        assert!(outcomes
            .iter()
            .any(|o| o.lambda == 1.0 && o.warmup_epochs == 1));
    }
}
