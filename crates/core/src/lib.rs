//! # pit-nas — Pruning In Time
//!
//! The core contribution of the reproduced paper: a lightweight
//! DMaskingNAS optimizer that learns the **dilation factor of every temporal
//! convolution of a TCN** together with the network weights, in a single
//! training run (Risso et al., *Pruning In Time (PIT): A Lightweight Network
//! Architecture Optimizer for Temporal Convolutional Networks*, DAC 2021).
//!
//! The crate provides:
//!
//! * [`PitConv1d`] — a causal convolution whose filter taps are gated by a
//!   trainable, binarised γ vector expanded into a regular power-of-two
//!   dilation mask (Sec. III-A of the paper);
//! * [`SizeRegularizer`] — the Lasso-style model-size regulariser of Eq. 6
//!   (and [`OpsRegularizer`], the FLOPs-oriented variant the paper mentions
//!   as a straightforward extension);
//! * [`SearchableNetwork`] — the trait models implement to expose their PIT
//!   convolutions to the optimizer;
//! * [`PitSearch`] — the three-phase training procedure of Algorithm 1
//!   (warmup → pruning → fine-tuning);
//! * [`pareto`] — Pareto-front utilities used for the design-space
//!   exploration of Fig. 4;
//! * [`space`] — search-space accounting (the ~10⁵ / ~10⁴ numbers of
//!   Sec. IV-B).
//!
//! # Example
//!
//! ```
//! use pit_nas::PitConv1d;
//! use pit_nn::{Layer, Mode};
//! use pit_tensor::{Tape, Tensor};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! // A searchable convolution with a maximum receptive field of 9 samples.
//! let conv = PitConv1d::new(&mut rng, 4, 8, 9, "block0");
//! assert_eq!(conv.dilation(), 1); // starts un-pruned
//! let mut tape = Tape::new();
//! let x = tape.constant(Tensor::zeros(&[2, 4, 32]));
//! let y = conv.forward(&mut tape, x, Mode::Train);
//! assert_eq!(tape.dims(y), vec![2, 8, 32]);
//! ```

pub mod conv;
pub mod network;
pub mod ops_regularizer;
pub mod pareto;
pub mod regularizer;
pub mod search;
pub mod space;

pub use conv::PitConv1d;
pub use network::SearchableNetwork;
pub use ops_regularizer::OpsRegularizer;
pub use pareto::{pareto_front, ParetoPoint};
pub use regularizer::SizeRegularizer;
pub use search::{PhaseTimings, PitConfig, PitOutcome, PitSearch};
pub use space::SearchSpace;
