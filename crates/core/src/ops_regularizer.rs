//! Operation-count (FLOPs) regulariser.
//!
//! Section III of the paper notes that PIT "is easily extendable to other
//! types of optimizations (e.g., FLOPs reduction)" by swapping the cost term
//! of Eq. 6. This module provides that extension: the coefficient of each
//! `|γ_i|` becomes the number of multiply-accumulate operations re-enabled by
//! that γ, i.e. the Eq. 6 slice count multiplied by `C_in · C_out` **and** by
//! the output sequence length of the layer.

use crate::conv::PitConv1d;
use pit_tensor::{Tape, Var};

/// Lasso regulariser on γ weighted by the *operation count* each γ re-enables,
/// steering the search towards low-latency rather than low-memory networks.
#[derive(Debug, Clone, Copy)]
pub struct OpsRegularizer {
    lambda: f32,
}

impl OpsRegularizer {
    /// Creates an operation-count regulariser with strength `λ`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative.
    pub fn new(lambda: f32) -> Self {
        assert!(lambda >= 0.0, "lambda must be non-negative, got {lambda}");
        Self { lambda }
    }

    /// The regularisation strength λ.
    pub fn lambda(&self) -> f32 {
        self.lambda
    }

    /// Per-γ coefficients for one layer processing sequences of length
    /// `seq_len`: `C_in · C_out · seq_len · round((rf_max − 1)/2^(L−i))`.
    pub fn coefficients(layer: &PitConv1d, seq_len: usize) -> Vec<f32> {
        layer
            .regularizer_coefficients()
            .into_iter()
            .map(|c| c * seq_len as f32)
            .collect()
    }

    /// Records the regularisation term on `tape`.
    ///
    /// `seq_lens[i]` is the output sequence length of `layers[i]` (layers
    /// after pooling stages see shorter sequences).
    ///
    /// # Panics
    ///
    /// Panics if `layers` and `seq_lens` have different lengths.
    pub fn term(&self, tape: &mut Tape, layers: &[&PitConv1d], seq_lens: &[usize]) -> Var {
        assert_eq!(
            layers.len(),
            seq_lens.len(),
            "one sequence length per layer is required"
        );
        let mut acc: Option<Var> = None;
        for (layer, &t) in layers.iter().zip(seq_lens.iter()) {
            let coeffs = Self::coefficients(layer, t);
            if coeffs.is_empty() {
                continue;
            }
            let g = tape.param(layer.gamma_param());
            let contribution = tape.weighted_abs_sum(g, &coeffs);
            acc = Some(match acc {
                Some(total) => tape.add(total, contribution),
                None => contribution,
            });
        }
        let total = acc.unwrap_or_else(|| tape.constant(pit_tensor::Tensor::scalar(0.0)));
        tape.scale(total, self.lambda)
    }

    /// Evaluates the regulariser outside any tape (diagnostic value).
    ///
    /// # Panics
    ///
    /// Panics if `layers` and `seq_lens` have different lengths.
    pub fn value(&self, layers: &[&PitConv1d], seq_lens: &[usize]) -> f32 {
        assert_eq!(
            layers.len(),
            seq_lens.len(),
            "one sequence length per layer is required"
        );
        let mut total = 0.0f32;
        for (layer, &t) in layers.iter().zip(seq_lens.iter()) {
            let coeffs = Self::coefficients(layer, t);
            let gamma = layer.gamma_param().value();
            total += gamma
                .data()
                .iter()
                .zip(coeffs.iter())
                .map(|(&g, &c)| c * g.abs())
                .sum::<f32>();
        }
        self.lambda * total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regularizer::SizeRegularizer;
    use pit_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer() -> PitConv1d {
        let mut rng = StdRng::seed_from_u64(0);
        PitConv1d::new(&mut rng, 2, 3, 9, "ops-test")
    }

    #[test]
    fn coefficients_scale_size_coefficients_by_length() {
        let l = layer();
        let size = l.regularizer_coefficients();
        let ops = OpsRegularizer::coefficients(&l, 64);
        assert_eq!(ops.len(), size.len());
        for (o, s) in ops.iter().zip(size.iter()) {
            assert!((o - s * 64.0).abs() < 1e-6);
        }
    }

    #[test]
    fn value_matches_size_regularizer_for_unit_length() {
        let l = layer();
        l.gamma_param()
            .set_value(Tensor::from_vec(vec![0.7, 0.4, 0.1], &[3]).unwrap());
        let ops = OpsRegularizer::new(0.5).value(&[&l], &[1]);
        let size = SizeRegularizer::new(0.5).value(&[&l]);
        assert!((ops - size).abs() < 1e-6);
    }

    #[test]
    fn longer_sequences_cost_more() {
        let l = layer();
        let reg = OpsRegularizer::new(1.0);
        assert!(reg.value(&[&l], &[128]) > reg.value(&[&l], &[16]));
    }

    #[test]
    fn tape_term_matches_value_and_produces_gradient() {
        let l = layer();
        l.gamma_param()
            .set_value(Tensor::from_vec(vec![0.9, 0.6, 0.4], &[3]).unwrap());
        let reg = OpsRegularizer::new(1e-3);
        let mut tape = Tape::new();
        let term = reg.term(&mut tape, &[&l], &[32]);
        assert!((tape.value(term).item() - reg.value(&[&l], &[32])).abs() < 1e-4);
        tape.backward(term);
        // d/dgamma_i = lambda * Cin*Cout*slice_i*T * sign(gamma_i)
        let g = l.gamma_param().grad();
        assert!((g.data()[0] - 1e-3 * 6.0 * 32.0).abs() < 1e-4);
    }

    #[test]
    fn empty_layer_list_is_zero() {
        let reg = OpsRegularizer::new(0.1);
        let mut tape = Tape::new();
        let term = reg.term(&mut tape, &[], &[]);
        assert_eq!(tape.value(term).item(), 0.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let l = layer();
        let reg = OpsRegularizer::new(0.1);
        let _ = reg.value(&[&l], &[]);
    }
}
