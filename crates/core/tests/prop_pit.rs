//! Property-based tests of the PIT-specific invariants.

use pit_nas::{PitConv1d, SizeRegularizer};
use pit_tensor::{ops::mask::gamma_len, Tape, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `set_dilation` / `dilation` round-trip for every receptive field and
    /// every legal power-of-two dilation.
    #[test]
    fn dilation_roundtrip(rf_exp in 1usize..6, choice in 0usize..6) {
        let rf_max = (1usize << rf_exp) + 1;
        let l = gamma_len(rf_max);
        let d = 1usize << (choice % l);
        let mut rng = StdRng::seed_from_u64(0);
        let conv = PitConv1d::new(&mut rng, 2, 2, rf_max, "prop");
        conv.set_dilation(d);
        prop_assert_eq!(conv.dilation(), d);
        prop_assert_eq!(conv.alive_taps(), (rf_max - 1) / d + 1);
        // Effective weights follow directly from the alive taps.
        prop_assert_eq!(conv.effective_weights(), 2 * 2 * conv.alive_taps() + 2);
    }

    /// The number of alive taps never increases when the dilation grows.
    #[test]
    fn alive_taps_monotone_in_dilation(rf_exp in 1usize..6) {
        let rf_max = (1usize << rf_exp) + 1;
        let l = gamma_len(rf_max);
        let mut rng = StdRng::seed_from_u64(1);
        let conv = PitConv1d::new(&mut rng, 1, 1, rf_max, "prop");
        let mut last = usize::MAX;
        for j in 0..l {
            conv.set_dilation(1 << j);
            let alive = conv.alive_taps();
            prop_assert!(alive <= last);
            last = alive;
        }
        // Maximum dilation keeps exactly two taps (first and last); rf_max
        // is always (1 << rf_exp) + 1 >= 3 here.
        prop_assert_eq!(last, 2);
    }

    /// The Eq. 6 slice counts sum to `rf_max − 1 − (number of taps at max
    /// dilation − 1)`: together with the always-alive taps they account for
    /// every tap of the dense filter.
    #[test]
    fn slice_counts_account_for_all_taps(rf_exp in 1usize..6) {
        let rf_max = (1usize << rf_exp) + 1;
        let mut rng = StdRng::seed_from_u64(2);
        let conv = PitConv1d::new(&mut rng, 1, 1, rf_max, "prop");
        let counts = conv.slice_counts();
        let max_d = 1usize << (conv.gamma_count() - 1);
        let always_alive = (rf_max - 1) / max_d + 1;
        let total: f32 = counts.iter().sum::<f32>() + always_alive as f32;
        prop_assert!((total - rf_max as f32).abs() < 1e-3,
            "counts {:?} + always-alive {} != rf_max {}", counts, always_alive, rf_max);
    }

    /// The regulariser value is monotone in |γ| and zero only when every
    /// trainable γ is zero (i.e. at maximum dilation).
    #[test]
    fn regularizer_monotone_in_gamma(scale_a in 0.0f32..1.0, scale_b in 0.0f32..1.0) {
        let mut rng = StdRng::seed_from_u64(3);
        let conv = PitConv1d::new(&mut rng, 3, 4, 17, "prop");
        let l = conv.gamma_count();
        let reg = SizeRegularizer::new(1.0);
        let set = |s: f32| {
            conv.gamma_param().set_value(Tensor::full(&[l - 1], s));
        };
        let (lo, hi) = if scale_a <= scale_b { (scale_a, scale_b) } else { (scale_b, scale_a) };
        set(lo);
        let v_lo = reg.value(&[&conv]);
        set(hi);
        let v_hi = reg.value(&[&conv]);
        prop_assert!(v_lo <= v_hi + 1e-6);
        set(0.0);
        prop_assert_eq!(reg.value(&[&conv]), 0.0);
    }

    /// Freezing binarises γ and never changes the encoded dilation.
    #[test]
    fn freeze_preserves_dilation(gammas in proptest::collection::vec(0.0f32..1.0, 4)) {
        let mut rng = StdRng::seed_from_u64(4);
        let conv = PitConv1d::new(&mut rng, 1, 2, 17, "prop"); // L = 5, tail 4
        conv.gamma_param().set_value(Tensor::from_vec(gammas, &[4]).unwrap());
        let before = conv.dilation();
        conv.freeze();
        prop_assert_eq!(conv.dilation(), before);
        prop_assert!(conv.gamma_param().value().data().iter().all(|&g| g == 0.0 || g == 1.0));
        prop_assert!(conv.is_frozen());
    }

    /// The forward pass of the masked convolution only uses alive taps: the
    /// output is invariant to arbitrary changes of the masked weights.
    #[test]
    fn masked_weights_do_not_affect_output(seed in 0u64..300, choice in 1usize..3) {
        let rf_max = 9usize;
        let d = 1usize << choice; // 2 or 4
        let mut rng = StdRng::seed_from_u64(seed);
        let conv = PitConv1d::new(&mut rng, 1, 1, rf_max, "prop");
        conv.set_dilation(d);
        let x = pit_tensor::init::uniform(&mut rng, &[1, 1, 16], 1.0);

        let mut t1 = Tape::new();
        let v1 = t1.constant(x.clone());
        let y1 = {
            use pit_nn::{Layer, Mode};
            conv.forward(&mut t1, v1, Mode::Eval)
        };
        // Corrupt every masked tap.
        let mut w = conv.weight_param().value();
        for i in 0..rf_max {
            if i % d != 0 {
                w.data_mut()[i] = 1234.5;
            }
        }
        conv.weight_param().set_value(w);
        let mut t2 = Tape::new();
        let v2 = t2.constant(x);
        let y2 = {
            use pit_nn::{Layer, Mode};
            conv.forward(&mut t2, v2, Mode::Eval)
        };
        prop_assert!(t1.value(y1).approx_eq(t2.value(y2), 1e-5));
    }
}
