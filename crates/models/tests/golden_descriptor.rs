//! Golden-fixture test for the `pit-arch/1` descriptor JSON format.
//!
//! The fixture under `tests/fixtures/` is a committed artifact of the
//! serialization format as shipped: saved architectures live outside the
//! repository, so a silent format change would orphan them. If this test
//! fails because the format intentionally changed, bump the schema tag
//! (`pit-arch/2`), keep parsing `pit-arch/1`, and add a new fixture — do not
//! regenerate this one.

use pit_models::{LayerDesc, NetworkDescriptor, DESCRIPTOR_SCHEMA, DESCRIPTOR_SCHEMA_V2};

const FIXTURE: &str = include_str!("fixtures/pit_arch_v1.json");
const FIXTURE_V2_F32: &str = include_str!("fixtures/pit_arch_v2_f32.json");
const FIXTURE_V2_I8: &str = include_str!("fixtures/pit_arch_v2_i8.json");

#[test]
fn golden_fixture_still_parses() {
    let d = NetworkDescriptor::from_json_str(FIXTURE).expect("committed fixture must parse");
    assert_eq!(d.name, "ppg-temponet-searched");
    // A searched TEMPONet shape: 7 convs + 7 batch norms + 4 pools + 2 FC.
    assert_eq!(d.len(), 20);
    assert_eq!(
        d.layers
            .iter()
            .filter(|l| matches!(l, LayerDesc::Conv1d { .. }))
            .count(),
        7
    );
    assert_eq!(
        d.layers
            .iter()
            .filter(|l| matches!(l, LayerDesc::AvgPool { .. }))
            .count(),
        4
    );
    // Spot-check concrete geometry so a field rename or reorder that still
    // "parses" cannot slip through with default values.
    let LayerDesc::Conv1d {
        c_in,
        c_out,
        kernel,
        dilation,
        t_in,
        t_out,
    } = d.layers[0]
    else {
        panic!("layer 0 must be the first convolution");
    };
    assert_eq!(
        (c_in, c_out, kernel, dilation, t_in, t_out),
        (4, 8, 5, 2, 64, 64)
    );
    let LayerDesc::Linear {
        in_features,
        out_features,
    } = d.layers[19]
    else {
        panic!("layer 19 must be the output linear");
    };
    assert_eq!((in_features, out_features), (64, 1));
    // Derived totals are part of the contract too (pit-hw deployment
    // modelling consumes them).
    assert_eq!(d.total_weights(), 22_385);
    assert_eq!(d.total_macs(), 122_432);
}

#[test]
fn golden_fixture_roundtrip_is_byte_stable() {
    let d = NetworkDescriptor::from_json_str(FIXTURE).unwrap();
    let rendered = d.to_json_string();
    assert_eq!(
        rendered.trim_end(),
        FIXTURE.trim_end(),
        "parse → render no longer reproduces the committed fixture: the \
         serialization format changed — bump the schema instead"
    );
    // And the re-rendered text parses back to the same descriptor.
    assert_eq!(NetworkDescriptor::from_json_str(&rendered).unwrap(), d);
}

#[test]
fn golden_fixture_schema_tag_is_stable() {
    assert_eq!(DESCRIPTOR_SCHEMA, "pit-arch/1");
    assert!(FIXTURE.contains("\"pit-arch/1\""));
}

#[test]
fn weight_bearing_v2_artifacts_parse_as_geometry() {
    // `pit-arch/2` (the weight-bearing artifact format of `pit-infer`) is a
    // superset of this geometry document: the descriptor parser reads the
    // same `name`/`layers` fields and ignores the weight payloads, so
    // deployment modelling works on served artifacts without re-export.
    assert_eq!(DESCRIPTOR_SCHEMA_V2, "pit-arch/2");
    for (label, text) in [("f32", FIXTURE_V2_F32), ("i8", FIXTURE_V2_I8)] {
        let d = NetworkDescriptor::from_json_str(text)
            .unwrap_or_else(|e| panic!("{label} artifact must parse as geometry: {e}"));
        assert_eq!(
            d.name,
            "golden-fixture".to_string() + if label == "i8" { "-int8" } else { "" }
        );
        assert!(d.total_macs() > 0, "{label}: derived costs must compute");
        assert!(
            d.layers
                .iter()
                .all(|l| l.weights() > 0 || matches!(l, LayerDesc::AvgPool { .. })),
            "{label}: every layer kind must round-trip"
        );
    }
}
