//! A small configurable searchable TCN for examples and tests.

use crate::descriptor::{LayerDesc, NetworkDescriptor};
use pit_nas::{PitConv1d, SearchableNetwork};
use pit_nn::layers::Linear;
use pit_nn::{Layer, Mode};
use pit_tensor::{Param, Tape, Var};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a [`GenericTcn`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenericTcnConfig {
    /// Input channels.
    pub input_channels: usize,
    /// Output channels of each searchable convolution.
    pub channels: Vec<usize>,
    /// Maximum receptive field of each searchable convolution
    /// (same length as `channels`).
    pub rf_max: Vec<usize>,
    /// Number of regression outputs of the head.
    pub outputs: usize,
}

impl GenericTcnConfig {
    /// A tiny two-layer configuration used as a quick-start example.
    pub fn tiny() -> Self {
        Self {
            input_channels: 1,
            channels: vec![8, 8],
            rf_max: vec![9, 17],
            outputs: 1,
        }
    }
}

/// A stack of searchable convolutions with ReLU activations, global average
/// pooling over time and a linear regression head.
///
/// Input `[N, input_channels, T]`, output `[N, outputs]`.
pub struct GenericTcn {
    convs: Vec<PitConv1d>,
    head: Linear,
    config: GenericTcnConfig,
}

impl GenericTcn {
    /// Builds the network.
    ///
    /// # Panics
    ///
    /// Panics if `channels` and `rf_max` have different lengths or are empty.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, config: &GenericTcnConfig) -> Self {
        assert_eq!(
            config.channels.len(),
            config.rf_max.len(),
            "channels and rf_max lengths differ"
        );
        assert!(
            !config.channels.is_empty(),
            "at least one convolution is required"
        );
        let mut convs = Vec::with_capacity(config.channels.len());
        let mut in_ch = config.input_channels;
        for (i, (&out_ch, &rf)) in config.channels.iter().zip(config.rf_max.iter()).enumerate() {
            convs.push(PitConv1d::new(rng, in_ch, out_ch, rf, format!("conv{i}")));
            in_ch = out_ch;
        }
        let head = Linear::new(rng, in_ch, config.outputs);
        Self {
            convs,
            head,
            config: config.clone(),
        }
    }

    /// The configuration used to build the network.
    pub fn config(&self) -> &GenericTcnConfig {
        &self.config
    }

    /// The searchable convolutions in network order (for plan lowering).
    pub fn conv_layers(&self) -> &[PitConv1d] {
        &self.convs
    }

    /// The linear regression head applied after global average pooling.
    pub fn head(&self) -> &Linear {
        &self.head
    }

    /// Static per-layer description for an input of length `t`.
    pub fn descriptor(&self, t: usize) -> NetworkDescriptor {
        let mut d = NetworkDescriptor::new("GenericTcn");
        for conv in &self.convs {
            d.push(LayerDesc::Conv1d {
                c_in: conv.in_channels(),
                c_out: conv.out_channels(),
                kernel: conv.alive_taps(),
                dilation: conv.dilation(),
                t_in: t,
                t_out: t,
            });
        }
        d.push(LayerDesc::Linear {
            in_features: self.head.in_features(),
            out_features: self.head.out_features(),
        });
        d
    }
}

impl Layer for GenericTcn {
    fn forward(&self, tape: &mut Tape, input: Var, mode: Mode) -> Var {
        let mut x = input;
        for conv in &self.convs {
            x = conv.forward(tape, x, mode);
            x = tape.relu(x);
        }
        let pooled = tape.global_avg_pool_time(x);
        self.head.forward(tape, pooled, mode)
    }

    fn params(&self) -> Vec<Param> {
        let mut p: Vec<Param> = self.convs.iter().flat_map(|c| c.params()).collect();
        p.extend(self.head.params());
        p
    }

    fn describe(&self) -> String {
        format!(
            "GenericTcn(layers={}, dilations={:?})",
            self.convs.len(),
            self.dilations()
        )
    }
}

impl SearchableNetwork for GenericTcn {
    fn pit_layers(&self) -> Vec<&PitConv1d> {
        self.convs.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tiny_config_builds_and_runs() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = GenericTcn::new(&mut rng, &GenericTcnConfig::tiny());
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[2, 1, 32]));
        let y = net.forward(&mut tape, x, Mode::Train);
        assert_eq!(tape.dims(y), vec![2, 1]);
        assert_eq!(net.pit_layers().len(), 2);
        assert_eq!(net.dilations(), vec![1, 1]);
    }

    #[test]
    fn descriptor_reflects_dilations() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = GenericTcn::new(&mut rng, &GenericTcnConfig::tiny());
        let dense = net.descriptor(32).total_macs();
        net.set_dilations(&[8, 16]);
        let pruned = net.descriptor(32).total_macs();
        assert!(pruned < dense);
    }

    #[test]
    #[should_panic]
    fn mismatched_config_lengths_panic() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = GenericTcnConfig {
            channels: vec![4],
            rf_max: vec![9, 9],
            input_channels: 1,
            outputs: 1,
        };
        let _ = GenericTcn::new(&mut rng, &cfg);
    }
}
