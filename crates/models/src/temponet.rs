//! The TEMPONet seed (Zanghieri et al.) used for the PPG-Dalia benchmark.

use crate::concrete::{ConcreteBlock, ConcreteHead, ConcreteTcn};
use crate::descriptor::{LayerDesc, NetworkDescriptor};
use pit_nas::{PitConv1d, SearchableNetwork};
use pit_nn::layers::{AvgPool1d, BatchNorm1d, CausalConv1d, Linear};
use pit_nn::{Layer, Mode};
use pit_tensor::{Param, Tape, Var};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the TEMPONet seed architecture.
///
/// TEMPONet processes windows of PPG + 3-axis accelerometer data
/// (`[N, 4, 256]` at 32 Hz) and regresses the heart rate of the window.
/// The topology used here follows the paper's Table I: seven searchable
/// temporal convolutions grouped in three blocks (3 + 2 + 2), average
/// pooling between blocks, batch normalisation after every convolution and a
/// two-layer fully connected head. Hand-tuned dilations are
/// `2, 2, 1, 4, 4, 8, 8`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TempoNetConfig {
    /// Input channels (PPG + 3-axis accelerometer = 4).
    pub input_channels: usize,
    /// Output channels of each of the seven searchable convolutions.
    pub channels: Vec<usize>,
    /// Kernel size of each of the seven hand-designed convolutions
    /// (the third convolution of the first block uses a wider kernel,
    /// following the original TEMPONet).
    pub kernel_sizes: Vec<usize>,
    /// Hidden width of the fully connected head.
    pub fc_hidden: usize,
    /// Input window length in samples (8 s at 32 Hz = 256).
    pub input_length: usize,
    /// Seed for dropout masks (reserved; TEMPONet blocks use batch norm).
    pub seed: u64,
}

impl TempoNetConfig {
    /// The paper-scale configuration (≈0.9 M seed parameters).
    pub fn paper() -> Self {
        Self {
            input_channels: 4,
            channels: vec![32, 32, 64, 64, 64, 128, 128],
            kernel_sizes: vec![3, 3, 5, 3, 3, 3, 3],
            fc_hidden: 64,
            input_length: 256,
            seed: 0,
        }
    }

    /// A topology-preserving scaled-down configuration: channel counts are
    /// divided by `divisor` (minimum 2 channels each) and the input window is
    /// shortened to `input_length`.
    pub fn scaled(divisor: usize, input_length: usize) -> Self {
        let base = Self::paper();
        Self {
            channels: base
                .channels
                .iter()
                .map(|&c| (c / divisor).max(2))
                .collect(),
            input_length,
            fc_hidden: (base.fc_hidden / divisor).max(2),
            ..base
        }
    }

    /// Hand-tuned dilations of the original network: `2, 2, 1, 4, 4, 8, 8`.
    pub fn hand_tuned_dilations(&self) -> Vec<usize> {
        vec![2, 2, 1, 4, 4, 8, 8]
    }

    /// Dilations of the un-dilated seed (all ones).
    pub fn seed_dilations(&self) -> Vec<usize> {
        vec![1; 7]
    }

    /// Maximum receptive field of every searchable convolution:
    /// `rf_max = (k − 1) · d_hand + 1`.
    pub fn rf_max_per_layer(&self) -> Vec<usize> {
        self.hand_tuned_dilations()
            .iter()
            .zip(self.kernel_sizes.iter())
            .map(|(&d, &k)| (k - 1) * d + 1)
            .collect()
    }

    /// Number of searchable convolutions (seven).
    pub fn num_searchable_layers(&self) -> usize {
        7
    }

    /// How the seven convolutions are grouped into pooled blocks (3 + 2 + 2).
    pub fn block_sizes(&self) -> [usize; 3] {
        [3, 2, 2]
    }

    /// Sequence length after the three pooling stages.
    pub fn final_length(&self) -> usize {
        self.input_length / 8
    }
}

impl Default for TempoNetConfig {
    fn default() -> Self {
        Self::paper()
    }
}

struct TempoBlock {
    convs: Vec<PitConv1d>,
    norms: Vec<BatchNorm1d>,
    pool: AvgPool1d,
}

impl TempoBlock {
    fn forward(&self, tape: &mut Tape, input: Var, mode: Mode) -> Var {
        let mut h = input;
        for (conv, norm) in self.convs.iter().zip(self.norms.iter()) {
            h = conv.forward(tape, h, mode);
            h = norm.forward(tape, h, mode);
            h = tape.relu(h);
        }
        self.pool.forward(tape, h, mode)
    }

    fn params(&self) -> Vec<Param> {
        let mut p: Vec<Param> = self.convs.iter().flat_map(|c| c.params()).collect();
        p.extend(self.norms.iter().flat_map(|n| n.params()));
        p
    }
}

/// Immutable view of one TEMPONet block's layers, exposed for lowering the
/// searched network into a deployable inference plan.
pub struct TempoBlockView<'a> {
    /// The searchable convolutions of the block, in order.
    pub convs: &'a [PitConv1d],
    /// The batch norms following each convolution (same length as `convs`).
    pub norms: &'a [BatchNorm1d],
    /// The pooling stage closing the block.
    pub pool: &'a AvgPool1d,
}

/// The searchable TEMPONet network.
///
/// Input `[N, 4, input_length]`, output `[N, 1]` heart-rate estimates.
pub struct TempoNet {
    blocks: Vec<TempoBlock>,
    fc_hidden: Linear,
    fc_out: Linear,
    config: TempoNetConfig,
}

impl TempoNet {
    /// Builds the seed network (maximally sized filters, dilation 1).
    ///
    /// # Panics
    ///
    /// Panics if `config.input_length` is not divisible by 8 (three pooling
    /// stages of stride 2).
    pub fn new<R: Rng + ?Sized>(rng: &mut R, config: &TempoNetConfig) -> Self {
        assert_eq!(
            config.channels.len(),
            7,
            "TEMPONet needs exactly 7 channel counts"
        );
        assert_eq!(
            config.input_length % 8,
            0,
            "input_length must be divisible by 8 (three stride-2 pooling stages)"
        );
        let rf = config.rf_max_per_layer();
        let mut blocks = Vec::with_capacity(3);
        let mut layer_idx = 0usize;
        let mut in_ch = config.input_channels;
        for (b, &block_len) in config.block_sizes().iter().enumerate() {
            let mut convs = Vec::with_capacity(block_len);
            let mut norms = Vec::with_capacity(block_len);
            for _ in 0..block_len {
                let out_ch = config.channels[layer_idx];
                convs.push(PitConv1d::new(
                    rng,
                    in_ch,
                    out_ch,
                    rf[layer_idx],
                    format!("block{b}.conv{layer_idx}"),
                ));
                norms.push(BatchNorm1d::new(out_ch));
                in_ch = out_ch;
                layer_idx += 1;
            }
            blocks.push(TempoBlock {
                convs,
                norms,
                pool: AvgPool1d::new(2, 2),
            });
        }
        let flat = config.channels[6] * config.final_length();
        let fc_hidden = Linear::new(rng, flat, config.fc_hidden);
        let fc_out = Linear::new(rng, config.fc_hidden, 1);
        Self {
            blocks,
            fc_hidden,
            fc_out,
            config: config.clone(),
        }
    }

    /// The configuration used to build the network.
    pub fn config(&self) -> &TempoNetConfig {
        &self.config
    }

    /// Per-block views of the layers, in network order (for plan lowering).
    pub fn block_views(&self) -> Vec<TempoBlockView<'_>> {
        self.blocks
            .iter()
            .map(|b| TempoBlockView {
                convs: &b.convs,
                norms: &b.norms,
                pool: &b.pool,
            })
            .collect()
    }

    /// The two dense layers of the regression head (hidden, output).
    pub fn fc_layers(&self) -> (&Linear, &Linear) {
        (&self.fc_hidden, &self.fc_out)
    }

    /// Static per-layer description of the currently pruned network for the
    /// configured input length.
    pub fn descriptor(&self) -> NetworkDescriptor {
        let mut d = NetworkDescriptor::new("TEMPONet");
        let mut t = self.config.input_length;
        for block in &self.blocks {
            for conv in &block.convs {
                d.push(LayerDesc::Conv1d {
                    c_in: conv.in_channels(),
                    c_out: conv.out_channels(),
                    kernel: conv.alive_taps(),
                    dilation: conv.dilation(),
                    t_in: t,
                    t_out: t,
                });
                d.push(LayerDesc::BatchNorm {
                    channels: conv.out_channels(),
                    t,
                });
            }
            let t_out = (t - 2) / 2 + 1;
            d.push(LayerDesc::AvgPool {
                channels: block.convs.last().expect("non-empty block").out_channels(),
                kernel: 2,
                stride: 2,
                t_in: t,
                t_out,
            });
            t = t_out;
        }
        d.push(LayerDesc::Linear {
            in_features: self.fc_hidden.in_features(),
            out_features: self.fc_hidden.out_features(),
        });
        d.push(LayerDesc::Linear {
            in_features: self.fc_out.in_features(),
            out_features: self.fc_out.out_features(),
        });
        d
    }

    /// Builds the deployable, truly dilated network for a dilation assignment.
    pub fn concrete<R: Rng + ?Sized>(
        rng: &mut R,
        config: &TempoNetConfig,
        dilations: &[usize],
    ) -> ConcreteTcn {
        assert_eq!(dilations.len(), 7, "TEMPONet needs exactly 7 dilations");
        let rf = config.rf_max_per_layer();
        let mut blocks = Vec::with_capacity(3);
        let mut layer_idx = 0usize;
        let mut in_ch = config.input_channels;
        for &block_len in config.block_sizes().iter() {
            let mut convs = Vec::with_capacity(block_len);
            let mut norms = Vec::with_capacity(block_len);
            for _ in 0..block_len {
                let out_ch = config.channels[layer_idx];
                let k = (rf[layer_idx] - 1) / dilations[layer_idx] + 1;
                convs.push(CausalConv1d::new(
                    rng,
                    in_ch,
                    out_ch,
                    k,
                    dilations[layer_idx],
                ));
                norms.push(BatchNorm1d::new(out_ch));
                in_ch = out_ch;
                layer_idx += 1;
            }
            blocks.push(ConcreteBlock::Plain {
                convs,
                norms,
                pool: Some(AvgPool1d::new(2, 2)),
            });
        }
        let flat = config.channels[6] * config.final_length();
        ConcreteTcn::new(
            "TEMPONet-concrete",
            blocks,
            ConcreteHead::Fc {
                hidden: Linear::new(rng, flat, config.fc_hidden),
                output: Linear::new(rng, config.fc_hidden, 1),
            },
        )
    }
}

impl Layer for TempoNet {
    fn forward(&self, tape: &mut Tape, input: Var, mode: Mode) -> Var {
        let mut x = input;
        for block in &self.blocks {
            x = block.forward(tape, x, mode);
        }
        let flat = tape.flatten_batch(x);
        let h = self.fc_hidden.forward(tape, flat, mode);
        let h = tape.relu(h);
        self.fc_out.forward(tape, h, mode)
    }

    fn params(&self) -> Vec<Param> {
        let mut p: Vec<Param> = self.blocks.iter().flat_map(|b| b.params()).collect();
        p.extend(self.fc_hidden.params());
        p.extend(self.fc_out.params());
        p
    }

    fn describe(&self) -> String {
        format!(
            "TEMPONet(channels={:?}, dilations={:?})",
            self.config.channels,
            self.dilations()
        )
    }
}

impl SearchableNetwork for TempoNet {
    fn pit_layers(&self) -> Vec<&PitConv1d> {
        self.blocks.iter().flat_map(|b| b.convs.iter()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_nas::SearchSpace;
    use pit_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config() -> TempoNetConfig {
        TempoNetConfig::scaled(8, 64)
    }

    #[test]
    fn config_matches_paper_structure() {
        let cfg = TempoNetConfig::paper();
        assert_eq!(cfg.hand_tuned_dilations(), vec![2, 2, 1, 4, 4, 8, 8]);
        assert_eq!(cfg.rf_max_per_layer(), vec![5, 5, 5, 9, 9, 17, 17]);
        assert_eq!(cfg.num_searchable_layers(), 7);
        assert_eq!(cfg.final_length(), 32);
    }

    #[test]
    fn search_space_is_about_1e4() {
        let cfg = TempoNetConfig::paper();
        let space = SearchSpace::new(cfg.rf_max_per_layer());
        // 3*3*3*4*4*5*5 = 10 800 ≈ 10^4, the order of magnitude quoted in Sec. IV-B.
        assert_eq!(space.size(), 10_800);
        assert!((3.5..4.2).contains(&space.log10_size()));
    }

    #[test]
    fn forward_shape_is_scalar_regression() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = small_config();
        let net = TempoNet::new(&mut rng, &cfg);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[3, 4, cfg.input_length]));
        let y = net.forward(&mut tape, x, Mode::Train);
        assert_eq!(tape.dims(y), vec![3, 1]);
    }

    #[test]
    fn has_seven_searchable_layers() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = TempoNet::new(&mut rng, &small_config());
        assert_eq!(net.pit_layers().len(), 7);
        net.set_dilations(&[2, 4, 4, 8, 8, 16, 16]); // PIT TEMPONet "small" of Table I
        assert_eq!(net.dilations(), vec![2, 4, 4, 8, 8, 16, 16]);
    }

    #[test]
    fn paper_scale_parameter_counts_are_close_to_table3() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = TempoNetConfig::paper();
        let net = TempoNet::new(&mut rng, &cfg);
        // Seed (d = 1): Table III reports 939 k.
        let seed_params = net.effective_weights();
        assert!(
            (600_000..1_300_000).contains(&seed_params),
            "seed params = {seed_params}"
        );
        // Hand-tuned: Table III reports 423 k.
        net.set_dilations(&cfg.hand_tuned_dilations());
        let hand = net.effective_weights();
        assert!(
            (250_000..600_000).contains(&hand),
            "hand-tuned params = {hand}"
        );
        assert!(seed_params > hand);
    }

    #[test]
    fn descriptor_covers_all_stages() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = small_config();
        let net = TempoNet::new(&mut rng, &cfg);
        let desc = net.descriptor();
        // 7 convs + 7 bns + 3 pools + 2 linears
        assert_eq!(desc.len(), 19);
        assert!(desc.total_macs() > 0);
    }

    #[test]
    fn concrete_matches_effective_weight_count_up_to_bn() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = small_config();
        let dil = cfg.hand_tuned_dilations();
        let concrete = TempoNet::concrete(&mut rng, &cfg, &dil);
        let searchable = TempoNet::new(&mut rng, &cfg);
        searchable.set_dilations(&dil);
        assert_eq!(concrete.num_weights(), searchable.effective_weights());
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[2, 4, cfg.input_length]));
        let y = concrete.forward(&mut tape, x, Mode::Eval);
        assert_eq!(tape.dims(y), vec![2, 1]);
    }

    #[test]
    #[should_panic]
    fn input_length_must_be_divisible_by_eight() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = TempoNetConfig {
            input_length: 30,
            ..small_config()
        };
        let _ = TempoNet::new(&mut rng, &cfg);
    }
}
