//! The residual TCN (Bai et al.) seed used for the Nottingham benchmark.

use crate::concrete::{ConcreteBlock, ConcreteHead, ConcreteTcn};
use crate::descriptor::{LayerDesc, NetworkDescriptor};
use pit_nas::{PitConv1d, SearchableNetwork};
use pit_nn::layers::{CausalConv1d, Dropout};
use pit_nn::{Layer, Mode};
use pit_tensor::{Param, Tape, Var};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the ResTCN seed architecture.
///
/// The paper starts from the TCN of Bai et al. for polyphonic music: four
/// residual blocks of two dilated convolutions each (hand-tuned dilations
/// `1, 1, 2, 2, 4, 4, 8, 8`, kernel 5, 150 hidden channels, 88-key
/// per-time-step output). The PIT seed keeps the receptive field of every
/// convolution but sets `d = 1`, which is exactly what [`ResTcn::new`]
/// builds: each searchable convolution has `rf_max = (k − 1) · d_hand + 1`
/// dense taps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResTcnConfig {
    /// Input channels (88 piano keys).
    pub input_channels: usize,
    /// Output channels (88 piano keys, per-time-step logits).
    pub output_channels: usize,
    /// Hidden channels of every residual block.
    pub hidden_channels: usize,
    /// Number of residual blocks (two convolutions each).
    pub num_blocks: usize,
    /// Kernel size of the original hand-designed convolutions.
    pub kernel_size: usize,
    /// Dropout probability inside the residual blocks.
    pub dropout: f32,
    /// Seed for the dropout masks.
    pub seed: u64,
}

impl ResTcnConfig {
    /// The paper-scale configuration (≈3.5 M seed parameters).
    pub fn paper() -> Self {
        Self {
            input_channels: 88,
            output_channels: 88,
            hidden_channels: 150,
            num_blocks: 4,
            kernel_size: 5,
            dropout: 0.1,
            seed: 0,
        }
    }

    /// A topology-preserving scaled-down configuration for fast experiments:
    /// same blocks, kernels and dilation search space, `hidden` channels.
    pub fn scaled(hidden: usize) -> Self {
        Self {
            hidden_channels: hidden,
            ..Self::paper()
        }
    }

    /// The hand-tuned dilations of the original network:
    /// `1, 1, 2, 2, 4, 4, 8, 8` (doubling every block).
    pub fn hand_tuned_dilations(&self) -> Vec<usize> {
        (0..self.num_blocks)
            .flat_map(|b| [1usize << b, 1usize << b])
            .collect()
    }

    /// The dilations of the un-dilated seed (all ones).
    pub fn seed_dilations(&self) -> Vec<usize> {
        vec![1; 2 * self.num_blocks]
    }

    /// Maximum receptive field of every searchable convolution:
    /// `rf_max = (k − 1) · d_hand + 1`.
    pub fn rf_max_per_layer(&self) -> Vec<usize> {
        self.hand_tuned_dilations()
            .iter()
            .map(|&d| (self.kernel_size - 1) * d + 1)
            .collect()
    }

    /// Number of searchable convolutions.
    pub fn num_searchable_layers(&self) -> usize {
        2 * self.num_blocks
    }
}

impl Default for ResTcnConfig {
    fn default() -> Self {
        Self::paper()
    }
}

struct ResBlock {
    conv1: PitConv1d,
    conv2: PitConv1d,
    downsample: Option<CausalConv1d>,
    dropout: Dropout,
}

impl ResBlock {
    fn forward(&self, tape: &mut Tape, input: Var, mode: Mode) -> Var {
        let h = self.conv1.forward(tape, input, mode);
        let h = tape.relu(h);
        let h = self.dropout.forward(tape, h, mode);
        let h = self.conv2.forward(tape, h, mode);
        let h = tape.relu(h);
        let h = self.dropout.forward(tape, h, mode);
        let residual = match &self.downsample {
            Some(proj) => proj.forward(tape, input, mode),
            None => input,
        };
        let sum = tape.add(h, residual);
        tape.relu(sum)
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.conv1.params();
        p.extend(self.conv2.params());
        if let Some(proj) = &self.downsample {
            p.extend(proj.params());
        }
        p
    }
}

/// Immutable view of one residual block's layers, exposed for lowering the
/// searched network into a deployable inference plan.
pub struct ResBlockView<'a> {
    /// First searchable convolution of the block.
    pub conv1: &'a PitConv1d,
    /// Second searchable convolution of the block.
    pub conv2: &'a PitConv1d,
    /// Optional 1×1 projection on the skip path.
    pub downsample: Option<&'a CausalConv1d>,
}

/// The searchable ResTCN network: four residual blocks of two [`PitConv1d`]
/// layers each, followed by a per-time-step 1×1 output convolution.
///
/// Input `[N, input_channels, T]`, output `[N, output_channels, T]` logits.
pub struct ResTcn {
    blocks: Vec<ResBlock>,
    head: CausalConv1d,
    config: ResTcnConfig,
}

impl ResTcn {
    /// Builds the seed network (maximally sized filters, dilation 1).
    pub fn new<R: Rng + ?Sized>(rng: &mut R, config: &ResTcnConfig) -> Self {
        let rf = config.rf_max_per_layer();
        let mut blocks = Vec::with_capacity(config.num_blocks);
        for b in 0..config.num_blocks {
            let in_ch = if b == 0 {
                config.input_channels
            } else {
                config.hidden_channels
            };
            let out_ch = config.hidden_channels;
            let conv1 = PitConv1d::new(rng, in_ch, out_ch, rf[2 * b], format!("block{b}.conv1"));
            let conv2 = PitConv1d::new(
                rng,
                out_ch,
                out_ch,
                rf[2 * b + 1],
                format!("block{b}.conv2"),
            );
            let downsample = if in_ch != out_ch {
                Some(CausalConv1d::new(rng, in_ch, out_ch, 1, 1))
            } else {
                None
            };
            let dropout = Dropout::new(config.dropout, config.seed.wrapping_add(b as u64));
            blocks.push(ResBlock {
                conv1,
                conv2,
                downsample,
                dropout,
            });
        }
        let head = CausalConv1d::new(rng, config.hidden_channels, config.output_channels, 1, 1);
        Self {
            blocks,
            head,
            config: config.clone(),
        }
    }

    /// The configuration used to build the network.
    pub fn config(&self) -> &ResTcnConfig {
        &self.config
    }

    /// Per-block views of the layers, in network order (for plan lowering).
    pub fn block_views(&self) -> Vec<ResBlockView<'_>> {
        self.blocks
            .iter()
            .map(|b| ResBlockView {
                conv1: &b.conv1,
                conv2: &b.conv2,
                downsample: b.downsample.as_ref(),
            })
            .collect()
    }

    /// The per-time-step 1×1 output convolution.
    pub fn head(&self) -> &CausalConv1d {
        &self.head
    }

    /// Static per-layer description of the *currently pruned* network for an
    /// input of length `t`, suitable for the GAP8 deployment model.
    pub fn descriptor(&self, t: usize) -> NetworkDescriptor {
        let mut d = NetworkDescriptor::new("ResTCN");
        for block in &self.blocks {
            for conv in [&block.conv1, &block.conv2] {
                d.push(LayerDesc::Conv1d {
                    c_in: conv.in_channels(),
                    c_out: conv.out_channels(),
                    kernel: conv.alive_taps(),
                    dilation: conv.dilation(),
                    t_in: t,
                    t_out: t,
                });
            }
            if let Some(proj) = &block.downsample {
                d.push(LayerDesc::Conv1d {
                    c_in: proj.in_channels(),
                    c_out: proj.out_channels(),
                    kernel: 1,
                    dilation: 1,
                    t_in: t,
                    t_out: t,
                });
            }
        }
        d.push(LayerDesc::Conv1d {
            c_in: self.head.in_channels(),
            c_out: self.head.out_channels(),
            kernel: 1,
            dilation: 1,
            t_in: t,
            t_out: t,
        });
        d
    }

    /// Builds the deployable, truly dilated network equivalent to the given
    /// dilation assignment (kernel of each convolution shrunk to its alive
    /// taps). Weights are freshly initialised — this constructor is used for
    /// training-cost comparisons and deployment studies, not weight export.
    pub fn concrete<R: Rng + ?Sized>(
        rng: &mut R,
        config: &ResTcnConfig,
        dilations: &[usize],
    ) -> ConcreteTcn {
        assert_eq!(
            dilations.len(),
            config.num_searchable_layers(),
            "expected {} dilations",
            config.num_searchable_layers()
        );
        let rf = config.rf_max_per_layer();
        let mut blocks = Vec::with_capacity(config.num_blocks);
        for b in 0..config.num_blocks {
            let in_ch = if b == 0 {
                config.input_channels
            } else {
                config.hidden_channels
            };
            let out_ch = config.hidden_channels;
            let k1 = (rf[2 * b] - 1) / dilations[2 * b] + 1;
            let k2 = (rf[2 * b + 1] - 1) / dilations[2 * b + 1] + 1;
            blocks.push(ConcreteBlock::Residual {
                conv1: CausalConv1d::new(rng, in_ch, out_ch, k1, dilations[2 * b]),
                conv2: CausalConv1d::new(rng, out_ch, out_ch, k2, dilations[2 * b + 1]),
                downsample: if in_ch != out_ch {
                    Some(CausalConv1d::new(rng, in_ch, out_ch, 1, 1))
                } else {
                    None
                },
                dropout: Dropout::new(config.dropout, config.seed.wrapping_add(100 + b as u64)),
            });
        }
        let head = ConcreteHead::PerStep(CausalConv1d::new(
            rng,
            config.hidden_channels,
            config.output_channels,
            1,
            1,
        ));
        ConcreteTcn::new("ResTCN-concrete", blocks, head)
    }
}

impl Layer for ResTcn {
    fn forward(&self, tape: &mut Tape, input: Var, mode: Mode) -> Var {
        let mut x = input;
        for block in &self.blocks {
            x = block.forward(tape, x, mode);
        }
        self.head.forward(tape, x, mode)
    }

    fn params(&self) -> Vec<Param> {
        let mut p: Vec<Param> = self.blocks.iter().flat_map(|b| b.params()).collect();
        p.extend(self.head.params());
        p
    }

    fn describe(&self) -> String {
        format!(
            "ResTCN(blocks={}, hidden={}, dilations={:?})",
            self.config.num_blocks,
            self.config.hidden_channels,
            self.dilations()
        )
    }
}

impl SearchableNetwork for ResTcn {
    fn pit_layers(&self) -> Vec<&PitConv1d> {
        self.blocks
            .iter()
            .flat_map(|b| [&b.conv1, &b.conv2])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_nas::SearchSpace;
    use pit_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config() -> ResTcnConfig {
        ResTcnConfig {
            hidden_channels: 8,
            input_channels: 6,
            output_channels: 6,
            ..ResTcnConfig::paper()
        }
    }

    #[test]
    fn config_matches_paper_structure() {
        let cfg = ResTcnConfig::paper();
        assert_eq!(cfg.hand_tuned_dilations(), vec![1, 1, 2, 2, 4, 4, 8, 8]);
        assert_eq!(cfg.rf_max_per_layer(), vec![5, 5, 9, 9, 17, 17, 33, 33]);
        assert_eq!(cfg.num_searchable_layers(), 8);
        assert_eq!(cfg.seed_dilations(), vec![1; 8]);
    }

    #[test]
    fn search_space_is_about_1e5() {
        let cfg = ResTcnConfig::paper();
        let space = SearchSpace::new(cfg.rf_max_per_layer());
        // 3*3*4*4*5*5*6*6 = 129 600 ≈ 10^5, the order of magnitude quoted in Sec. IV-B.
        assert_eq!(space.size(), 129_600);
        assert!((5.0..5.3).contains(&space.log10_size()));
    }

    #[test]
    fn forward_shape_per_timestep_logits() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = ResTcn::new(&mut rng, &small_config());
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[2, 6, 24]));
        let y = net.forward(&mut tape, x, Mode::Train);
        assert_eq!(tape.dims(y), vec![2, 6, 24]);
    }

    #[test]
    fn has_eight_searchable_layers() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = ResTcn::new(&mut rng, &small_config());
        assert_eq!(net.pit_layers().len(), 8);
        assert_eq!(net.dilations(), vec![1; 8]);
        net.set_dilations(&[1, 1, 2, 2, 4, 4, 8, 8]);
        assert_eq!(net.dilations(), vec![1, 1, 2, 2, 4, 4, 8, 8]);
    }

    #[test]
    fn paper_scale_parameter_counts_are_close_to_table3() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = ResTcnConfig::paper();
        let net = ResTcn::new(&mut rng, &cfg);
        // Seed (d = 1, maximally sized filters): Table III reports 3.53 M.
        let seed_params = net.effective_weights();
        assert!(
            (2_500_000..4_500_000).contains(&seed_params),
            "seed params = {seed_params}"
        );
        // Hand-tuned dilations: Table III reports 1.05 M.
        net.set_dilations(&cfg.hand_tuned_dilations());
        let hand_params = net.effective_weights();
        assert!(
            (700_000..1_500_000).contains(&hand_params),
            "hand-tuned params = {hand_params}"
        );
        assert!(seed_params as f32 / hand_params as f32 > 2.0);
    }

    #[test]
    fn dilation_changes_effective_params_but_not_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = ResTcn::new(&mut rng, &small_config());
        let dense = net.effective_weights();
        net.set_dilations(&[1, 4, 8, 8, 16, 16, 8, 1]); // PIT ResTCN "large" of Table I
        assert!(net.effective_weights() < dense);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[1, 6, 16]));
        let y = net.forward(&mut tape, x, Mode::Eval);
        assert_eq!(tape.dims(y), vec![1, 6, 16]);
    }

    #[test]
    fn descriptor_tracks_pruned_kernels() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = small_config();
        let net = ResTcn::new(&mut rng, &cfg);
        let dense_desc = net.descriptor(32);
        net.set_dilations(&cfg.hand_tuned_dilations());
        let pruned_desc = net.descriptor(32);
        assert_eq!(dense_desc.len(), pruned_desc.len());
        assert!(pruned_desc.total_macs() < dense_desc.total_macs());
        assert!(pruned_desc.total_weights() < dense_desc.total_weights());
    }

    #[test]
    fn concrete_network_runs_and_matches_descriptor_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = small_config();
        let dil = cfg.hand_tuned_dilations();
        let concrete = ResTcn::concrete(&mut rng, &cfg, &dil);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[1, 6, 16]));
        let y = concrete.forward(&mut tape, x, Mode::Eval);
        assert_eq!(tape.dims(y), vec![1, 6, 16]);
        // The concrete network has roughly the weight count of the pruned searchable one
        // (searchable still stores masked taps; effective_weights counts alive ones).
        let searchable = ResTcn::new(&mut rng, &cfg);
        searchable.set_dilations(&dil);
        assert_eq!(concrete.num_weights(), searchable.effective_weights());
    }
}
