//! Deployable, truly dilated instantiations of (searched) architectures.
//!
//! [`crate::ResTcn`] and [`crate::TempoNet`] train with *masked dense*
//! convolutions (every tap stored, pruned taps zeroed), which is what makes
//! the PIT search cost comparable to a single training. Once a dilation
//! assignment is chosen, the deployable network only stores and executes the
//! alive taps: that network is a [`ConcreteTcn`]. It is used for the
//! plain-training baseline of Fig. 5 and by the GAP8 deployment study.

use pit_nn::layers::{AvgPool1d, BatchNorm1d, CausalConv1d, Dropout, Linear};
use pit_nn::{Layer, Mode};
use pit_tensor::{Param, Tape, Var};

/// One block of a concrete (deployable) TCN.
pub enum ConcreteBlock {
    /// A residual block: two convolutions with a skip connection
    /// (ResTCN-style).
    Residual {
        /// First convolution.
        conv1: CausalConv1d,
        /// Second convolution.
        conv2: CausalConv1d,
        /// Optional 1×1 projection for the skip path when channel counts differ.
        downsample: Option<CausalConv1d>,
        /// Dropout applied after each convolution.
        dropout: Dropout,
    },
    /// A feed-forward block: convolutions with batch norm and ReLU, followed
    /// by optional average pooling (TEMPONet-style).
    Plain {
        /// Convolutions of the block, applied in order.
        convs: Vec<CausalConv1d>,
        /// Batch normalisation after each convolution (same length as `convs`).
        norms: Vec<BatchNorm1d>,
        /// Optional pooling at the end of the block.
        pool: Option<AvgPool1d>,
    },
}

/// The output head of a concrete TCN.
pub enum ConcreteHead {
    /// Per-time-step 1×1 convolution producing `[N, C_out, T]` logits.
    PerStep(CausalConv1d),
    /// Flatten followed by a two-layer MLP producing `[N, out]` values.
    Fc {
        /// Hidden dense layer.
        hidden: Linear,
        /// Output dense layer.
        output: Linear,
    },
}

/// A deployable TCN with true dilated convolutions (only alive taps stored).
pub struct ConcreteTcn {
    name: String,
    blocks: Vec<ConcreteBlock>,
    head: ConcreteHead,
}

impl ConcreteTcn {
    /// Creates a concrete network from its blocks and head.
    pub fn new(name: impl Into<String>, blocks: Vec<ConcreteBlock>, head: ConcreteHead) -> Self {
        Self {
            name: name.into(),
            blocks,
            head,
        }
    }

    /// The network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The blocks in network order, for lowering into an inference plan.
    pub fn blocks(&self) -> &[ConcreteBlock] {
        &self.blocks
    }

    /// The output head, for lowering into an inference plan.
    pub fn head(&self) -> &ConcreteHead {
        &self.head
    }
}

impl Layer for ConcreteTcn {
    fn forward(&self, tape: &mut Tape, input: Var, mode: Mode) -> Var {
        let mut x = input;
        for block in &self.blocks {
            x = match block {
                ConcreteBlock::Residual {
                    conv1,
                    conv2,
                    downsample,
                    dropout,
                } => {
                    let h = conv1.forward(tape, x, mode);
                    let h = tape.relu(h);
                    let h = dropout.forward(tape, h, mode);
                    let h = conv2.forward(tape, h, mode);
                    let h = tape.relu(h);
                    let h = dropout.forward(tape, h, mode);
                    let residual = match downsample {
                        Some(proj) => proj.forward(tape, x, mode),
                        None => x,
                    };
                    let sum = tape.add(h, residual);
                    tape.relu(sum)
                }
                ConcreteBlock::Plain { convs, norms, pool } => {
                    let mut h = x;
                    for (conv, norm) in convs.iter().zip(norms.iter()) {
                        h = conv.forward(tape, h, mode);
                        h = norm.forward(tape, h, mode);
                        h = tape.relu(h);
                    }
                    match pool {
                        Some(p) => p.forward(tape, h, mode),
                        None => h,
                    }
                }
            };
        }
        match &self.head {
            ConcreteHead::PerStep(conv) => conv.forward(tape, x, mode),
            ConcreteHead::Fc { hidden, output } => {
                let flat = tape.flatten_batch(x);
                let h = hidden.forward(tape, flat, mode);
                let h = tape.relu(h);
                output.forward(tape, h, mode)
            }
        }
    }

    fn params(&self) -> Vec<Param> {
        let mut p = Vec::new();
        for block in &self.blocks {
            match block {
                ConcreteBlock::Residual {
                    conv1,
                    conv2,
                    downsample,
                    ..
                } => {
                    p.extend(conv1.params());
                    p.extend(conv2.params());
                    if let Some(proj) = downsample {
                        p.extend(proj.params());
                    }
                }
                ConcreteBlock::Plain { convs, norms, .. } => {
                    for c in convs {
                        p.extend(c.params());
                    }
                    for n in norms {
                        p.extend(n.params());
                    }
                }
            }
        }
        match &self.head {
            ConcreteHead::PerStep(conv) => p.extend(conv.params()),
            ConcreteHead::Fc { hidden, output } => {
                p.extend(hidden.params());
                p.extend(output.params());
            }
        }
        p
    }

    fn describe(&self) -> String {
        format!("ConcreteTcn({}, {} blocks)", self.name, self.blocks.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plain_net() -> ConcreteTcn {
        let mut rng = StdRng::seed_from_u64(0);
        ConcreteTcn::new(
            "toy",
            vec![ConcreteBlock::Plain {
                convs: vec![CausalConv1d::new(&mut rng, 2, 4, 3, 2)],
                norms: vec![BatchNorm1d::new(4)],
                pool: Some(AvgPool1d::new(2, 2)),
            }],
            ConcreteHead::Fc {
                hidden: Linear::new(&mut rng, 4 * 8, 8),
                output: Linear::new(&mut rng, 8, 1),
            },
        )
    }

    #[test]
    fn plain_block_with_fc_head_shapes() {
        let net = plain_net();
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[3, 2, 16]));
        let y = net.forward(&mut tape, x, Mode::Train);
        assert_eq!(tape.dims(y), vec![3, 1]);
        assert_eq!(net.num_blocks(), 1);
        assert_eq!(net.name(), "toy");
        assert!(net.describe().contains("toy"));
    }

    #[test]
    fn residual_block_with_per_step_head_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = ConcreteTcn::new(
            "res",
            vec![ConcreteBlock::Residual {
                conv1: CausalConv1d::new(&mut rng, 3, 5, 2, 1),
                conv2: CausalConv1d::new(&mut rng, 5, 5, 2, 2),
                downsample: Some(CausalConv1d::new(&mut rng, 3, 5, 1, 1)),
                dropout: Dropout::new(0.0, 0),
            }],
            ConcreteHead::PerStep(CausalConv1d::new(&mut rng, 5, 3, 1, 1)),
        );
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[2, 3, 10]));
        let y = net.forward(&mut tape, x, Mode::Eval);
        assert_eq!(tape.dims(y), vec![2, 3, 10]);
        assert!(net.num_weights() > 0);
    }

    #[test]
    fn params_cover_all_layers() {
        let net = plain_net();
        // conv (w + b) + bn (gamma + beta) + 2 linears (w + b each) = 8 params
        assert_eq!(net.params().len(), 8);
    }
}
