//! # pit-models
//!
//! The seed temporal convolutional networks used by the PIT paper, rebuilt on
//! top of [`pit_nn`] and [`pit_nas`]:
//!
//! * [`ResTcn`] — the residual TCN of Bai et al. used for the Nottingham
//!   polyphonic-music benchmark (eight searchable convolutions in four
//!   residual blocks, per-time-step 88-key output);
//! * [`TempoNet`] — the TEMPONet architecture of Zanghieri et al. used for
//!   the PPG-Dalia heart-rate benchmark (seven searchable convolutions in
//!   three blocks, pooling and a fully connected regression head);
//! * [`GenericTcn`] — a small configurable TCN used by examples and tests;
//! * [`ConcreteTcn`] — the deployable, truly dilated instantiation of a
//!   (possibly searched) architecture, used for training-cost comparisons and
//!   for the GAP8 deployment model;
//! * [`NetworkDescriptor`] — a static per-layer description (shapes, kernel,
//!   dilation, MACs) consumed by the `pit-hw` deployment model.
//!
//! Both seed networks are width-scalable: the paper-scale configuration
//! (`*_paper()`) matches the parameter counts reported in Table III, while
//! the scaled-down configurations keep the same topology at a size that
//! trains quickly inside the test-suite and the benchmark harness.

pub mod concrete;
pub mod descriptor;
pub mod generic;
pub mod restcn;
pub mod temponet;

pub use concrete::{ConcreteBlock, ConcreteHead, ConcreteTcn};
pub use descriptor::{LayerDesc, NetworkDescriptor, DESCRIPTOR_SCHEMA, DESCRIPTOR_SCHEMA_V2};
pub use generic::{GenericTcn, GenericTcnConfig};
pub use restcn::{ResBlockView, ResTcn, ResTcnConfig};
pub use temponet::{TempoBlockView, TempoNet, TempoNetConfig};
