//! Static per-layer network descriptions consumed by the deployment model.

use serde::{Deserialize, Serialize};

/// One layer of a deployable network, with the static information the GAP8
/// model needs: tensor sizes, kernel geometry and arithmetic cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerDesc {
    /// A (possibly dilated) 1-D convolution.
    Conv1d {
        /// Input channels.
        c_in: usize,
        /// Output channels.
        c_out: usize,
        /// Kernel taps actually stored/executed.
        kernel: usize,
        /// Dilation between taps.
        dilation: usize,
        /// Input sequence length.
        t_in: usize,
        /// Output sequence length.
        t_out: usize,
    },
    /// A fully connected layer.
    Linear {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
    /// Average pooling over time.
    AvgPool {
        /// Channels (unchanged).
        channels: usize,
        /// Pooling window.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Input sequence length.
        t_in: usize,
        /// Output sequence length.
        t_out: usize,
    },
    /// Batch normalisation (folded at inference time, but listed for
    /// completeness of the memory inventory).
    BatchNorm {
        /// Channels.
        channels: usize,
        /// Sequence length.
        t: usize,
    },
}

impl LayerDesc {
    /// Number of multiply-accumulate operations of the layer.
    pub fn macs(&self) -> u64 {
        match self {
            LayerDesc::Conv1d {
                c_in,
                c_out,
                kernel,
                t_out,
                ..
            } => (*c_in as u64) * (*c_out as u64) * (*kernel as u64) * (*t_out as u64),
            LayerDesc::Linear {
                in_features,
                out_features,
            } => (*in_features as u64) * (*out_features as u64),
            LayerDesc::AvgPool {
                channels,
                kernel,
                t_out,
                ..
            } => (*channels as u64) * (*kernel as u64) * (*t_out as u64),
            LayerDesc::BatchNorm { channels, t } => (*channels as u64) * (*t as u64),
        }
    }

    /// Number of weights stored for the layer (biases included).
    pub fn weights(&self) -> u64 {
        match self {
            LayerDesc::Conv1d {
                c_in,
                c_out,
                kernel,
                ..
            } => (*c_in as u64) * (*c_out as u64) * (*kernel as u64) + *c_out as u64,
            LayerDesc::Linear {
                in_features,
                out_features,
            } => (*in_features as u64) * (*out_features as u64) + *out_features as u64,
            LayerDesc::AvgPool { .. } => 0,
            LayerDesc::BatchNorm { channels, .. } => 2 * *channels as u64,
        }
    }

    /// Size in elements of the layer's output activation.
    pub fn output_elements(&self) -> u64 {
        match self {
            LayerDesc::Conv1d { c_out, t_out, .. } => (*c_out as u64) * (*t_out as u64),
            LayerDesc::Linear { out_features, .. } => *out_features as u64,
            LayerDesc::AvgPool {
                channels, t_out, ..
            } => (*channels as u64) * (*t_out as u64),
            LayerDesc::BatchNorm { channels, t } => (*channels as u64) * (*t as u64),
        }
    }

    /// Size in elements of the layer's input activation.
    pub fn input_elements(&self) -> u64 {
        match self {
            LayerDesc::Conv1d { c_in, t_in, .. } => (*c_in as u64) * (*t_in as u64),
            LayerDesc::Linear { in_features, .. } => *in_features as u64,
            LayerDesc::AvgPool { channels, t_in, .. } => (*channels as u64) * (*t_in as u64),
            LayerDesc::BatchNorm { channels, t } => (*channels as u64) * (*t as u64),
        }
    }
}

/// A static description of a deployable network: an ordered list of layers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkDescriptor {
    /// Network name (for reports).
    pub name: String,
    /// Ordered layers.
    pub layers: Vec<LayerDesc>,
}

impl NetworkDescriptor {
    /// Creates an empty descriptor.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            layers: Vec::new(),
        }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: LayerDesc) {
        self.layers.push(layer);
    }

    /// Total multiply-accumulate count of one inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs()).sum()
    }

    /// Total number of stored weights.
    pub fn total_weights(&self) -> u64 {
        self.layers.iter().map(|l| l.weights()).sum()
    }

    /// Largest single-layer activation (input + output elements), a proxy for
    /// the working-set size the deployment model must fit into on-chip memory.
    pub fn peak_activation_elements(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.input_elements() + l.output_elements())
            .max()
            .unwrap_or(0)
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the descriptor holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_macs_and_weights() {
        let l = LayerDesc::Conv1d {
            c_in: 2,
            c_out: 4,
            kernel: 3,
            dilation: 2,
            t_in: 16,
            t_out: 16,
        };
        assert_eq!(l.macs(), 2 * 4 * 3 * 16);
        assert_eq!(l.weights(), 2 * 4 * 3 + 4);
        assert_eq!(l.output_elements(), 4 * 16);
        assert_eq!(l.input_elements(), 2 * 16);
    }

    #[test]
    fn linear_and_pool_costs() {
        let lin = LayerDesc::Linear {
            in_features: 128,
            out_features: 64,
        };
        assert_eq!(lin.macs(), 128 * 64);
        assert_eq!(lin.weights(), 128 * 64 + 64);
        let pool = LayerDesc::AvgPool {
            channels: 8,
            kernel: 2,
            stride: 2,
            t_in: 16,
            t_out: 8,
        };
        assert_eq!(pool.weights(), 0);
        assert_eq!(pool.macs(), 8 * 2 * 8);
        let bn = LayerDesc::BatchNorm { channels: 8, t: 16 };
        assert_eq!(bn.weights(), 16);
    }

    #[test]
    fn descriptor_totals() {
        let mut d = NetworkDescriptor::new("toy");
        d.push(LayerDesc::Conv1d {
            c_in: 1,
            c_out: 2,
            kernel: 3,
            dilation: 1,
            t_in: 8,
            t_out: 8,
        });
        d.push(LayerDesc::Linear {
            in_features: 16,
            out_features: 1,
        });
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        // MACs: (c_in=1 · c_out=2 · kernel=3 · t_out=8) for the conv + 16 for the linear.
        assert_eq!(d.total_macs(), 2 * 3 * 8 + 16);
        assert_eq!(d.total_weights(), (6 + 2) + (16 + 1));
        assert_eq!(d.peak_activation_elements(), 8 + 16);
    }

    #[test]
    fn empty_descriptor() {
        let d = NetworkDescriptor::new("empty");
        assert_eq!(d.total_macs(), 0);
        assert_eq!(d.peak_activation_elements(), 0);
        assert!(d.is_empty());
    }
}
