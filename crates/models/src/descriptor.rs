//! Static per-layer network descriptions consumed by the deployment model,
//! with a JSON round trip so a searched architecture can be saved and later
//! compiled by `pit-infer` without re-running the search.

use pit_tensor::json::Json;
use serde::{Deserialize, Serialize};

/// Schema tag written into exported descriptor documents.
pub const DESCRIPTOR_SCHEMA: &str = "pit-arch/1";

/// Schema tag of weight-bearing model artifacts (`pit-infer`'s
/// `to_artifact`/`from_artifact`). A `pit-arch/2` document is a superset of
/// `pit-arch/1`: it carries the same `name`/`layers` geometry plus the
/// compiled plan's weight payloads, so geometry-only consumers (this parser,
/// the `pit-hw` deployment model) read both versions interchangeably.
pub const DESCRIPTOR_SCHEMA_V2: &str = "pit-arch/2";

/// One layer of a deployable network, with the static information the GAP8
/// model needs: tensor sizes, kernel geometry and arithmetic cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerDesc {
    /// A (possibly dilated) 1-D convolution.
    Conv1d {
        /// Input channels.
        c_in: usize,
        /// Output channels.
        c_out: usize,
        /// Kernel taps actually stored/executed.
        kernel: usize,
        /// Dilation between taps.
        dilation: usize,
        /// Input sequence length.
        t_in: usize,
        /// Output sequence length.
        t_out: usize,
    },
    /// A fully connected layer.
    Linear {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
    /// Average pooling over time.
    AvgPool {
        /// Channels (unchanged).
        channels: usize,
        /// Pooling window.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Input sequence length.
        t_in: usize,
        /// Output sequence length.
        t_out: usize,
    },
    /// Batch normalisation (folded at inference time, but listed for
    /// completeness of the memory inventory).
    BatchNorm {
        /// Channels.
        channels: usize,
        /// Sequence length.
        t: usize,
    },
}

impl LayerDesc {
    /// Number of multiply-accumulate operations of the layer.
    pub fn macs(&self) -> u64 {
        match self {
            LayerDesc::Conv1d {
                c_in,
                c_out,
                kernel,
                t_out,
                ..
            } => (*c_in as u64) * (*c_out as u64) * (*kernel as u64) * (*t_out as u64),
            LayerDesc::Linear {
                in_features,
                out_features,
            } => (*in_features as u64) * (*out_features as u64),
            LayerDesc::AvgPool {
                channels,
                kernel,
                t_out,
                ..
            } => (*channels as u64) * (*kernel as u64) * (*t_out as u64),
            LayerDesc::BatchNorm { channels, t } => (*channels as u64) * (*t as u64),
        }
    }

    /// Number of weights stored for the layer (biases included).
    pub fn weights(&self) -> u64 {
        match self {
            LayerDesc::Conv1d {
                c_in,
                c_out,
                kernel,
                ..
            } => (*c_in as u64) * (*c_out as u64) * (*kernel as u64) + *c_out as u64,
            LayerDesc::Linear {
                in_features,
                out_features,
            } => (*in_features as u64) * (*out_features as u64) + *out_features as u64,
            LayerDesc::AvgPool { .. } => 0,
            LayerDesc::BatchNorm { channels, .. } => 2 * *channels as u64,
        }
    }

    /// Size in elements of the layer's output activation.
    pub fn output_elements(&self) -> u64 {
        match self {
            LayerDesc::Conv1d { c_out, t_out, .. } => (*c_out as u64) * (*t_out as u64),
            LayerDesc::Linear { out_features, .. } => *out_features as u64,
            LayerDesc::AvgPool {
                channels, t_out, ..
            } => (*channels as u64) * (*t_out as u64),
            LayerDesc::BatchNorm { channels, t } => (*channels as u64) * (*t as u64),
        }
    }

    /// Serialises the layer to a JSON object tagged with a `kind` field.
    pub fn to_json(&self) -> Json {
        let num = |v: usize| Json::Num(v as f64);
        match self {
            LayerDesc::Conv1d {
                c_in,
                c_out,
                kernel,
                dilation,
                t_in,
                t_out,
            } => Json::Obj(vec![
                ("kind".into(), Json::Str("conv1d".into())),
                ("c_in".into(), num(*c_in)),
                ("c_out".into(), num(*c_out)),
                ("kernel".into(), num(*kernel)),
                ("dilation".into(), num(*dilation)),
                ("t_in".into(), num(*t_in)),
                ("t_out".into(), num(*t_out)),
            ]),
            LayerDesc::Linear {
                in_features,
                out_features,
            } => Json::Obj(vec![
                ("kind".into(), Json::Str("linear".into())),
                ("in_features".into(), num(*in_features)),
                ("out_features".into(), num(*out_features)),
            ]),
            LayerDesc::AvgPool {
                channels,
                kernel,
                stride,
                t_in,
                t_out,
            } => Json::Obj(vec![
                ("kind".into(), Json::Str("avg_pool".into())),
                ("channels".into(), num(*channels)),
                ("kernel".into(), num(*kernel)),
                ("stride".into(), num(*stride)),
                ("t_in".into(), num(*t_in)),
                ("t_out".into(), num(*t_out)),
            ]),
            LayerDesc::BatchNorm { channels, t } => Json::Obj(vec![
                ("kind".into(), Json::Str("batch_norm".into())),
                ("channels".into(), num(*channels)),
                ("t".into(), num(*t)),
            ]),
        }
    }

    /// Parses a layer from the JSON object produced by [`LayerDesc::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing/ill-typed field or unknown
    /// `kind`.
    pub fn from_json(node: &Json) -> Result<Self, String> {
        let field = |name: &str| -> Result<usize, String> {
            let v = node
                .get(name)
                .and_then(Json::as_f64)
                .ok_or(format!("layer missing number field '{name}'"))?;
            // `as usize` would silently truncate fractions and saturate
            // negatives to 0; reject anything that is not a small whole
            // non-negative number instead.
            if !v.is_finite() || v < 0.0 || v.fract() != 0.0 || v > (1u64 << 52) as f64 {
                return Err(format!(
                    "layer field '{name}': {v} is not a non-negative integer"
                ));
            }
            Ok(v as usize)
        };
        let kind = node
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("layer missing string field 'kind'")?;
        match kind {
            "conv1d" => Ok(LayerDesc::Conv1d {
                c_in: field("c_in")?,
                c_out: field("c_out")?,
                kernel: field("kernel")?,
                dilation: field("dilation")?,
                t_in: field("t_in")?,
                t_out: field("t_out")?,
            }),
            "linear" => Ok(LayerDesc::Linear {
                in_features: field("in_features")?,
                out_features: field("out_features")?,
            }),
            "avg_pool" => Ok(LayerDesc::AvgPool {
                channels: field("channels")?,
                kernel: field("kernel")?,
                stride: field("stride")?,
                t_in: field("t_in")?,
                t_out: field("t_out")?,
            }),
            "batch_norm" => Ok(LayerDesc::BatchNorm {
                channels: field("channels")?,
                t: field("t")?,
            }),
            other => Err(format!("unknown layer kind '{other}'")),
        }
    }

    /// Size in elements of the layer's input activation.
    pub fn input_elements(&self) -> u64 {
        match self {
            LayerDesc::Conv1d { c_in, t_in, .. } => (*c_in as u64) * (*t_in as u64),
            LayerDesc::Linear { in_features, .. } => *in_features as u64,
            LayerDesc::AvgPool { channels, t_in, .. } => (*channels as u64) * (*t_in as u64),
            LayerDesc::BatchNorm { channels, t } => (*channels as u64) * (*t as u64),
        }
    }
}

/// A static description of a deployable network: an ordered list of layers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkDescriptor {
    /// Network name (for reports).
    pub name: String,
    /// Ordered layers.
    pub layers: Vec<LayerDesc>,
}

impl NetworkDescriptor {
    /// Creates an empty descriptor.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            layers: Vec::new(),
        }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: LayerDesc) {
        self.layers.push(layer);
    }

    /// Total multiply-accumulate count of one inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs()).sum()
    }

    /// Total number of stored weights.
    pub fn total_weights(&self) -> u64 {
        self.layers.iter().map(|l| l.weights()).sum()
    }

    /// Largest single-layer activation (input + output elements), a proxy for
    /// the working-set size the deployment model must fit into on-chip memory.
    pub fn peak_activation_elements(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.input_elements() + l.output_elements())
            .max()
            .unwrap_or(0)
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the descriptor holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Serialises the descriptor to a JSON document (schema `pit-arch/1`).
    ///
    /// This is the persistence format of a *searched architecture*: commit
    /// the rendered text next to a training run and the network geometry can
    /// be re-compiled by `pit-infer` without re-running the search.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(DESCRIPTOR_SCHEMA.into())),
            ("name".into(), Json::Str(self.name.clone())),
            (
                "layers".into(),
                Json::Arr(self.layers.iter().map(LayerDesc::to_json).collect()),
            ),
        ])
    }

    /// Renders the descriptor as committed-file-friendly JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// Parses a descriptor from the document shape written by
    /// [`NetworkDescriptor::to_json`]. Weight-bearing `pit-arch/2` artifacts
    /// are accepted too — the geometry fields are identical and the weight
    /// payloads are simply not read here.
    ///
    /// # Errors
    ///
    /// Returns a message on a schema mismatch or the first malformed layer.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        match doc.get("schema").and_then(Json::as_str) {
            Some(DESCRIPTOR_SCHEMA) | Some(DESCRIPTOR_SCHEMA_V2) => {}
            Some(other) => return Err(format!("unsupported descriptor schema '{other}'")),
            None => return Err("missing 'schema' field".into()),
        }
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or("missing string field 'name'")?
            .to_string();
        let layers = doc
            .get("layers")
            .and_then(Json::as_array)
            .ok_or("missing 'layers' array")?
            .iter()
            .enumerate()
            .map(|(i, node)| LayerDesc::from_json(node).map_err(|e| format!("layer {i}: {e}")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { name, layers })
    }

    /// Parses a descriptor from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a message on JSON syntax errors or schema mismatches.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_macs_and_weights() {
        let l = LayerDesc::Conv1d {
            c_in: 2,
            c_out: 4,
            kernel: 3,
            dilation: 2,
            t_in: 16,
            t_out: 16,
        };
        assert_eq!(l.macs(), 2 * 4 * 3 * 16);
        assert_eq!(l.weights(), 2 * 4 * 3 + 4);
        assert_eq!(l.output_elements(), 4 * 16);
        assert_eq!(l.input_elements(), 2 * 16);
    }

    #[test]
    fn linear_and_pool_costs() {
        let lin = LayerDesc::Linear {
            in_features: 128,
            out_features: 64,
        };
        assert_eq!(lin.macs(), 128 * 64);
        assert_eq!(lin.weights(), 128 * 64 + 64);
        let pool = LayerDesc::AvgPool {
            channels: 8,
            kernel: 2,
            stride: 2,
            t_in: 16,
            t_out: 8,
        };
        assert_eq!(pool.weights(), 0);
        assert_eq!(pool.macs(), 8 * 2 * 8);
        let bn = LayerDesc::BatchNorm { channels: 8, t: 16 };
        assert_eq!(bn.weights(), 16);
    }

    #[test]
    fn descriptor_totals() {
        let mut d = NetworkDescriptor::new("toy");
        d.push(LayerDesc::Conv1d {
            c_in: 1,
            c_out: 2,
            kernel: 3,
            dilation: 1,
            t_in: 8,
            t_out: 8,
        });
        d.push(LayerDesc::Linear {
            in_features: 16,
            out_features: 1,
        });
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        // MACs: (c_in=1 · c_out=2 · kernel=3 · t_out=8) for the conv + 16 for the linear.
        assert_eq!(d.total_macs(), 2 * 3 * 8 + 16);
        assert_eq!(d.total_weights(), (6 + 2) + (16 + 1));
        assert_eq!(d.peak_activation_elements(), 8 + 16);
    }

    #[test]
    fn json_roundtrip_preserves_every_layer_kind() {
        let mut d = NetworkDescriptor::new("roundtrip");
        d.push(LayerDesc::Conv1d {
            c_in: 3,
            c_out: 8,
            kernel: 5,
            dilation: 4,
            t_in: 64,
            t_out: 64,
        });
        d.push(LayerDesc::BatchNorm { channels: 8, t: 64 });
        d.push(LayerDesc::AvgPool {
            channels: 8,
            kernel: 2,
            stride: 2,
            t_in: 64,
            t_out: 32,
        });
        d.push(LayerDesc::Linear {
            in_features: 256,
            out_features: 1,
        });
        let text = d.to_json_string();
        let back = NetworkDescriptor::from_json_str(&text).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.total_macs(), d.total_macs());
    }

    #[test]
    fn json_import_rejects_bad_documents() {
        assert!(NetworkDescriptor::from_json_str("{").is_err());
        assert!(NetworkDescriptor::from_json_str("{\"schema\": \"other/9\"}").is_err());
        let missing_kind = r#"{"schema": "pit-arch/1", "name": "x",
            "layers": [{"c_in": 1}]}"#;
        let err = NetworkDescriptor::from_json_str(missing_kind).unwrap_err();
        assert!(err.contains("kind"), "{err}");
    }

    #[test]
    fn json_import_rejects_non_integer_numbers() {
        // `as usize` would truncate 2.7 and saturate -3 to 0; both must be
        // parse errors instead of silent geometry corruption.
        for bad in ["2.7", "-3", "1e300"] {
            let doc = format!(
                r#"{{"schema": "pit-arch/1", "name": "x", "layers": [
                    {{"kind": "linear", "in_features": {bad}, "out_features": 1}}]}}"#
            );
            let err = NetworkDescriptor::from_json_str(&doc).unwrap_err();
            assert!(err.contains("in_features"), "{bad}: {err}");
        }
    }

    #[test]
    fn empty_descriptor() {
        let d = NetworkDescriptor::new("empty");
        assert_eq!(d.total_macs(), 0);
        assert_eq!(d.peak_activation_elements(), 0);
        assert!(d.is_empty());
    }
}
