//! Experiment scaling presets.
//!
//! The paper's experiments train multi-hundred-thousand-parameter networks
//! for tens of epochs on a GPU. This reproduction runs the same experiments
//! through a pure-Rust engine, so every binary supports two scales:
//!
//! * **quick** (default) — scaled-down datasets and seed networks with the
//!   same topology, dilation search space and loss functions; finishes in
//!   minutes on a laptop and is what the CI-style runs in `EXPERIMENTS.md`
//!   report;
//! * **full** (`--full`) — paper-sized seeds (150-channel ResTCN,
//!   32/64/128-channel TEMPONet, 256-sample windows) and longer schedules;
//!   only the patient should run this through the interpreter-free but
//!   unvectorised engine.

use serde::{Deserialize, Serialize};

/// Which seed network / benchmark an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeedKind {
    /// ResTCN on the (synthetic) Nottingham polyphonic-music task.
    ResTcn,
    /// TEMPONet on the (synthetic) PPG-Dalia heart-rate task.
    TempoNet,
}

impl SeedKind {
    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            SeedKind::ResTcn => "ResTCN",
            SeedKind::TempoNet => "TEMPONet",
        }
    }

    /// The metric name the paper reports for this benchmark.
    pub fn metric(&self) -> &'static str {
        match self {
            SeedKind::ResTcn => "NLL",
            SeedKind::TempoNet => "MAE",
        }
    }
}

/// All knobs that differ between the quick and the full reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Whether this is the quick preset.
    pub quick: bool,

    /// Number of piano keys of the synthetic Nottingham data.
    pub restcn_keys: usize,
    /// Frames per Nottingham sequence.
    pub restcn_seq_len: usize,
    /// Number of Nottingham sequences.
    pub restcn_sequences: usize,
    /// Hidden channels of the ResTCN seed.
    pub restcn_hidden: usize,

    /// Channel divisor of the TEMPONet seed (1 = paper scale).
    pub temponet_divisor: usize,
    /// PPG window length in samples.
    pub temponet_window: usize,
    /// Number of PPG windows.
    pub temponet_windows: usize,

    /// Warmup epochs of the PIT schedule.
    pub warmup_epochs: usize,
    /// Pruning epochs of the PIT schedule.
    pub search_epochs: usize,
    /// Fine-tuning epochs of the PIT schedule.
    pub finetune_epochs: usize,
    /// Mini-batch size (the paper uses 128).
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Regularisation strengths swept for the Pareto exploration.
    pub lambdas: Vec<f32>,
    /// Warmup lengths swept for the Pareto exploration.
    pub warmups: Vec<usize>,
    /// Epochs of the ProxylessNAS baseline search.
    pub proxyless_epochs: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl ExperimentScale {
    /// The quick preset (default for every binary).
    pub fn quick() -> Self {
        Self {
            quick: true,
            restcn_keys: 16,
            restcn_seq_len: 32,
            restcn_sequences: 48,
            restcn_hidden: 12,
            temponet_divisor: 8,
            temponet_window: 64,
            temponet_windows: 96,
            warmup_epochs: 2,
            search_epochs: 6,
            finetune_epochs: 2,
            batch_size: 16,
            learning_rate: 5e-3,
            lambdas: vec![0.0, 1e-4, 3e-3, 3e-2],
            warmups: vec![0, 2],
            proxyless_epochs: 40,
            seed: 0,
        }
    }

    /// The paper-scale preset (`--full`).
    pub fn full() -> Self {
        Self {
            quick: false,
            restcn_keys: 88,
            restcn_seq_len: 128,
            restcn_sequences: 200,
            restcn_hidden: 150,
            temponet_divisor: 1,
            temponet_window: 256,
            temponet_windows: 512,
            warmup_epochs: 5,
            search_epochs: 30,
            finetune_epochs: 10,
            batch_size: 128,
            learning_rate: 1e-3,
            lambdas: vec![0.0, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3],
            warmups: vec![0, 5],
            proxyless_epochs: 150,
            seed: 0,
        }
    }

    /// Selects the preset from command-line arguments (`--full` switches to
    /// the paper-scale configuration).
    pub fn from_args(args: impl Iterator<Item = String>) -> Self {
        if args.into_iter().any(|a| a == "--full") {
            Self::full()
        } else {
            Self::quick()
        }
    }

    /// Total number of PIT runs of the Fig. 4 exploration.
    pub fn exploration_runs(&self) -> usize {
        self.lambdas.len() * self.warmups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_full() {
        let q = ExperimentScale::quick();
        let f = ExperimentScale::full();
        assert!(q.quick && !f.quick);
        assert!(q.restcn_hidden < f.restcn_hidden);
        assert!(q.temponet_window < f.temponet_window);
        assert!(q.search_epochs < f.search_epochs);
        assert!(q.exploration_runs() >= 4);
    }

    #[test]
    fn from_args_selects_preset() {
        let q = ExperimentScale::from_args(["prog".to_string()].into_iter());
        assert!(q.quick);
        let f = ExperimentScale::from_args(["prog".to_string(), "--full".to_string()].into_iter());
        assert!(!f.quick);
    }

    #[test]
    fn seed_kind_names() {
        assert_eq!(SeedKind::ResTcn.name(), "ResTCN");
        assert_eq!(SeedKind::TempoNet.metric(), "MAE");
        assert_eq!(SeedKind::ResTcn.metric(), "NLL");
    }
}
