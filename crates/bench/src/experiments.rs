//! Implementations of the paper's experiments (Fig. 4, Table I–III, Fig. 5).

use crate::report::{format_dilations, format_params, Table};
use crate::scale::{ExperimentScale, SeedKind};
use pit_baselines::{ProxylessConfig, ProxylessOutcome, ProxylessSearch, ProxylessSupernet};
use pit_datasets::{NottinghamConfig, NottinghamGenerator, PpgDaliaConfig, PpgDaliaGenerator};
use pit_hw::{Deployment, Gap8Config};
use pit_models::{NetworkDescriptor, ResTcn, ResTcnConfig, TempoNet, TempoNetConfig};
use pit_nas::pareto::{pareto_front, pick_small_medium_large, ParetoPoint};
use pit_nas::{PitConfig, PitConv1d, PitOutcome, PitSearch, SearchSpace, SearchableNetwork};
use pit_nn::{Adam, Dataset, Layer, LossKind, Mode, TrainConfig, Trainer};
use pit_tensor::{Param, Tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Benchmark construction
// ---------------------------------------------------------------------------

/// A benchmark = dataset splits + loss, for one of the two seeds.
pub struct Benchmark {
    /// Which seed/benchmark this is.
    pub kind: SeedKind,
    /// Training split.
    pub train: Dataset,
    /// Validation split (drives early stopping and architecture selection).
    pub val: Dataset,
    /// Held-out test split.
    pub test: Dataset,
    /// Task loss.
    pub loss: LossKind,
}

/// A seed network of either kind, usable uniformly by the experiments.
pub enum SeedNetwork {
    /// ResTCN for the polyphonic-music benchmark.
    ResTcn(ResTcn),
    /// TEMPONet for the heart-rate benchmark.
    TempoNet(TempoNet),
}

impl Layer for SeedNetwork {
    fn forward(&self, tape: &mut Tape, input: Var, mode: Mode) -> Var {
        match self {
            SeedNetwork::ResTcn(n) => n.forward(tape, input, mode),
            SeedNetwork::TempoNet(n) => n.forward(tape, input, mode),
        }
    }

    fn params(&self) -> Vec<Param> {
        match self {
            SeedNetwork::ResTcn(n) => n.params(),
            SeedNetwork::TempoNet(n) => n.params(),
        }
    }

    fn describe(&self) -> String {
        match self {
            SeedNetwork::ResTcn(n) => n.describe(),
            SeedNetwork::TempoNet(n) => n.describe(),
        }
    }
}

impl SearchableNetwork for SeedNetwork {
    fn pit_layers(&self) -> Vec<&PitConv1d> {
        match self {
            SeedNetwork::ResTcn(n) => n.pit_layers(),
            SeedNetwork::TempoNet(n) => n.pit_layers(),
        }
    }
}

/// The scaled ResTCN configuration for a given experiment scale.
pub fn restcn_config(scale: &ExperimentScale) -> ResTcnConfig {
    ResTcnConfig {
        input_channels: scale.restcn_keys,
        output_channels: scale.restcn_keys,
        hidden_channels: scale.restcn_hidden,
        ..ResTcnConfig::paper()
    }
}

/// The scaled TEMPONet configuration for a given experiment scale.
pub fn temponet_config(scale: &ExperimentScale) -> TempoNetConfig {
    TempoNetConfig::scaled(scale.temponet_divisor, scale.temponet_window)
}

/// Hand-tuned dilations of the original network of the given kind.
pub fn hand_tuned_dilations(kind: SeedKind, scale: &ExperimentScale) -> Vec<usize> {
    match kind {
        SeedKind::ResTcn => restcn_config(scale).hand_tuned_dilations(),
        SeedKind::TempoNet => temponet_config(scale).hand_tuned_dilations(),
    }
}

/// Builds the synthetic benchmark for one seed kind.
pub fn build_benchmark(kind: SeedKind, scale: &ExperimentScale) -> Benchmark {
    match kind {
        SeedKind::ResTcn => {
            let gen = NottinghamGenerator::new(NottinghamConfig {
                num_keys: scale.restcn_keys,
                seq_len: scale.restcn_seq_len,
                num_sequences: scale.restcn_sequences,
                seed: scale.seed,
                ..NottinghamConfig::paper()
            });
            let (train, val, test) = gen.generate_splits();
            Benchmark {
                kind,
                train,
                val,
                test,
                loss: LossKind::FrameNll,
            }
        }
        SeedKind::TempoNet => {
            let gen = PpgDaliaGenerator::new(PpgDaliaConfig {
                num_windows: scale.temponet_windows,
                window_len: scale.temponet_window,
                seed: scale.seed,
                ..PpgDaliaConfig::paper()
            });
            let (train, val, test) = gen.generate_splits();
            Benchmark {
                kind,
                train,
                val,
                test,
                loss: LossKind::Mae,
            }
        }
    }
}

/// Builds a freshly initialised seed network of the given kind.
pub fn build_network(kind: SeedKind, scale: &ExperimentScale, seed: u64) -> SeedNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    match kind {
        SeedKind::ResTcn => SeedNetwork::ResTcn(ResTcn::new(&mut rng, &restcn_config(scale))),
        SeedKind::TempoNet => {
            SeedNetwork::TempoNet(TempoNet::new(&mut rng, &temponet_config(scale)))
        }
    }
}

/// Builds a **paper-scale** descriptor of the given kind with explicit
/// dilations, used by the GAP8 deployment study (Table III) so that latency
/// and energy refer to the architecture the paper deploys even when the
/// training runs were scaled down.
pub fn paper_descriptor(kind: SeedKind, dilations: &[usize]) -> NetworkDescriptor {
    let mut rng = StdRng::seed_from_u64(0);
    match kind {
        SeedKind::ResTcn => {
            let net = ResTcn::new(&mut rng, &ResTcnConfig::paper());
            net.set_dilations(dilations);
            net.descriptor(128)
        }
        SeedKind::TempoNet => {
            let net = TempoNet::new(&mut rng, &TempoNetConfig::paper());
            net.set_dilations(dilations);
            net.descriptor()
        }
    }
}

/// Number of deployable weights of the **paper-scale** architecture with the
/// given dilations.
pub fn paper_scale_params(kind: SeedKind, dilations: &[usize]) -> usize {
    let mut rng = StdRng::seed_from_u64(0);
    match kind {
        SeedKind::ResTcn => {
            let net = ResTcn::new(&mut rng, &ResTcnConfig::paper());
            net.set_dilations(dilations);
            net.effective_weights()
        }
        SeedKind::TempoNet => {
            let net = TempoNet::new(&mut rng, &TempoNetConfig::paper());
            net.set_dilations(dilations);
            net.effective_weights()
        }
    }
}

/// The PIT search configuration derived from an experiment scale.
pub fn pit_config(scale: &ExperimentScale, lambda: f32, warmup: usize) -> PitConfig {
    PitConfig {
        lambda,
        warmup_epochs: warmup,
        search_epochs: scale.search_epochs,
        finetune_epochs: scale.finetune_epochs,
        patience: Some(50),
        batch_size: scale.batch_size,
        learning_rate: scale.learning_rate,
        gamma_learning_rate: if scale.quick { 0.1 } else { 0.01 },
        seed: scale.seed,
    }
}

/// Trains a fixed-dilation reference network (the seed or the hand-tuned
/// model) for the same total budget as one PIT run and returns its
/// accuracy-vs-size point together with the wall-clock training time.
pub fn train_reference(
    kind: SeedKind,
    scale: &ExperimentScale,
    bench: &Benchmark,
    dilations: &[usize],
    label: &str,
) -> (ParetoPoint, Duration) {
    let net = build_network(kind, scale, scale.seed.wrapping_add(777));
    net.set_dilations(dilations);
    net.freeze_all();
    let start = Instant::now();
    let trainer = Trainer::new(TrainConfig {
        epochs: scale.warmup_epochs + scale.search_epochs + scale.finetune_epochs,
        batch_size: scale.batch_size,
        shuffle: true,
        patience: Some(50),
        seed: scale.seed,
    });
    let mut opt = Adam::new(net.params(), scale.learning_rate);
    let _ = trainer.train(&net, &bench.train, Some(&bench.val), bench.loss, &mut opt);
    let elapsed = start.elapsed();
    let loss = Trainer::evaluate(&net, &bench.val, bench.loss, scale.batch_size);
    (
        ParetoPoint::new(net.effective_weights(), loss, dilations.to_vec(), label),
        elapsed,
    )
}

// ---------------------------------------------------------------------------
// Fig. 4 — Pareto frontiers
// ---------------------------------------------------------------------------

/// Result of one Fig. 4 exploration (one seed network).
pub struct Fig4Result {
    /// Which benchmark this is.
    pub kind: SeedKind,
    /// The un-dilated seed reference (black square in the figure).
    pub seed_point: ParetoPoint,
    /// The hand-tuned reference (triangle in the figure).
    pub hand_point: ParetoPoint,
    /// Every PIT outcome of the λ × warmup sweep.
    pub pit_points: Vec<ParetoPoint>,
    /// Non-dominated subset of the PIT points.
    pub front: Vec<ParetoPoint>,
    /// Raw PIT outcomes (with timings), aligned with `pit_points`.
    pub outcomes: Vec<PitOutcome>,
    /// Size of the dilation search space explored implicitly.
    pub search_space_size: u128,
}

impl Fig4Result {
    /// Selects the small / medium / large representatives used by
    /// Tables I–III (medium = closest in size to the hand-tuned network).
    pub fn small_medium_large(&self) -> Option<(ParetoPoint, ParetoPoint, ParetoPoint)> {
        let candidates = if self.front.is_empty() {
            &self.pit_points
        } else {
            &self.front
        };
        pick_small_medium_large(candidates, self.hand_point.params)
    }
}

/// Runs the full design-space exploration of Fig. 4 for one seed network:
/// trains the seed and hand-tuned references, then one PIT search per
/// (λ, warmup) combination.
pub fn fig4(kind: SeedKind, scale: &ExperimentScale) -> Fig4Result {
    let bench = build_benchmark(kind, scale);
    let space = match kind {
        SeedKind::ResTcn => SearchSpace::new(restcn_config(scale).rf_max_per_layer()),
        SeedKind::TempoNet => SearchSpace::new(temponet_config(scale).rf_max_per_layer()),
    };

    let seed_dilations = vec![1usize; space.num_layers()];
    let (seed_point, _) = train_reference(kind, scale, &bench, &seed_dilations, "seed d=1");
    let hand = hand_tuned_dilations(kind, scale);
    let (hand_point, _) = train_reference(kind, scale, &bench, &hand, "hand-tuned");

    let mut outcomes = Vec::with_capacity(scale.exploration_runs());
    let mut pit_points = Vec::with_capacity(scale.exploration_runs());
    for (i, &lambda) in scale.lambdas.iter().enumerate() {
        for (j, &warmup) in scale.warmups.iter().enumerate() {
            let run_seed = scale
                .seed
                .wrapping_add((i * scale.warmups.len() + j) as u64 + 1);
            let net = build_network(kind, scale, run_seed);
            let cfg = PitConfig {
                seed: run_seed,
                ..pit_config(scale, lambda, warmup)
            };
            let outcome = PitSearch::new(cfg).run(&net, &bench.train, &bench.val, bench.loss);
            pit_points.push(outcome.to_pareto_point(format!("λ={lambda:.0e}, wu={warmup}")));
            outcomes.push(outcome);
        }
    }
    let front = pareto_front(&pit_points);
    Fig4Result {
        kind,
        seed_point,
        hand_point,
        pit_points,
        front,
        outcomes,
        search_space_size: space.size(),
    }
}

/// Renders a Fig. 4 result as a printable table (one row per evaluated
/// architecture, the textual equivalent of the scatter plot).
pub fn fig4_table(result: &Fig4Result) -> Table {
    let metric = result.kind.metric();
    let mut table = Table::new(
        format!(
            "Fig. 4 — {} Pareto exploration (search space: {} dilation combinations)",
            result.kind.name(),
            result.search_space_size
        ),
        &["architecture", "# params", metric, "dilations", "on front"],
    );
    let mut push = |p: &ParetoPoint, on_front: bool| {
        table.row(&[
            p.label.clone(),
            format_params(p.params),
            format!("{:.4}", p.loss),
            format_dilations(&p.dilations),
            if on_front { "yes".into() } else { "".into() },
        ]);
    };
    push(&result.seed_point, false);
    push(&result.hand_point, false);
    for p in &result.pit_points {
        let on_front = result
            .front
            .iter()
            .any(|f| f.params == p.params && f.loss == p.loss);
        push(p, on_front);
    }
    table
}

// ---------------------------------------------------------------------------
// Table I — learned dilations
// ---------------------------------------------------------------------------

/// Builds Table I: the per-layer dilations of the hand-tuned network and of
/// the small / medium / large PIT outputs, for one seed.
pub fn table1(result: &Fig4Result, scale: &ExperimentScale) -> Table {
    let mut table = Table::new(
        format!("Table I — dilations found for {}", result.kind.name()),
        &["network", "PIT dilations"],
    );
    table.row(&[
        format!("{} dil=hand-tuned", result.kind.name()),
        format_dilations(&hand_tuned_dilations(result.kind, scale)),
    ]);
    if let Some((small, medium, large)) = result.small_medium_large() {
        for (name, p) in [("small", small), ("medium", medium), ("large", large)] {
            table.row(&[
                format!("PIT {} {}", result.kind.name(), name),
                format_dilations(&p.dilations),
            ]);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Table II — PIT vs ProxylessNAS
// ---------------------------------------------------------------------------

/// Runs the ProxylessNAS baseline on the TEMPONet benchmark at one
/// size-penalty setting and returns the outcome.
pub fn run_proxyless(scale: &ExperimentScale, size_weight: f32, seed: u64) -> ProxylessOutcome {
    let bench = build_benchmark(SeedKind::TempoNet, scale);
    let cfg = ProxylessConfig {
        size_weight,
        epochs: scale.proxyless_epochs,
        batch_size: scale.batch_size,
        learning_rate: scale.learning_rate,
        arch_learning_rate: 0.1,
        finetune_epochs: scale.finetune_epochs,
        seed,
        ..ProxylessConfig::temponet_like(&temponet_config(scale))
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut supernet = ProxylessSupernet::new(&mut rng, &cfg);
    ProxylessSearch::new(cfg).run(&mut supernet, &bench.train, &bench.val, LossKind::Mae)
}

/// Builds Table II: small / medium / large architectures found by PIT and by
/// the ProxylessNAS baseline on TEMPONet / PPG-Dalia.
///
/// Both tools receive the same total epoch budget per target size
/// (the ProxylessNAS budget of the experiment scale), so the comparison
/// matches the paper's "same training algorithm parameters" setup.
pub fn table2(scale: &ExperimentScale) -> Table {
    let bench = build_benchmark(SeedKind::TempoNet, scale);
    let mut table = Table::new(
        "Table II — PIT vs ProxylessNAS (TEMPONet seed, PPG-Dalia)",
        &[
            "size",
            "ProxylessNAS # weights",
            "ProxylessNAS MAE",
            "PIT # weights",
            "PIT MAE",
        ],
    );
    // Three target sizes: aggressive, moderate and no size pressure.
    let targets: [(&str, f32, f32); 3] = [
        ("small", 3e-2, 1.0),
        ("medium", 1e-3, 0.05),
        ("large", 0.0, 0.0),
    ];
    for (i, (name, lambda, size_weight)) in targets.into_iter().enumerate() {
        let run_seed = scale.seed.wrapping_add(90 + i as u64);
        let proxy = run_proxyless(scale, size_weight, run_seed);

        // PIT with a matched epoch budget.
        let pit_epochs = scale.proxyless_epochs;
        let net = build_network(SeedKind::TempoNet, scale, run_seed.wrapping_add(1));
        let cfg = PitConfig {
            seed: run_seed.wrapping_add(1),
            warmup_epochs: scale.warmup_epochs,
            search_epochs: pit_epochs.saturating_sub(scale.warmup_epochs + scale.finetune_epochs),
            finetune_epochs: scale.finetune_epochs,
            ..pit_config(scale, lambda, scale.warmup_epochs)
        };
        let pit = PitSearch::new(cfg).run(&net, &bench.train, &bench.val, bench.loss);

        table.row(&[
            name.to_string(),
            format_params(proxy.params),
            format!("{:.4}", proxy.val_loss),
            format_params(pit.effective_params),
            format!("{:.4}", pit.val_loss),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Fig. 5 — search-time comparison
// ---------------------------------------------------------------------------

/// One row of the Fig. 5 comparison.
pub struct SearchCostRow {
    /// Target size label (small / medium / large).
    pub target: &'static str,
    /// Wall-clock time of the PIT search.
    pub pit: Duration,
    /// Wall-clock time of the ProxylessNAS search.
    pub proxyless: Duration,
    /// Wall-clock time of training the chosen architecture alone.
    pub plain_training: Duration,
}

/// Runs the Fig. 5 experiment: for three size targets, measures the
/// wall-clock time of a PIT search, of a ProxylessNAS search over the same
/// space, and of a single plain training of the selected architecture
/// (true dilated convolutions, no search).
pub fn fig5(scale: &ExperimentScale) -> (Vec<SearchCostRow>, Table) {
    let bench = build_benchmark(SeedKind::TempoNet, scale);
    let cfg = temponet_config(scale);
    let targets: [(&'static str, f32, f32); 3] = [
        ("small", 3e-2, 1.0),
        ("medium", 1e-3, 0.05),
        ("large", 0.0, 0.0),
    ];
    let mut rows = Vec::with_capacity(3);
    for (i, (name, lambda, size_weight)) in targets.into_iter().enumerate() {
        // PIT search.
        let run_seed = scale.seed.wrapping_add(200 + i as u64);
        let net = build_network(SeedKind::TempoNet, scale, run_seed);
        let pit_cfg = PitConfig {
            seed: run_seed,
            ..pit_config(scale, lambda, scale.warmup_epochs)
        };
        let pit_start = Instant::now();
        let outcome = PitSearch::new(pit_cfg).run(&net, &bench.train, &bench.val, bench.loss);
        let pit_time = pit_start.elapsed();

        // ProxylessNAS search over the same space.
        let proxy_start = Instant::now();
        let _ = run_proxyless(scale, size_weight, run_seed.wrapping_add(1));
        let proxy_time = proxy_start.elapsed();

        // Plain training of the architecture PIT found (deployable network,
        // true dilated convolutions), for the same schedule length.
        let mut rng = StdRng::seed_from_u64(run_seed.wrapping_add(2));
        let concrete = TempoNet::concrete(&mut rng, &cfg, &outcome.dilations);
        let plain_start = Instant::now();
        let trainer = Trainer::new(TrainConfig {
            epochs: scale.warmup_epochs + scale.search_epochs + scale.finetune_epochs,
            batch_size: scale.batch_size,
            shuffle: true,
            patience: Some(50),
            seed: run_seed,
        });
        let mut opt = Adam::new(concrete.params(), scale.learning_rate);
        let _ = trainer.train(
            &concrete,
            &bench.train,
            Some(&bench.val),
            bench.loss,
            &mut opt,
        );
        let plain_time = plain_start.elapsed();

        rows.push(SearchCostRow {
            target: name,
            pit: pit_time,
            proxyless: proxy_time,
            plain_training: plain_time,
        });
    }

    let mut table = Table::new(
        "Fig. 5 — search time (TEMPONet seed, PPG-Dalia)",
        &[
            "target",
            "PIT [s]",
            "ProxylessNAS [s]",
            "plain training [s]",
            "Proxyless / PIT",
            "PIT / plain",
        ],
    );
    for row in &rows {
        table.row(&[
            row.target.to_string(),
            format!("{:.1}", row.pit.as_secs_f64()),
            format!("{:.1}", row.proxyless.as_secs_f64()),
            format!("{:.1}", row.plain_training.as_secs_f64()),
            format!(
                "{:.1}x",
                row.proxyless.as_secs_f64() / row.pit.as_secs_f64().max(1e-9)
            ),
            format!(
                "{:.1}x",
                row.pit.as_secs_f64() / row.plain_training.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    (rows, table)
}

// ---------------------------------------------------------------------------
// Table III — deployment on GAP8
// ---------------------------------------------------------------------------

/// Builds Table III for one seed: weights, task loss, latency and energy on
/// the GAP8 model for the seed, the hand-tuned network and the PIT
/// small / medium / large outputs.
///
/// Latency and energy always refer to the **paper-scale** architecture with
/// the given dilations (the network the paper actually deploys); the loss
/// column is the one measured on the (possibly scaled-down) training runs.
pub fn table3(result: &Fig4Result, scale: &ExperimentScale) -> Table {
    let deployment = Deployment::new(Gap8Config::paper());
    let metric = result.kind.metric();
    let mut table = Table::new(
        format!("Table III — GAP8 deployment ({})", result.kind.name()),
        &[
            "network",
            "# weights",
            metric,
            "latency [ms]",
            "energy [mJ]",
            "fits L2",
        ],
    );
    let mut push = |name: String, dilations: &[usize], loss: f32| {
        let desc = paper_descriptor(result.kind, dilations);
        let report = deployment.analyze(&desc);
        table.row(&[
            name,
            format_params(paper_scale_params(result.kind, dilations)),
            format!("{loss:.4}"),
            format!("{:.1}", report.latency_ms),
            format!("{:.1}", report.energy_mj),
            if report.fits_in_l2 {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    };
    let seed_dils = vec![1usize; result.seed_point.dilations.len()];
    push(
        format!("{} dil=1", result.kind.name()),
        &seed_dils,
        result.seed_point.loss,
    );
    push(
        format!("{} dil=hand-tuned", result.kind.name()),
        &hand_tuned_dilations(result.kind, scale),
        result.hand_point.loss,
    );
    if let Some((small, medium, large)) = result.small_medium_large() {
        for (name, p) in [("s.", small), ("m.", medium), ("l.", large)] {
            push(
                format!("PIT {} {}", result.kind.name(), name),
                &p.dilations,
                p.loss,
            );
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal scale so the end-to-end experiment code can run in unit tests.
    fn tiny_scale() -> ExperimentScale {
        ExperimentScale {
            restcn_keys: 13,
            restcn_seq_len: 16,
            restcn_sequences: 12,
            restcn_hidden: 4,
            temponet_divisor: 16,
            temponet_window: 32,
            temponet_windows: 24,
            warmup_epochs: 1,
            search_epochs: 1,
            finetune_epochs: 0,
            batch_size: 8,
            learning_rate: 5e-3,
            lambdas: vec![0.0, 1.0],
            warmups: vec![0],
            proxyless_epochs: 1,
            seed: 0,
            quick: true,
        }
    }

    #[test]
    fn benchmark_construction_shapes() {
        let scale = tiny_scale();
        let music = build_benchmark(SeedKind::ResTcn, &scale);
        assert_eq!(music.train.input_dims().unwrap(), vec![13, 16]);
        assert_eq!(music.loss, LossKind::FrameNll);
        let ppg = build_benchmark(SeedKind::TempoNet, &scale);
        assert_eq!(ppg.train.input_dims().unwrap(), vec![4, 32]);
        assert_eq!(ppg.loss, LossKind::Mae);
        assert!(!ppg.test.is_empty());
    }

    #[test]
    fn paper_descriptor_and_params_track_dilations() {
        let hand = TempoNetConfig::paper().hand_tuned_dilations();
        let seed = vec![1usize; 7];
        assert!(
            paper_scale_params(SeedKind::TempoNet, &hand)
                < paper_scale_params(SeedKind::TempoNet, &seed)
        );
        let d_hand = paper_descriptor(SeedKind::TempoNet, &hand);
        let d_seed = paper_descriptor(SeedKind::TempoNet, &seed);
        assert!(d_hand.total_macs() < d_seed.total_macs());
    }

    #[test]
    fn fig4_tiny_end_to_end_on_temponet() {
        let scale = tiny_scale();
        let result = fig4(SeedKind::TempoNet, &scale);
        assert_eq!(result.pit_points.len(), 2);
        assert!(!result.front.is_empty());
        assert!(result.search_space_size > 1);
        assert!(result.seed_point.loss.is_finite());
        assert!(result.hand_point.params < result.seed_point.params);
        let rendered = fig4_table(&result).render();
        assert!(rendered.contains("Pareto exploration"));
        let t1 = table1(&result, &scale);
        assert!(t1.render().contains("hand-tuned"));
        let t3 = table3(&result, &scale);
        assert!(t3.render().contains("GAP8"));
        assert!(t3.len() >= 2);
    }
}
