//! The machine-readable performance harness behind the `bench_json` binary.
//!
//! [`run_suites`] times the convolution kernels (im2col/GEMM vs the naive
//! seed oracle), the PIT masked-training path (fused vs unfused vs the true
//! dilated deployment network) and one full PIT search step;
//! [`infer_suite`] times the serving side (offline tape replay vs the
//! compiled streaming engine of `pit-infer`), [`quant_suite`] the int8
//! serving path against its f32 twin, [`serve_suite`] the `pit-serve`
//! TCP daemon end to end over loopback, and [`scale_suite`] the daemon's
//! throughput as the stream fleet grows 16 → 4096 across batcher shards.
//! [`run_named_suites`] selects suites by name. [`records_to_json`]/[`records_from_json`] move the
//! records through the hand-rolled [`crate::json`] writer (the serde stub
//! cannot serialise), and [`compare`] diffs a fresh run against a
//! committed baseline (`BENCH_conv.json`, `BENCH_infer.json`,
//! `BENCH_int8.json`, `BENCH_serve.json`, `BENCH_scale.json`) — the
//! regression gate CI runs on every push.

use crate::json::Json;
use crate::report::Table;
use pit_nas::PitConv1d;
use pit_nn::layers::CausalConv1d;
use pit_nn::{Layer, Mode};
use pit_tensor::{init, Tape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// One timed operation.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Which suite produced the record (`conv`, `masking`, `search`).
    pub suite: String,
    /// Operation name, including the implementation variant
    /// (e.g. `conv1d_forward/fast`).
    pub op: String,
    /// Human-readable geometry (e.g. `N8 C32->32 T256 K9 d4`).
    pub shape: String,
    /// Median wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Work rate; unit given by `throughput_unit`.
    pub throughput: f64,
    /// `gflop/s` for kernels with a known flop count, `iter/s` otherwise.
    pub throughput_unit: String,
}

impl BenchRecord {
    /// The identity used to match records between baseline and current runs.
    pub fn key(&self) -> String {
        format!("{}::{}::{}", self.suite, self.op, self.shape)
    }
}

/// Timing-loop configuration.
#[derive(Debug, Clone, Copy)]
pub struct MeasureOpts {
    /// Samples taken; the median is reported.
    pub samples: usize,
    /// Target wall-clock per sample, used to pick the iteration count.
    pub target_sample_ns: u64,
}

impl MeasureOpts {
    /// Fast preset used by `--quick` and CI.
    pub fn quick() -> Self {
        Self {
            samples: 5,
            target_sample_ns: 20_000_000,
        }
    }

    /// Slower, lower-variance preset for `--full`.
    pub fn full() -> Self {
        Self {
            samples: 11,
            target_sample_ns: 100_000_000,
        }
    }
}

/// Times `f`: one warmup call, an iteration count chosen to fill
/// `target_sample_ns`, then the median over `samples` samples of the mean
/// nanoseconds per iteration.
pub fn measure(opts: &MeasureOpts, mut f: impl FnMut()) -> f64 {
    // Warmup + single-shot estimate.
    let start = Instant::now();
    f();
    let est = start.elapsed().as_nanos().max(1) as u64;
    let iters = (opts.target_sample_ns / est).clamp(1, 1_000_000);
    let mut samples = Vec::with_capacity(opts.samples);
    for _ in 0..opts.samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn record(suite: &str, op: &str, shape: String, ns: f64, flops: Option<f64>) -> BenchRecord {
    let (throughput, unit) = match flops {
        Some(fl) => (fl / ns, "gflop/s"),
        None => (1e9 / ns, "iter/s"),
    };
    BenchRecord {
        suite: suite.to_string(),
        op: op.to_string(),
        shape,
        ns_per_iter: ns,
        throughput,
        throughput_unit: unit.to_string(),
    }
}

// ---------------------------------------------------------------------------
// Suites
// ---------------------------------------------------------------------------

struct ConvCase {
    n: usize,
    c_in: usize,
    c_out: usize,
    t: usize,
    k: usize,
    dilation: usize,
}

impl ConvCase {
    fn shape(&self) -> String {
        format!(
            "N{} C{}->{} T{} K{} d{}",
            self.n, self.c_in, self.c_out, self.t, self.k, self.dilation
        )
    }

    /// Flops of the dense forward pass (one multiply + one add per tap).
    fn flops(&self) -> f64 {
        2.0 * (self.n * self.c_out * self.c_in * self.k * self.t) as f64
    }
}

/// Raw-kernel suite: the im2col/GEMM convolution against the seed's naive
/// nested loops, for forward, input gradient and weight gradient.
pub fn conv_suite(opts: &MeasureOpts, quick: bool) -> Vec<BenchRecord> {
    // First case is the acceptance geometry of the PR that introduced this
    // harness; keep it stable so the trajectory stays comparable.
    let mut cases = vec![ConvCase {
        n: 8,
        c_in: 32,
        c_out: 32,
        t: 256,
        k: 9,
        dilation: 4,
    }];
    if !quick {
        cases.push(ConvCase {
            n: 16,
            c_in: 64,
            c_out: 64,
            t: 512,
            k: 17,
            dilation: 8,
        });
    }
    let mut rng = StdRng::seed_from_u64(42);
    let mut out = Vec::new();
    for case in &cases {
        let x = init::uniform(&mut rng, &[case.n, case.c_in, case.t], 1.0);
        let w = init::uniform(&mut rng, &[case.c_out, case.c_in, case.k], 1.0);
        let b = init::uniform(&mut rng, &[case.c_out], 1.0);
        let g = init::uniform(&mut rng, &[case.n, case.c_out, case.t], 1.0);
        let x_dims = x.dims().to_vec();
        let flops = Some(case.flops());
        let d = case.dilation;

        let ns = measure(opts, || {
            std::hint::black_box(x.conv1d_causal(&w, Some(&b), d).unwrap());
        });
        out.push(record(
            "conv",
            "conv1d_forward/fast",
            case.shape(),
            ns,
            flops,
        ));
        let ns = measure(opts, || {
            std::hint::black_box(x.conv1d_causal_naive(&w, Some(&b), d).unwrap());
        });
        out.push(record(
            "conv",
            "conv1d_forward/naive",
            case.shape(),
            ns,
            flops,
        ));

        let ns = measure(opts, || {
            std::hint::black_box(Tensor::conv1d_causal_grad_input(&g, &w, &x_dims, d).unwrap());
        });
        out.push(record(
            "conv",
            "conv1d_grad_input/fast",
            case.shape(),
            ns,
            flops,
        ));
        let ns = measure(opts, || {
            std::hint::black_box(
                Tensor::conv1d_causal_grad_input_naive(&g, &w, &x_dims, d).unwrap(),
            );
        });
        out.push(record(
            "conv",
            "conv1d_grad_input/naive",
            case.shape(),
            ns,
            flops,
        ));

        let ns = measure(opts, || {
            std::hint::black_box(Tensor::conv1d_causal_grad_weight(&x, &g, case.k, d).unwrap());
        });
        out.push(record(
            "conv",
            "conv1d_grad_weight/fast",
            case.shape(),
            ns,
            flops,
        ));
        let ns = measure(opts, || {
            std::hint::black_box(
                Tensor::conv1d_causal_grad_weight_naive(&x, &g, case.k, d).unwrap(),
            );
        });
        out.push(record(
            "conv",
            "conv1d_grad_weight/naive",
            case.shape(),
            ns,
            flops,
        ));
    }
    out
}

/// Masked-training suite: one forward+backward step of a `PitConv1d` layer
/// through the fused mask kernel versus the unfused `W ⊙ M` composition,
/// versus the true dilated convolution the search would deploy.
pub fn masking_suite(opts: &MeasureOpts, quick: bool) -> Vec<BenchRecord> {
    let rf_max = 33usize;
    let (n, c, t) = if quick { (4, 16, 64) } else { (8, 32, 256) };
    let mut rng = StdRng::seed_from_u64(7);
    let x = init::uniform(&mut rng, &[n, c, t], 1.0);
    let mut out = Vec::new();
    for dilation in [1usize, 16] {
        let masked = PitConv1d::new(&mut rng, c, c, rf_max, "bench");
        masked.set_dilation(dilation);
        let alive = (rf_max - 1) / dilation + 1;
        let dilated = CausalConv1d::new(&mut rng, c, c, alive, dilation);
        let shape = format!("N{n} C{c}->{c} T{t} rf{rf_max} d{dilation}");
        let flops = Some(2.0 * (n * c * c * rf_max * t) as f64);

        let ns = measure(opts, || {
            let mut tape = Tape::new();
            let vx = tape.constant(x.clone());
            let y = masked.forward(&mut tape, vx, Mode::Train);
            let loss = tape.sum(y);
            tape.backward(loss);
        });
        out.push(record(
            "masking",
            "masked_step/fused",
            shape.clone(),
            ns,
            flops,
        ));

        let ns = measure(opts, || {
            let mut tape = Tape::new();
            let vx = tape.constant(x.clone());
            let w = tape.param(masked.weight_param());
            let b = tape.param(masked.bias_param());
            let m = masked.mask(&mut tape);
            let wm = tape.mul_time_mask(w, m);
            let y = tape.conv1d_causal(vx, wm, Some(b), 1);
            let loss = tape.sum(y);
            tape.backward(loss);
        });
        out.push(record(
            "masking",
            "masked_step/unfused",
            shape.clone(),
            ns,
            flops,
        ));

        let ns = measure(opts, || {
            let mut tape = Tape::new();
            let vx = tape.constant(x.clone());
            let y = dilated.forward(&mut tape, vx, Mode::Train);
            let loss = tape.sum(y);
            tape.backward(loss);
        });
        out.push(record("masking", "true_dilated_step", shape, ns, flops));
    }
    out
}

/// Search-cost suite: one full PIT search step (masked forward, task loss,
/// size regulariser, backward, Adam update) at the quick experiment scale.
pub fn search_suite(opts: &MeasureOpts) -> Vec<BenchRecord> {
    use crate::experiments::{build_benchmark, build_network, pit_config};
    use crate::{ExperimentScale, SeedKind};
    use pit_nas::{SearchableNetwork, SizeRegularizer};
    use pit_nn::{Adam, LossKind, Optimizer};

    let scale = ExperimentScale::quick();
    let bench = build_benchmark(SeedKind::TempoNet, &scale);
    let batch = bench
        .train
        .gather(&(0..scale.batch_size.min(bench.train.len())).collect::<Vec<_>>());
    let net = build_network(SeedKind::TempoNet, &scale, 0);
    let cfg = pit_config(&scale, 1e-4, 0);
    let regularizer = SizeRegularizer::new(cfg.lambda);
    let mut opt = Adam::new(net.params(), cfg.learning_rate);
    let shape = format!(
        "TempoNet/quick B{} T{}",
        batch.inputs.dims()[0],
        scale.temponet_window
    );
    let ns = measure(opts, || {
        opt.zero_grad();
        let mut tape = Tape::new();
        let x = tape.constant(batch.inputs.clone());
        let pred = net.forward(&mut tape, x, Mode::Train);
        let task = LossKind::Mae.apply(&mut tape, pred, &batch.targets);
        let reg = regularizer.term(&mut tape, &net.pit_layers());
        let total = tape.add(task, reg);
        tape.backward(total);
        opt.step();
    });
    vec![record("search", "pit_search_step", shape, ns, None)]
}

/// Streaming-inference suite: what one new timestep of a searched PPG model
/// costs under four serving strategies.
///
/// * `offline_replay/step` — re-run the offline masked forward (tape) over
///   the full window to produce one new prediction: the only serving path
///   that existed before `pit-infer`;
/// * `plan_offline/window` — the compiled plan's tape-free forward over a
///   whole window (throughput amortised over its timesteps);
/// * `stream/step` — one stateful [`pit_infer::Session`] ring-buffer step;
/// * `sessions32/step` — a 32-stream [`pit_infer::SessionPool`] fed one
///   sample per stream and flushed as one batched wave (cost per timestep).
///
/// The committed `BENCH_infer.json` baseline is the acceptance evidence that
/// `stream/step` beats `offline_replay/step` by well over an order of
/// magnitude.
pub fn infer_suite(opts: &MeasureOpts) -> Vec<BenchRecord> {
    use pit_infer::{compile_temponet, Session, SessionPool};
    use pit_models::{TempoNet, TempoNetConfig};
    use pit_nas::SearchableNetwork;
    use std::sync::Arc;

    let cfg = TempoNetConfig::scaled(8, 64);
    let t = cfg.input_length;
    let mut rng = StdRng::seed_from_u64(9);
    let net = TempoNet::new(&mut rng, &cfg);
    // Stand-in for a search result: the paper's hand-tuned dilations.
    net.set_dilations(&cfg.hand_tuned_dilations());
    let plan = Arc::new(compile_temponet(&net));
    let x = init::uniform(&mut rng, &[1, cfg.input_channels, t], 1.0);
    // Column-major sample stream for the stateful paths.
    let columns: Vec<Vec<f32>> = (0..t)
        .map(|tt| {
            (0..cfg.input_channels)
                .map(|ci| x.data()[ci * t + tt])
                .collect()
        })
        .collect();
    let shape = format!("TEMPONet/8 C{} T{t}", cfg.input_channels);
    let step_record = |op: &str, ns: f64, steps_per_iter: f64| BenchRecord {
        suite: "infer".into(),
        op: op.into(),
        shape: shape.clone(),
        ns_per_iter: ns,
        throughput: steps_per_iter * 1e9 / ns,
        throughput_unit: "steps/s".into(),
    };
    let mut out = Vec::new();

    // 1. Tape replay of the full window per new sample.
    let ns = measure(opts, || {
        let mut tape = Tape::new();
        let vx = tape.constant(x.clone());
        std::hint::black_box(net.forward(&mut tape, vx, Mode::Eval));
    });
    out.push(step_record("offline_replay/step", ns, 1.0));

    // 2. Compiled plan, offline over the whole window.
    let ns = measure(opts, || {
        std::hint::black_box(plan.forward(&x).unwrap());
    });
    out.push(step_record("plan_offline/window", ns, t as f64));

    // 3. Stateful streaming, one ring-buffer step per sample.
    let mut session = Session::new(Arc::clone(&plan));
    let mut step_out = vec![0.0f32; plan.output_dim()];
    let mut cursor = 0usize;
    let ns = measure(opts, || {
        session.push_into(&columns[cursor], &mut step_out);
        std::hint::black_box(step_out[0]);
        cursor = (cursor + 1) % t;
    });
    out.push(step_record("stream/step", ns, 1.0));

    // 4. Batched sessions: 32 streams, one sample each, one flushed wave.
    const STREAMS: usize = 32;
    let mut pool = SessionPool::new(Arc::clone(&plan), STREAMS);
    let mut cursor = 0usize;
    let ns = measure(opts, || {
        for sid in 0..STREAMS {
            pool.push(sid, &columns[(cursor + sid) % t]);
        }
        std::hint::black_box(pool.flush());
        cursor = (cursor + 1) % t;
    });
    out.push(step_record("sessions32/step", ns / STREAMS as f64, 1.0));
    out
}

/// Quantized-serving suite: the f32 streaming step against its int8
/// counterpart on the same searched PPG model — the acceptance evidence for
/// the int8 serving path.
///
/// * `stream_f32/step` — one stateful f32 [`pit_infer::Session`] step (the
///   serial f32 dot product cannot be reordered, so it stays scalar);
/// * `stream_i8/step` — one [`pit_infer::QuantizedSession`] step: `i8` ring
///   buffers, exact `i8·i8→i32` dots that the compiler vectorizes freely;
/// * `sessions32_i8/step` — a 32-stream [`pit_infer::QuantizedSessionPool`]
///   flushed as one `i8` GEMM wave per layer (cost per timestep).
///
/// The committed `BENCH_int8.json` baseline pins `stream_i8/step` at ≥ 2x
/// faster than `stream_f32/step`, and CI gates both against drift.
pub fn quant_suite(opts: &MeasureOpts) -> Vec<BenchRecord> {
    use pit_infer::{
        compile_temponet, QuantizedPlan, QuantizedSession, QuantizedSessionPool, Session,
    };
    use pit_models::{TempoNet, TempoNetConfig};
    use pit_nas::SearchableNetwork;
    use std::sync::Arc;

    let cfg = TempoNetConfig::scaled(8, 64);
    let t = cfg.input_length;
    let mut rng = StdRng::seed_from_u64(9);
    let net = TempoNet::new(&mut rng, &cfg);
    net.set_dilations(&cfg.hand_tuned_dilations());
    let plan = Arc::new(compile_temponet(&net));
    let x = init::uniform(&mut rng, &[1, cfg.input_channels, t], 1.0);
    let qplan = Arc::new(
        QuantizedPlan::quantize(&plan, std::slice::from_ref(&x)).expect("benchmark plan quantizes"),
    );
    let columns: Vec<Vec<f32>> = (0..t)
        .map(|tt| {
            (0..cfg.input_channels)
                .map(|ci| x.data()[ci * t + tt])
                .collect()
        })
        .collect();
    let shape = format!("TEMPONet/8 C{} T{t}", cfg.input_channels);
    let step_record = |op: &str, ns: f64| BenchRecord {
        suite: "quant".into(),
        op: op.into(),
        shape: shape.clone(),
        ns_per_iter: ns,
        throughput: 1e9 / ns,
        throughput_unit: "steps/s".into(),
    };
    let mut out = Vec::new();

    // 1. The f32 streaming step (the quantized path's comparison anchor).
    let mut session = Session::new(Arc::clone(&plan));
    let mut step_out = vec![0.0f32; plan.output_dim()];
    let mut cursor = 0usize;
    let ns = measure(opts, || {
        session.push_into(&columns[cursor], &mut step_out);
        std::hint::black_box(step_out[0]);
        cursor = (cursor + 1) % t;
    });
    out.push(step_record("stream_f32/step", ns));

    // 2. The int8 streaming step.
    let mut qsession = QuantizedSession::new(Arc::clone(&qplan));
    let mut cursor = 0usize;
    let ns = measure(opts, || {
        qsession.push_into(&columns[cursor], &mut step_out);
        std::hint::black_box(step_out[0]);
        cursor = (cursor + 1) % t;
    });
    out.push(step_record("stream_i8/step", ns));

    // 3. Batched int8 sessions: 32 streams, one GEMM wave per layer.
    const STREAMS: usize = 32;
    let mut pool = QuantizedSessionPool::new(Arc::clone(&qplan), STREAMS);
    let mut cursor = 0usize;
    let ns = measure(opts, || {
        for sid in 0..STREAMS {
            pool.push(sid, &columns[(cursor + sid) % t]);
        }
        std::hint::black_box(pool.flush());
        cursor = (cursor + 1) % t;
    });
    let mut rec = step_record("sessions32_i8/step", ns / STREAMS as f64);
    rec.throughput = STREAMS as f64 * 1e9 / ns;
    out.push(rec);
    out
}

/// Serving-daemon suite: end-to-end loopback throughput and wave latency of
/// the `pit-serve` TCP daemon on the same searched PPG model as the
/// `infer`/`quant` suites.
///
/// * `loopback_f32/step` — one timestep end to end (client encode → TCP →
///   wave batcher → pooled GEMM wave → TCP → client decode), 16 concurrent
///   streams pushed in 64-step bursts over one connection. This is the
///   suite's machine-speed anchor (the `_f32/step` rule of [`compare`]).
/// * `loopback_i8/step` — the same fleet on the int8 engine.
/// * `serve_ping/rtt` — a PING/PONG round trip through the batcher thread:
///   the control-path floor under the loopback numbers.
/// * `wave_f32/p50` — the server's own median flush latency over the f32
///   run (from its STATS counters): what one batched wave costs, excluding
///   the wire. The p99 is deliberately *not* a gated record — it swings
///   several-fold run to run even on idle hardware (it measures scheduler
///   tail noise, not kernels) and lives in the STATS frame instead.
/// * `model_switch/open` — a protocol-v3 named OPEN/CLOSE round trip
///   alternating between a two-model registry's entries: the per-stream
///   cost of model selection.
/// * `loopback_tel_f32/step` — the f32 loopback re-run with the telemetry
///   sidecar bound (`metrics_addr` set): the delta against
///   `loopback_f32/step` is what the observability layer costs the hot
///   path.
/// * `serve_metrics/scrape` — one full HTTP `GET /metrics` round trip
///   (connect → request → read to EOF) against a daemon holding 256 open
///   streams with seeded counters and histograms: what a Prometheus
///   scrape costs.
pub fn serve_suite(opts: &MeasureOpts) -> Vec<BenchRecord> {
    use pit_infer::{compile_temponet, QuantizedPlan};
    use pit_models::{TempoNet, TempoNetConfig};
    use pit_nas::SearchableNetwork;
    use pit_serve::{Client, ServeEngine, Server, ServerConfig, ServerFrame, StatsSnapshot};
    use std::sync::Arc;

    const STREAMS: usize = 16;
    const BURST: usize = 64; // steps per stream per iteration

    let cfg = TempoNetConfig::scaled(8, 64);
    let c_in = cfg.input_channels;
    let mut rng = StdRng::seed_from_u64(9);
    let net = TempoNet::new(&mut rng, &cfg);
    net.set_dilations(&cfg.hand_tuned_dilations());
    let plan = Arc::new(compile_temponet(&net));
    let x = init::uniform(&mut rng, &[1, c_in, cfg.input_length], 1.0);
    let qplan = Arc::new(
        QuantizedPlan::quantize(&plan, std::slice::from_ref(&x)).expect("benchmark plan quantizes"),
    );
    // One 64-step burst per stream, reused every iteration (sessions are
    // stateful; emission cadence is 8, so 64 steps always yield 8 outputs).
    let mut burst = Vec::with_capacity(BURST * c_in);
    for t in 0..BURST {
        for ci in 0..c_in {
            burst.push(x.data()[ci * cfg.input_length + t]);
        }
    }
    let shape = format!("TEMPONet/8 C{c_in} {STREAMS}x{BURST} steps");
    let record = |op: &str, ns_per_step: f64| BenchRecord {
        suite: "serve".into(),
        op: op.into(),
        shape: shape.clone(),
        ns_per_iter: ns_per_step,
        throughput: 1e9 / ns_per_step,
        throughput_unit: "steps/s".into(),
    };

    /// Pushes the burst to all streams and drains the expected emissions —
    /// one full loopback iteration.
    fn loopback_iter(client: &mut Client, burst: &[f32], c_in: usize) {
        for sid in 0..STREAMS as u32 {
            client.push(sid, c_in as u32, burst).expect("push");
        }
        let want = STREAMS * BURST / 8;
        let mut got = 0usize;
        while got < want {
            match client
                .recv_timeout(std::time::Duration::from_secs(30))
                .expect("transport")
                .expect("emissions before timeout")
            {
                ServerFrame::Emit { count, .. } => got += count as usize,
                ServerFrame::Opened { .. } => {}
                other => panic!("unexpected frame {other:?}"),
            }
        }
    }

    let run_engine = |engine: ServeEngine, op: &str, want_stats: bool, config: ServerConfig| {
        let server = Server::bind(engine, config).expect("bind loopback");
        let addr = server.local_addr();
        let handle = server.spawn();
        let mut client = Client::connect(addr).expect("connect");
        for sid in 0..STREAMS as u32 {
            client.open(sid).expect("open");
        }
        let ns = measure(opts, || loopback_iter(&mut client, &burst, c_in));
        let mut out = vec![record(op, ns / (STREAMS * BURST) as f64)];
        if want_stats {
            client.stats().expect("stats");
            let json = loop {
                match client
                    .recv_timeout(std::time::Duration::from_secs(30))
                    .expect("transport")
                    .expect("stats reply")
                {
                    ServerFrame::StatsJson { json } => break json,
                    _ => continue,
                }
            };
            let snap = StatsSnapshot::from_json_str(&json).expect("stats parse");
            // A wave latency is not a per-timestep figure: publish its rate
            // as plain iterations, not steps.
            let mut wave = record("wave_f32/p50", snap.wave_p50_ns as f64);
            wave.throughput_unit = "iter/s".into();
            out.push(wave);
        }
        handle.shutdown();
        out
    };

    let mut out = Vec::new();
    out.extend(run_engine(
        ServeEngine::F32(Arc::clone(&plan)),
        "loopback_f32/step",
        true,
        ServerConfig::default(),
    ));
    out.extend(run_engine(
        ServeEngine::I8(Arc::clone(&qplan)),
        "loopback_i8/step",
        false,
        ServerConfig::default(),
    ));
    // The same f32 loopback with the telemetry sidecar bound: histograms,
    // trace ring and the idle HTTP listener all live — the delta against
    // `loopback_f32/step` is the observability overhead on the hot path.
    out.extend(run_engine(
        ServeEngine::F32(Arc::clone(&plan)),
        "loopback_tel_f32/step",
        false,
        ServerConfig {
            metrics_addr: Some("127.0.0.1:0".into()),
            ..ServerConfig::default()
        },
    ));

    // Control-path round trip: PING through the batcher and back.
    let server = Server::bind(ServeEngine::F32(Arc::clone(&plan)), ServerConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr();
    let handle = server.spawn();
    let mut client = Client::connect(addr).expect("connect");
    let mut token = 0u64;
    let ns = measure(opts, || {
        token += 1;
        client.ping(token).expect("ping");
        loop {
            match client
                .recv_timeout(std::time::Duration::from_secs(30))
                .expect("transport")
                .expect("pong")
            {
                ServerFrame::Pong { token: t } if t == token => break,
                _ => continue,
            }
        }
    });
    handle.shutdown();
    let mut rec = record("serve_ping/rtt", ns);
    rec.throughput_unit = "iter/s".into();
    out.push(rec);

    // Per-stream model selection (protocol v3): a named OPEN → OPENED →
    // CLOSE → CLOSED round trip alternating between the two registry
    // models — what switching models costs a client per stream.
    let server = Server::bind_models(
        vec![
            ("fp".into(), ServeEngine::F32(Arc::clone(&plan))),
            ("q8".into(), ServeEngine::I8(Arc::clone(&qplan))),
        ],
        "fp",
        ServerConfig::default(),
    )
    .expect("bind registry");
    let addr = server.local_addr();
    let handle = server.spawn();
    let mut client = Client::connect(addr).expect("connect");
    let mut flips = 0u64;
    let ns = measure(opts, || {
        flips += 1;
        let model = if flips.is_multiple_of(2) { "fp" } else { "q8" };
        client.open_with_model(7, model).expect("open");
        loop {
            match client
                .recv_timeout(std::time::Duration::from_secs(30))
                .expect("transport")
                .expect("opened")
            {
                ServerFrame::Opened { .. } => break,
                _ => continue,
            }
        }
        client.close(7).expect("close");
        loop {
            match client
                .recv_timeout(std::time::Duration::from_secs(30))
                .expect("transport")
                .expect("closed")
            {
                ServerFrame::Closed { .. } => break,
                _ => continue,
            }
        }
    });
    handle.shutdown();
    let mut rec = record("model_switch/open", ns);
    rec.throughput_unit = "iter/s".into();
    out.push(rec);

    // Prometheus scrape under load: 256 open streams with seeded counters
    // and per-shard histograms, then one full `GET /metrics` round trip
    // (connect → request → read to EOF) per iteration.
    const SCRAPE_STREAMS: usize = 256;
    let server = Server::bind(
        ServeEngine::I8(Arc::clone(&qplan)),
        ServerConfig {
            metrics_addr: Some("127.0.0.1:0".into()),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let metrics_addr = server.metrics_addr().expect("sidecar bound");
    let handle = server.spawn();
    let mut client = Client::connect(addr).expect("connect");
    for sid in 0..SCRAPE_STREAMS as u32 {
        client.open(sid).expect("open");
    }
    // Seed every stream's counters with one 8-step burst (one emission).
    let seed = &burst[..8 * c_in];
    for sid in 0..SCRAPE_STREAMS as u32 {
        client.push(sid, c_in as u32, seed).expect("push");
    }
    let mut got = 0usize;
    while got < SCRAPE_STREAMS {
        match client
            .recv_timeout(std::time::Duration::from_secs(30))
            .expect("transport")
            .expect("emissions before timeout")
        {
            ServerFrame::Emit { count, .. } => got += count as usize,
            ServerFrame::Opened { .. } => {}
            other => panic!("unexpected frame {other:?}"),
        }
    }
    let ns = measure(opts, || {
        use std::io::{Read, Write};
        let mut http = std::net::TcpStream::connect(metrics_addr).expect("sidecar reachable");
        http.write_all(b"GET /metrics HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n")
            .expect("request sent");
        let mut body = Vec::new();
        http.read_to_end(&mut body).expect("scrape read");
        assert!(body.starts_with(b"HTTP/1.1 200"), "scrape succeeded");
        std::hint::black_box(body.len());
    });
    handle.shutdown();
    let mut rec = record("serve_metrics/scrape", ns);
    rec.throughput_unit = "iter/s".into();
    out.push(rec);
    out
}

/// Thousand-stream scaling suite: ops/sec of the event-driven daemon as the
/// fleet grows 16 → 256 → 1024 → 4096 streams, plus a 1-shard/4-shard A/B
/// at 1024 streams. Clients push protocol-v2 PUSH_N frames (8 steps per
/// stream per round) from several connection threads and drain the
/// coalesced EMIT_N replies; a round completes when every stream's emission
/// arrived, so the numbers are honest end-to-end serving throughput,
/// including the wave tick.
///
/// * `scale16_f32/step` — small-fleet f32 run; the suite's machine-speed
///   anchor (the `_f32/step` rule of [`compare`]).
/// * `scale256_i8/step`, `scale1024_i8/step`, `scale4096_i8/step` — the
///   int8 sweep (1024/4096 on four shards).
/// * `shard1_1024_i8/step` — 1024 streams forced onto a single shard: the
///   contrast against `scale1024_i8/step` isolates what sharding buys.
///   On a single-core recording host the two land close together; the gap
///   opens with physical cores.
pub fn scale_suite(opts: &MeasureOpts) -> Vec<BenchRecord> {
    use pit_infer::{compile_temponet, QuantizedPlan};
    use pit_models::{TempoNet, TempoNetConfig};
    use pit_nas::SearchableNetwork;
    use pit_serve::{Client, ServeEngine, Server, ServerConfig, ServerFrame};
    use std::sync::{Arc, Barrier};

    let cfg = TempoNetConfig::scaled(8, 64);
    let c_in = cfg.input_channels;
    let mut rng = StdRng::seed_from_u64(9);
    let net = TempoNet::new(&mut rng, &cfg);
    net.set_dilations(&cfg.hand_tuned_dilations());
    let plan = Arc::new(compile_temponet(&net));
    let x = init::uniform(&mut rng, &[1, c_in, cfg.input_length], 1.0);
    let qplan = Arc::new(
        QuantizedPlan::quantize(&plan, std::slice::from_ref(&x)).expect("benchmark plan quantizes"),
    );
    // One 8-step burst (the emission period), reused by every stream.
    let mut burst = Vec::with_capacity(8 * c_in);
    for t in 0..8 {
        for ci in 0..c_in {
            burst.push(x.data()[ci * cfg.input_length + t]);
        }
    }
    let burst = Arc::new(burst);

    // Boots a daemon, spreads `streams` over `conns` connection threads,
    // and times `samples` phases of `rounds` push-all/drain-all rounds
    // (after one warmup phase). Returns median ns per timestep.
    let scale_run =
        |engine: ServeEngine, streams: usize, conns: usize, shards: usize, rounds: usize| -> f64 {
            let per_conn = streams / conns;
            let server = Server::bind(
                engine,
                ServerConfig {
                    max_streams: streams,
                    shards,
                    ..ServerConfig::default()
                },
            )
            .expect("bind loopback");
            let addr = server.local_addr();
            let handle = server.spawn();
            let phases = opts.samples + 1; // phase 0 is warmup
            let barrier = Arc::new(Barrier::new(conns + 1));
            let workers: Vec<_> = (0..conns)
                .map(|_| {
                    let barrier = Arc::clone(&barrier);
                    let burst = Arc::clone(&burst);
                    std::thread::spawn(move || {
                        let mut client = Client::connect(addr).expect("connect");
                        for sid in 0..per_conn as u32 {
                            client.open(sid).expect("open");
                        }
                        let entries: Vec<(u32, u32)> =
                            (0..per_conn as u32).map(|sid| (sid, 8)).collect();
                        let samples: Vec<f32> =
                            (0..per_conn).flat_map(|_| burst.iter().copied()).collect();
                        for _ in 0..phases {
                            barrier.wait(); // phase start
                            for _ in 0..rounds {
                                client
                                    .push_n(c_in as u32, &entries, &samples)
                                    .expect("push_n");
                                // One emission per stream per 8-step round.
                                let mut got = 0usize;
                                while got < per_conn {
                                    match client
                                        .recv_timeout(std::time::Duration::from_secs(60))
                                        .expect("transport")
                                        .expect("emissions before timeout")
                                    {
                                        ServerFrame::Emit { count, .. } => got += count as usize,
                                        ServerFrame::EmitN { entries, .. } => {
                                            got += entries
                                                .iter()
                                                .map(|&(_, n)| n as usize)
                                                .sum::<usize>()
                                        }
                                        ServerFrame::Opened { .. } => {}
                                        other => panic!("unexpected frame {other:?}"),
                                    }
                                }
                            }
                            barrier.wait(); // phase end
                        }
                    })
                })
                .collect();
            let mut timed = Vec::with_capacity(opts.samples);
            for phase in 0..phases {
                barrier.wait(); // release workers into the phase
                let start = Instant::now();
                barrier.wait(); // workers done
                if phase > 0 {
                    let steps = (streams * rounds * 8) as f64;
                    timed.push(start.elapsed().as_nanos() as f64 / steps);
                }
            }
            for w in workers {
                w.join().expect("scale worker");
            }
            handle.shutdown();
            timed.sort_by(|a, b| a.total_cmp(b));
            timed[timed.len() / 2]
        };

    let record = |op: &str, streams: usize, conns: usize, shards: usize, ns: f64| BenchRecord {
        suite: "scale".into(),
        op: op.into(),
        shape: format!("TEMPONet/8 C{c_in} {streams} streams x{conns} conns shards{shards}"),
        ns_per_iter: ns,
        throughput: 1e9 / ns,
        throughput_unit: "steps/s".into(),
    };

    let mut out = Vec::new();
    let ns = scale_run(ServeEngine::F32(Arc::clone(&plan)), 16, 4, 1, 32);
    out.push(record("scale16_f32/step", 16, 4, 1, ns));
    let ns = scale_run(ServeEngine::I8(Arc::clone(&qplan)), 256, 8, 4, 8);
    out.push(record("scale256_i8/step", 256, 8, 4, ns));
    let ns = scale_run(ServeEngine::I8(Arc::clone(&qplan)), 1024, 32, 1, 4);
    out.push(record("shard1_1024_i8/step", 1024, 32, 1, ns));
    let ns = scale_run(ServeEngine::I8(Arc::clone(&qplan)), 1024, 32, 4, 4);
    out.push(record("scale1024_i8/step", 1024, 32, 4, ns));
    let ns = scale_run(ServeEngine::I8(Arc::clone(&qplan)), 4096, 32, 4, 2);
    out.push(record("scale4096_i8/step", 4096, 32, 4, ns));
    out
}

/// Runs the training-side suites (the `BENCH_conv.json` record set).
pub fn run_suites(quick: bool) -> Vec<BenchRecord> {
    let names: Vec<String> = ["conv", "masking", "search"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    run_named_suites(&names, quick).expect("default suite names are valid")
}

/// Runs suites by name (`conv`, `masking`, `search`, `infer`, `quant`,
/// `serve`, `scale`).
///
/// # Errors
///
/// Returns the first unknown suite name.
pub fn run_named_suites(names: &[String], quick: bool) -> Result<Vec<BenchRecord>, String> {
    let opts = if quick {
        MeasureOpts::quick()
    } else {
        MeasureOpts::full()
    };
    let mut records = Vec::new();
    for name in names {
        match name.as_str() {
            "conv" => records.extend(conv_suite(&opts, quick)),
            "masking" => records.extend(masking_suite(&opts, quick)),
            "search" => records.extend(search_suite(&opts)),
            "infer" => records.extend(infer_suite(&opts)),
            "quant" => records.extend(quant_suite(&opts)),
            "serve" => records.extend(serve_suite(&opts)),
            "scale" => records.extend(scale_suite(&opts)),
            other => return Err(format!("unknown suite '{other}'")),
        }
    }
    Ok(records)
}

// ---------------------------------------------------------------------------
// JSON round trip
// ---------------------------------------------------------------------------

/// Serialises records to the committed `BENCH_conv.json` schema.
pub fn records_to_json(records: &[BenchRecord], mode: &str) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str("pit-bench/1".into())),
        ("mode".into(), Json::Str(mode.into())),
        (
            "records".into(),
            Json::Arr(
                records
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("suite".into(), Json::Str(r.suite.clone())),
                            ("op".into(), Json::Str(r.op.clone())),
                            ("shape".into(), Json::Str(r.shape.clone())),
                            ("ns_per_iter".into(), Json::Num(r.ns_per_iter)),
                            ("throughput".into(), Json::Num(r.throughput)),
                            (
                                "throughput_unit".into(),
                                Json::Str(r.throughput_unit.clone()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The `mode` a `BENCH_conv.json` document was recorded with
/// (`quick`/`full`), when present.
pub fn document_mode(doc: &Json) -> Option<&str> {
    doc.get("mode").and_then(Json::as_str)
}

/// Parses a `BENCH_conv.json` document back into records.
///
/// # Errors
///
/// Returns a message naming the first missing or ill-typed field.
pub fn records_from_json(doc: &Json) -> Result<Vec<BenchRecord>, String> {
    let records = doc
        .get("records")
        .and_then(Json::as_array)
        .ok_or("missing 'records' array")?;
    records
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let text = |field: &str| -> Result<String, String> {
                r.get(field)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or(format!("record {i}: missing string field '{field}'"))
            };
            let num = |field: &str| -> Result<f64, String> {
                r.get(field)
                    .and_then(Json::as_f64)
                    .ok_or(format!("record {i}: missing number field '{field}'"))
            };
            Ok(BenchRecord {
                suite: text("suite")?,
                op: text("op")?,
                shape: text("shape")?,
                ns_per_iter: num("ns_per_iter")?,
                throughput: num("throughput")?,
                throughput_unit: text("throughput_unit")?,
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Baseline comparison
// ---------------------------------------------------------------------------

/// Verdict for one baseline record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Pass,
    Regressed,
    Missing,
}

/// One row of a baseline comparison.
#[derive(Debug, Clone)]
pub struct CompareRow {
    pub key: String,
    pub baseline_ns: f64,
    pub current_ns: Option<f64>,
    /// `current / baseline` after normalisation (1.0 = unchanged).
    pub ratio: Option<f64>,
    pub verdict: Verdict,
}

/// Result of diffing a current run against a committed baseline.
#[derive(Debug, Clone)]
pub struct CompareReport {
    pub rows: Vec<CompareRow>,
    /// Machine-speed factor divided out of the ratios (1.0 when not
    /// normalising).
    pub speed_factor: f64,
    pub tolerance: f64,
}

impl CompareReport {
    /// `true` when no baseline record regressed or went missing.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| r.verdict == Verdict::Pass)
    }

    /// Renders the comparison as an aligned table plus a one-line summary.
    pub fn render(&self) -> String {
        let mut table = Table::new(
            format!("bench compare (tolerance {:.2}x)", self.tolerance),
            &["op::shape", "baseline ns", "current ns", "ratio", "verdict"],
        );
        for row in &self.rows {
            table.row(&[
                row.key.clone(),
                format!("{:.0}", row.baseline_ns),
                row.current_ns
                    .map(|ns| format!("{ns:.0}"))
                    .unwrap_or_else(|| "-".into()),
                row.ratio
                    .map(|r| format!("{r:.2}x"))
                    .unwrap_or_else(|| "-".into()),
                match row.verdict {
                    Verdict::Pass => "ok".into(),
                    Verdict::Regressed => "REGRESSED".into(),
                    Verdict::Missing => "MISSING".into(),
                },
            ]);
        }
        let failures = self
            .rows
            .iter()
            .filter(|r| r.verdict != Verdict::Pass)
            .count();
        format!(
            "{}machine speed factor: {:.2} | {} of {} checks failed\n",
            table.render(),
            self.speed_factor,
            failures,
            self.rows.len()
        )
    }
}

/// Diffs `current` against `baseline`.
///
/// Every baseline record must appear in the current run and take at most
/// `tolerance ×` its baseline time. With `normalize`, a machine-speed factor
/// is divided out first, so the gate measures *relative* kernel regressions
/// rather than the raw speed of the CI machine — the right setting for
/// cross-machine comparisons.
///
/// The factor is the median current/baseline ratio over the *anchor*
/// records when any exist — ops ending in `/naive` (the frozen seed
/// kernels) or in `_f32/step` (the f32 serving step the quant suite
/// measures against). Anchors never speed up with the optimised paths and
/// do not thread, so they pin pure machine speed; using the optimised
/// records would let a uniform regression of the fast kernels normalise
/// itself away. With no anchors the median over all records is used.
pub fn compare(
    baseline: &[BenchRecord],
    current: &[BenchRecord],
    tolerance: f64,
    normalize: bool,
) -> CompareReport {
    let lookup = |records: &[BenchRecord], key: &str| -> Option<f64> {
        records
            .iter()
            .find(|r| r.key() == key)
            .map(|r| r.ns_per_iter)
    };
    let is_anchor = |op: &str| op.ends_with("/naive") || op.ends_with("_f32/step");
    let ratios_of = |anchor_only: bool| -> Vec<f64> {
        let mut ratios: Vec<f64> = baseline
            .iter()
            .filter(|b| !anchor_only || is_anchor(&b.op))
            .filter_map(|b| lookup(current, &b.key()).map(|cur| cur / b.ns_per_iter))
            .collect();
        ratios.sort_by(|a, b| a.total_cmp(b));
        ratios
    };
    let speed_factor = if normalize {
        let anchors = ratios_of(true);
        let ratios = if anchors.is_empty() {
            ratios_of(false)
        } else {
            anchors
        };
        if ratios.is_empty() {
            1.0
        } else {
            ratios[ratios.len() / 2]
        }
    } else {
        1.0
    };
    let rows = baseline
        .iter()
        .map(|b| {
            let key = b.key();
            let current_ns = lookup(current, &key);
            let ratio = current_ns.map(|cur| cur / b.ns_per_iter / speed_factor);
            let verdict = match ratio {
                None => Verdict::Missing,
                Some(r) if r > tolerance => Verdict::Regressed,
                Some(_) => Verdict::Pass,
            };
            CompareRow {
                key,
                baseline_ns: b.ns_per_iter,
                current_ns,
                ratio,
                verdict,
            }
        })
        .collect();
    CompareReport {
        rows,
        speed_factor,
        tolerance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(op: &str, ns: f64) -> BenchRecord {
        BenchRecord {
            suite: "conv".into(),
            op: op.into(),
            shape: "N1".into(),
            ns_per_iter: ns,
            throughput: 1e9 / ns,
            throughput_unit: "iter/s".into(),
        }
    }

    #[test]
    fn json_roundtrip_preserves_records() {
        let records = vec![rec("a/fast", 1200.0), rec("b/naive", 34567.5)];
        let doc = records_to_json(&records, "quick");
        let text = doc.render();
        let parsed = records_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn records_from_json_rejects_missing_fields() {
        let doc = Json::parse(r#"{"records": [{"op": "x"}]}"#).unwrap();
        let err = records_from_json(&doc).unwrap_err();
        assert!(err.contains("suite"), "{err}");
    }

    #[test]
    fn compare_passes_within_tolerance_and_fails_beyond() {
        let baseline = vec![rec("a", 1000.0), rec("b", 1000.0)];
        let ok = vec![rec("a", 1500.0), rec("b", 900.0)];
        assert!(compare(&baseline, &ok, 2.0, false).passed());
        let slow = vec![rec("a", 2500.0), rec("b", 900.0)];
        let report = compare(&baseline, &slow, 2.0, false);
        assert!(!report.passed());
        assert_eq!(report.rows[0].verdict, Verdict::Regressed);
        assert_eq!(report.rows[1].verdict, Verdict::Pass);
    }

    #[test]
    fn compare_flags_missing_records() {
        let baseline = vec![rec("a", 1000.0), rec("gone", 1000.0)];
        let current = vec![rec("a", 1000.0)];
        let report = compare(&baseline, &current, 2.0, false);
        assert!(!report.passed());
        assert_eq!(report.rows[1].verdict, Verdict::Missing);
        assert!(report.render().contains("MISSING"));
    }

    #[test]
    fn normalization_divides_out_machine_speed() {
        // The whole machine is 3x slower: raw comparison fails, normalised
        // passes because every kernel kept its relative cost.
        let baseline = vec![rec("a", 1000.0), rec("b", 2000.0), rec("c", 500.0)];
        let slower = vec![rec("a", 3000.0), rec("b", 6000.0), rec("c", 1500.0)];
        assert!(!compare(&baseline, &slower, 2.0, false).passed());
        let report = compare(&baseline, &slower, 2.0, true);
        assert!((report.speed_factor - 3.0).abs() < 1e-9);
        assert!(report.passed());
        // A kernel-specific regression still fails after normalisation.
        let one_bad = vec![rec("a", 3000.0), rec("b", 2000.0), rec("c", 500.0)];
        assert!(!compare(&baseline, &one_bad, 2.0, true).passed());
    }

    #[test]
    fn normalization_anchors_on_naive_reference_records() {
        let baseline = vec![
            rec("conv/naive", 1000.0),
            rec("conv/fast", 1000.0),
            rec("grads/fast", 1000.0),
        ];
        // A multi-core runner: the threaded fast kernels got 4x faster, the
        // serial naive anchors did not. The anchor keeps the fast speedup
        // from being mistaken for machine speed — everything passes.
        let multicore = vec![
            rec("conv/naive", 1000.0),
            rec("conv/fast", 250.0),
            rec("grads/fast", 250.0),
        ];
        let report = compare(&baseline, &multicore, 2.0, true);
        assert!((report.speed_factor - 1.0).abs() < 1e-9);
        assert!(report.passed());
        // A uniform regression of every fast kernel must NOT normalise
        // itself away: the naive anchor pins the machine factor at 1.
        let fast_rot = vec![
            rec("conv/naive", 1000.0),
            rec("conv/fast", 3000.0),
            rec("grads/fast", 3000.0),
        ];
        assert!(!compare(&baseline, &fast_rot, 2.0, true).passed());
    }

    #[test]
    fn normalization_anchors_on_the_f32_serving_step() {
        // The quant suite has no /naive records; its f32 step is the anchor.
        let baseline = vec![rec("stream_f32/step", 1000.0), rec("stream_i8/step", 400.0)];
        // The int8 path regresses 3x while the anchor holds: the gate must
        // trip — a median over all records would absorb half of it.
        let bad = vec![
            rec("stream_f32/step", 1000.0),
            rec("stream_i8/step", 1200.0),
        ];
        assert!(!compare(&baseline, &bad, 2.0, true).passed());
        // A uniformly slower machine still normalises away.
        let slow = vec![
            rec("stream_f32/step", 3000.0),
            rec("stream_i8/step", 1200.0),
        ];
        assert!(compare(&baseline, &slow, 2.0, true).passed());
    }

    #[test]
    fn measure_reports_plausible_time() {
        let opts = MeasureOpts {
            samples: 3,
            target_sample_ns: 100_000,
        };
        let mut acc = 0u64;
        let ns = measure(&opts, || {
            acc = acc.wrapping_add(std::hint::black_box(1));
        });
        assert!(ns > 0.0 && ns < 1e7, "implausible ns/iter: {ns}");
    }
}
