//! # pit-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! PIT paper's evaluation section on top of the synthetic substrates of this
//! workspace.
//!
//! | Paper artefact | Binary | Criterion bench |
//! |----------------|--------|-----------------|
//! | Fig. 4 (Pareto frontiers, both seeds) | `fig4_pareto` | `benches/pareto.rs` |
//! | Table I (learned dilations) | `table1_dilations` | — |
//! | Table II (PIT vs ProxylessNAS) | `table2_proxyless` | — |
//! | Fig. 5 (search-time comparison) | `fig5_search_cost` | `benches/search_cost.rs` |
//! | Table III (GAP8 deployment) | `table3_gap8` | `benches/gap8_latency.rs` |
//! | masked-conv training-cost ablation | `ablation_warmup` | `benches/conv_masking.rs` |
//!
//! Every binary accepts `--full` for the paper-scale configuration and runs
//! a scaled-down "quick" configuration by default, so the whole suite can be
//! executed on a laptop in minutes. Results print as aligned text tables and
//! are recorded in the repository's `EXPERIMENTS.md`.
//!
//! The crate also hosts the machine-readable perf harness: the `bench_json`
//! binary runs the [`perf`] suites (conv kernels, masked training,
//! search-step cost, streaming inference), serialises them through the
//! hand-rolled [`json`] module (now hosted by `pit-tensor` and re-exported
//! here) into the committed `BENCH_conv.json` / `BENCH_infer.json` baselines,
//! and its `compare` mode is the regression gate CI runs on every push.

pub mod experiments;
pub mod perf;
pub mod report;

pub use pit_tensor::hist;
pub use pit_tensor::json;
pub mod scale;

pub use experiments::{fig4, fig5, table1, table2, table3};
pub use report::Table;
pub use scale::{ExperimentScale, SeedKind};
