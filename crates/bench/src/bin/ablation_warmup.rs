//! Ablation: effect of the warmup length on the size / accuracy trade-off.
//!
//! Sec. III-C of the paper notes that a shorter warmup favours more
//! aggressive simplification (the γ are pruned while the weights are still
//! inaccurate). This binary sweeps the warmup length at a fixed λ and prints
//! the resulting model size and validation loss.
//!
//! Usage: `cargo run --release -p pit-bench --bin ablation_warmup [-- --full]`

use pit_bench::experiments::{build_benchmark, build_network, pit_config};
use pit_bench::report::{format_dilations, format_params, Table};
use pit_bench::{ExperimentScale, SeedKind};
use pit_nas::{PitConfig, PitSearch};

fn main() {
    let scale = ExperimentScale::from_args(std::env::args());
    let bench = build_benchmark(SeedKind::TempoNet, &scale);
    let lambda = scale.lambdas[scale.lambdas.len() / 2];
    let warmups: Vec<usize> = vec![0, scale.warmup_epochs, 2 * scale.warmup_epochs.max(1)];

    let mut table = Table::new(
        format!("Ablation — warmup length (TEMPONet, λ = {lambda:.0e})"),
        &["warmup epochs", "# params", "MAE", "dilations"],
    );
    for (i, &warmup) in warmups.iter().enumerate() {
        let net = build_network(
            SeedKind::TempoNet,
            &scale,
            scale.seed.wrapping_add(300 + i as u64),
        );
        let cfg = PitConfig {
            seed: scale.seed.wrapping_add(300 + i as u64),
            ..pit_config(&scale, lambda, warmup)
        };
        let outcome = PitSearch::new(cfg).run(&net, &bench.train, &bench.val, bench.loss);
        table.row(&[
            warmup.to_string(),
            format_params(outcome.effective_params),
            format!("{:.4}", outcome.val_loss),
            format_dilations(&outcome.dilations),
        ]);
    }
    println!("{}", table.render());
}
