//! Regenerates Fig. 5: wall-clock search time of PIT versus ProxylessNAS
//! versus a single plain training, for three size targets of the TEMPONet
//! seed.
//!
//! Usage: `cargo run --release -p pit-bench --bin fig5_search_cost [-- --full]`

use pit_bench::experiments::fig5;
use pit_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_args(std::env::args());
    let (_rows, table) = fig5(&scale);
    println!("{}", table.render());
    println!(
        "Expected shape (paper): ProxylessNAS is 5x-10x slower than PIT; PIT is only 1.3x-2.3x\n\
         slower than training the selected architecture once."
    );
}
