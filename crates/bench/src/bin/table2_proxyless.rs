//! Regenerates Table II: PIT versus a ProxylessNAS-style search over the same
//! dilation space, on the TEMPONet seed and the PPG-Dalia benchmark.
//!
//! Usage: `cargo run --release -p pit-bench --bin table2_proxyless [-- --full]`

use pit_bench::experiments::table2;
use pit_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_args(std::env::args());
    println!("{}", table2(&scale).render());
}
