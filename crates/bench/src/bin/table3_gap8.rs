//! Regenerates Table III: deployment of the seed, hand-tuned and PIT
//! small/medium/large networks on the GAP8 analytical model (int8, 100 MHz),
//! reporting weights, task loss, latency and energy.
//!
//! Usage: `cargo run --release -p pit-bench --bin table3_gap8 [-- --full]`

use pit_bench::experiments::{fig4, table3};
use pit_bench::{ExperimentScale, SeedKind};

fn main() {
    let scale = ExperimentScale::from_args(std::env::args());
    for kind in [SeedKind::ResTcn, SeedKind::TempoNet] {
        let result = fig4(kind, &scale);
        println!("{}", table3(&result, &scale).render());
    }
    println!(
        "Latency/energy columns are produced by the analytical GAP8 model on the paper-scale\n\
         architectures; loss columns are measured on the synthetic benchmarks at the selected scale."
    );
}
