//! Regenerates Table I: the per-layer dilations selected by PIT (small,
//! medium, large) compared to the hand-tuned networks, plus the size of the
//! search space quoted in Sec. IV-B.
//!
//! Usage: `cargo run --release -p pit-bench --bin table1_dilations [-- --full]`

use pit_bench::experiments::{fig4, table1};
use pit_bench::{ExperimentScale, SeedKind};

fn main() {
    let scale = ExperimentScale::from_args(std::env::args());
    for kind in [SeedKind::ResTcn, SeedKind::TempoNet] {
        let result = fig4(kind, &scale);
        println!(
            "{} search space: {} dilation combinations (~10^{:.1})\n",
            kind.name(),
            result.search_space_size,
            (result.search_space_size as f64).log10()
        );
        println!("{}", table1(&result, &scale).render());
    }
}
