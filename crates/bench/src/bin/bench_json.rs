//! Machine-readable benchmark runner and regression gate.
//!
//! ```text
//! bench_json [--quick | --full] [--suites LIST] [--out PATH]
//!     Runs benchmark suites and writes the JSON report (stdout when --out
//!     is omitted). --suites is a comma-separated subset of
//!     conv,masking,search,infer,quant,serve; the default (conv,masking,search)
//!     is the committed BENCH_conv.json record set, `--suites infer` is
//!     BENCH_infer.json, `--suites quant` is BENCH_int8.json and
//!     `--suites serve` is BENCH_serve.json. --quick is the default and
//!     what CI and all committed baselines use.
//!
//! bench_json compare <baseline.json> <current.json>
//!            [--tolerance F] [--normalize]
//!     Diffs a fresh run against a committed baseline. Fails (exit 1) when a
//!     baseline record is missing or slower than tolerance × its baseline
//!     time. --normalize divides out the median machine-speed ratio first,
//!     which is what CI uses to compare runner hardware against the
//!     baseline-recording machine.
//! ```
//!
//! Refresh the baseline with `scripts/bench-baseline.sh` (never by hand).

use pit_bench::json::Json;
use pit_bench::perf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_json [--quick|--full] [--suites conv,masking,search,infer,quant,serve] [--out PATH]\n\
         \u{20}      bench_json compare <baseline.json> <current.json> [--tolerance F] [--normalize]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("compare") {
        run_compare(&args[1..])
    } else {
        run_suites(&args)
    }
}

fn run_suites(args: &[String]) -> ExitCode {
    let mut quick = true;
    let mut out_path: Option<String> = None;
    let mut suites: Vec<String> = ["conv", "masking", "search"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            "--suites" => match it.next() {
                Some(list) => {
                    suites = list.split(',').map(|s| s.trim().to_string()).collect();
                }
                None => return usage(),
            },
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let mode = if quick { "quick" } else { "full" };
    eprintln!("running {mode} suites ({})...", suites.join(", "));
    let records = match perf::run_named_suites(&suites, quick) {
        Ok(records) => records,
        Err(e) => {
            eprintln!("bench_json: {e}");
            return usage();
        }
    };
    for r in &records {
        eprintln!(
            "  {:<28} {:<28} {:>12.0} ns/iter  {:>8.2} {}",
            r.op, r.shape, r.ns_per_iter, r.throughput, r.throughput_unit
        );
    }
    let text = perf::records_to_json(&records, mode).render();
    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("bench_json: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            eprintln!("wrote {path} ({} records)", records.len());
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

fn run_compare(args: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut tolerance = 2.0f64;
    let mut normalize = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t > 0.0 => tolerance = t,
                _ => return usage(),
            },
            "--normalize" => normalize = true,
            _ if !arg.starts_with('-') => paths.push(arg),
            _ => return usage(),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return usage();
    };
    type Loaded = (Vec<perf::BenchRecord>, Option<String>);
    let load = |path: &str| -> Result<Loaded, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        let mode = perf::document_mode(&doc).map(str::to_string);
        let records = perf::records_from_json(&doc).map_err(|e| format!("{path}: {e}"))?;
        Ok((records, mode))
    };
    let ((baseline, base_mode), (current, cur_mode)) =
        match (load(baseline_path), load(current_path)) {
            (Ok(b), Ok(c)) => (b, c),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("bench_json: {e}");
                return ExitCode::from(2);
            }
        };
    // A quick-mode run can never match a full-mode baseline's record keys
    // (different shapes); fail with a diagnosis instead of a wall of MISSING.
    if let (Some(bm), Some(cm)) = (&base_mode, &cur_mode) {
        if bm != cm {
            eprintln!(
                "bench_json: mode mismatch: baseline {baseline_path} was recorded with \
                 --{bm} but {current_path} ran --{cm}; regenerate the baseline with the \
                 matching mode (scripts/bench-baseline.sh)"
            );
            return ExitCode::from(2);
        }
    }
    let report = perf::compare(&baseline, &current, tolerance, normalize);
    print!("{}", report.render());
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
