//! Regenerates Fig. 4: the accuracy-vs-size Pareto frontiers obtained by PIT
//! from the ResTCN and TEMPONet seeds.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pit-bench --bin fig4_pareto [-- --full] [-- --seed restcn|temponet]
//! ```

use pit_bench::experiments::{fig4, fig4_table};
use pit_bench::{ExperimentScale, SeedKind};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = ExperimentScale::from_args(args.iter().cloned());
    let seeds: Vec<SeedKind> = if args.iter().any(|a| a == "restcn") {
        vec![SeedKind::ResTcn]
    } else if args.iter().any(|a| a == "temponet") {
        vec![SeedKind::TempoNet]
    } else {
        vec![SeedKind::ResTcn, SeedKind::TempoNet]
    };

    println!(
        "PIT design-space exploration ({} scale): {} λ values x {} warmup settings\n",
        if scale.quick { "quick" } else { "full" },
        scale.lambdas.len(),
        scale.warmups.len()
    );
    for kind in seeds {
        let result = fig4(kind, &scale);
        println!("{}", fig4_table(&result).render());
        println!(
            "Pareto front of {}: {} of {} PIT points are non-dominated\n",
            kind.name(),
            result.front.len(),
            result.pit_points.len()
        );
    }
}
