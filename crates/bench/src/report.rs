//! Plain-text table rendering for the experiment binaries.

/// A simple aligned text table (header + rows) printed by the experiment
/// binaries, mirroring the rows/columns of the paper's tables.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as the header).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row length must match header"
        );
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as an aligned string.
    ///
    /// Column widths are computed over the header *and* every data row, in
    /// characters rather than bytes, so cells wider than their header — or
    /// containing multi-byte glyphs like the `→` of layer descriptions — do
    /// not push later columns out of alignment.
    pub fn render(&self) -> String {
        let display_width = |s: &str| s.chars().count();
        let mut widths: Vec<usize> = self.header.iter().map(|h| display_width(h)).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(display_width(cell));
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    // `{:<width$}` pads to a byte-derived width for non-ASCII
                    // content; pad by character count instead.
                    let pad = (widths[i] + 2).saturating_sub(display_width(c));
                    format!("{}{}", c, " ".repeat(pad))
                })
                .collect::<String>()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().map(|w| w + 2).sum::<usize>()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a parameter count the way the paper does (`3.53M`, `423K`).
pub fn format_params(params: usize) -> String {
    if params >= 1_000_000 {
        format!("{:.2}M", params as f64 / 1e6)
    } else if params >= 1_000 {
        format!("{:.0}K", params as f64 / 1e3)
    } else {
        params.to_string()
    }
}

/// Formats a dilation vector as the paper's Table I does: `(1, 2, 4, 8)`.
pub fn format_dilations(dilations: &[usize]) -> String {
    let inner: Vec<String> = dilations.iter().map(|d| d.to_string()).collect();
    format!("({})", inner.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["short".into(), "1".into()]);
        t.row(&["a much longer name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("a much longer name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn alignment_survives_wide_and_non_ascii_cells() {
        // Regression test: cells wider than their header, and cells with
        // multi-byte glyphs, must not shift the columns that follow them.
        let mut t = Table::new("align", &["a", "b", "c"]);
        t.row(&["x".into(), "1".into(), "end".into()]);
        t.row(&["PitConv1d(2→4, d=8)".into(), "123456".into(), "end".into()]);
        t.row(&["§§§".into(), "2".into(), "end".into()]);
        let s = t.render();
        let positions: Vec<usize> = s
            .lines()
            .filter(|l| l.contains("end"))
            .map(|l| {
                l.char_indices()
                    .enumerate()
                    .find(|(_, (byte, _))| l[*byte..].starts_with("end"))
                    .map(|(chars, _)| chars)
                    .unwrap()
            })
            .collect();
        assert_eq!(positions.len(), 3);
        assert!(
            positions.windows(2).all(|w| w[0] == w[1]),
            "column 'c' drifts: {positions:?}\n{s}"
        );
    }

    #[test]
    #[should_panic]
    fn row_length_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn param_formatting_matches_paper_style() {
        assert_eq!(format_params(3_530_000), "3.53M");
        assert_eq!(format_params(423_000), "423K");
        assert_eq!(format_params(950), "950");
    }

    #[test]
    fn dilation_formatting() {
        assert_eq!(format_dilations(&[1, 1, 2, 2]), "(1, 1, 2, 2)");
        assert_eq!(format_dilations(&[]), "()");
    }
}
