//! Table III bench: analytical GAP8 deployment of every architecture of the
//! table (seed, hand-tuned, PIT small/medium/large dilation patterns from the
//! paper), for both seed networks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pit_bench::experiments::paper_descriptor;
use pit_bench::SeedKind;
use pit_hw::{Deployment, Gap8Config};

fn bench_gap8_latency(c: &mut Criterion) {
    let deployment = Deployment::new(Gap8Config::paper());
    let mut group = c.benchmark_group("table3_gap8_deployment");
    group.sample_size(30);

    // Dilation patterns straight from Table I of the paper.
    let restcn_nets: Vec<(&str, Vec<usize>)> = vec![
        ("restcn_seed", vec![1; 8]),
        ("restcn_hand", vec![1, 1, 2, 2, 4, 4, 8, 8]),
        ("restcn_pit_small", vec![4, 4, 8, 8, 16, 16, 32, 32]),
        ("restcn_pit_medium", vec![4, 1, 4, 8, 16, 16, 32, 32]),
        ("restcn_pit_large", vec![1, 4, 8, 8, 16, 16, 8, 1]),
    ];
    let temponet_nets: Vec<(&str, Vec<usize>)> = vec![
        ("temponet_seed", vec![1; 7]),
        ("temponet_hand", vec![2, 2, 1, 4, 4, 8, 8]),
        ("temponet_pit_small", vec![2, 4, 4, 8, 8, 16, 16]),
        ("temponet_pit_medium", vec![1, 2, 4, 2, 1, 8, 16]),
        ("temponet_pit_large", vec![1, 1, 1, 1, 1, 1, 16]),
    ];

    for (name, dilations) in restcn_nets {
        let desc = paper_descriptor(SeedKind::ResTcn, &dilations);
        group.bench_with_input(BenchmarkId::new("analyze", name), &desc, |b, d| {
            b.iter(|| std::hint::black_box(deployment.analyze(d).latency_ms))
        });
    }
    for (name, dilations) in temponet_nets {
        let desc = paper_descriptor(SeedKind::TempoNet, &dilations);
        group.bench_with_input(BenchmarkId::new("analyze", name), &desc, |b, d| {
            b.iter(|| std::hint::black_box(deployment.analyze(d).latency_ms))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gap8_latency);
criterion_main!(benches);
