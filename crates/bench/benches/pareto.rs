//! Fig. 4 bench: the building blocks of the design-space exploration — the
//! differentiable mask construction, the size regulariser, one full PIT
//! search epoch on a tiny benchmark and the Pareto-front extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use pit_bench::experiments::{build_benchmark, build_network, pit_config};
use pit_bench::{ExperimentScale, SeedKind};
use pit_nas::pareto::{pareto_front, ParetoPoint};
use pit_nas::{PitSearch, SearchableNetwork, SizeRegularizer};
use pit_tensor::Tape;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tiny_scale() -> ExperimentScale {
    ExperimentScale {
        temponet_divisor: 16,
        temponet_window: 32,
        temponet_windows: 32,
        warmup_epochs: 0,
        search_epochs: 1,
        finetune_epochs: 0,
        batch_size: 16,
        ..ExperimentScale::quick()
    }
}

fn bench_pareto(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_pareto");
    group.sample_size(10);

    // Differentiable mask construction + regulariser for one network.
    let scale = tiny_scale();
    let net = build_network(SeedKind::TempoNet, &scale, 0);
    let regularizer = SizeRegularizer::new(1e-4);
    group.bench_function("mask_and_regularizer", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            for layer in net.pit_layers() {
                std::hint::black_box(layer.mask(&mut tape));
            }
            let term = regularizer.term(&mut tape, &net.pit_layers());
            std::hint::black_box(tape.value(term).item())
        })
    });

    // One full PIT run (warmup 0 / search 1 / finetune 0) on the tiny benchmark.
    let bench_data = build_benchmark(SeedKind::TempoNet, &scale);
    group.bench_function("pit_search_one_epoch", |b| {
        b.iter(|| {
            let net = build_network(SeedKind::TempoNet, &scale, 1);
            let outcome = PitSearch::new(pit_config(&scale, 1e-4, 0)).run(
                &net,
                &bench_data.train,
                &bench_data.val,
                bench_data.loss,
            );
            std::hint::black_box(outcome.effective_params)
        })
    });

    // Pareto-front extraction over a large cloud of points.
    let mut rng = StdRng::seed_from_u64(3);
    let points: Vec<ParetoPoint> = (0..2_000)
        .map(|i| {
            ParetoPoint::new(
                rng.gen_range(10_000..1_000_000),
                rng.gen_range(0.1f32..5.0),
                vec![1, 2, 4],
                format!("p{i}"),
            )
        })
        .collect();
    group.bench_function("pareto_front_2000_points", |b| {
        b.iter(|| std::hint::black_box(pareto_front(&points).len()))
    });

    group.finish();
}

criterion_group!(benches, bench_pareto);
criterion_main!(benches);
