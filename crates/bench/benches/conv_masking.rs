//! Ablation bench: masked dense convolution (what PIT trains with) versus a
//! true dilated convolution with the same receptive field (what gets
//! deployed). The gap between the two is the per-step overhead PIT pays for
//! keeping the whole search space differentiable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pit_nas::PitConv1d;
use pit_nn::layers::CausalConv1d;
use pit_nn::{Layer, Mode};
use pit_tensor::{init, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_conv_masking(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_masking");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(0);
    let x = init::uniform(&mut rng, &[4, 16, 64], 1.0);

    for dilation in [1usize, 4, 16] {
        let rf_max = 33usize;
        let masked = PitConv1d::new(&mut rng, 16, 16, rf_max, "bench");
        masked.set_dilation(dilation);
        let alive = (rf_max - 1) / dilation + 1;
        let dilated = CausalConv1d::new(&mut rng, 16, 16, alive, dilation);

        group.bench_with_input(
            BenchmarkId::new("masked_dense", dilation),
            &dilation,
            |b, _| {
                b.iter(|| {
                    let mut tape = Tape::new();
                    let vx = tape.constant(x.clone());
                    let y = masked.forward(&mut tape, vx, Mode::Eval);
                    std::hint::black_box(tape.value(y).sum_all())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("true_dilated", dilation),
            &dilation,
            |b, _| {
                b.iter(|| {
                    let mut tape = Tape::new();
                    let vx = tape.constant(x.clone());
                    let y = dilated.forward(&mut tape, vx, Mode::Eval);
                    std::hint::black_box(tape.value(y).sum_all())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_conv_masking);
criterion_main!(benches);
