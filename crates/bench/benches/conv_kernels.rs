//! Before/after bench of the conv hot path: the im2col/GEMM kernels versus
//! the seed's naive nested loops (kept under the `reference` feature of
//! `pit-tensor`), on the acceptance geometry of the kernel-rewrite PR.
//!
//! The machine-readable twin of this bench is `bench_json` (see the
//! "Benchmarks" section of the README); this criterion target exists so
//! `cargo bench -p pit-bench` shows the same story interactively.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pit_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_conv_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_kernels");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(0);
    let (n, c_in, c_out, t, k, d) = (8usize, 32usize, 32usize, 256usize, 9usize, 4usize);
    let x = init::uniform(&mut rng, &[n, c_in, t], 1.0);
    let w = init::uniform(&mut rng, &[c_out, c_in, k], 1.0);
    let b = init::uniform(&mut rng, &[c_out], 1.0);
    let g = init::uniform(&mut rng, &[n, c_out, t], 1.0);
    let x_dims = x.dims().to_vec();

    group.bench_with_input(BenchmarkId::new("forward", "fast"), &d, |bch, _| {
        bch.iter(|| std::hint::black_box(x.conv1d_causal(&w, Some(&b), d).unwrap()))
    });
    group.bench_with_input(BenchmarkId::new("forward", "naive"), &d, |bch, _| {
        bch.iter(|| std::hint::black_box(x.conv1d_causal_naive(&w, Some(&b), d).unwrap()))
    });
    group.bench_with_input(BenchmarkId::new("grad_input", "fast"), &d, |bch, _| {
        bch.iter(|| {
            std::hint::black_box(Tensor::conv1d_causal_grad_input(&g, &w, &x_dims, d).unwrap())
        })
    });
    group.bench_with_input(BenchmarkId::new("grad_input", "naive"), &d, |bch, _| {
        bch.iter(|| {
            std::hint::black_box(
                Tensor::conv1d_causal_grad_input_naive(&g, &w, &x_dims, d).unwrap(),
            )
        })
    });
    group.bench_with_input(BenchmarkId::new("grad_weight", "fast"), &d, |bch, _| {
        bch.iter(|| std::hint::black_box(Tensor::conv1d_causal_grad_weight(&x, &g, k, d).unwrap()))
    });
    group.bench_with_input(BenchmarkId::new("grad_weight", "naive"), &d, |bch, _| {
        bch.iter(|| {
            std::hint::black_box(Tensor::conv1d_causal_grad_weight_naive(&x, &g, k, d).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_conv_kernels);
criterion_main!(benches);
