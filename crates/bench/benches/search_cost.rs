//! Fig. 5 bench: per-step cost of the three training regimes compared in the
//! paper — a PIT search step (masked dense convolutions + γ + regulariser), a
//! ProxylessNAS step (one sampled path + architecture update) and a plain
//! training step of the deployed (dilated) network.

use criterion::{criterion_group, criterion_main, Criterion};
use pit_baselines::{ProxylessConfig, ProxylessSupernet};
use pit_bench::experiments::{build_benchmark, build_network, pit_config, temponet_config};
use pit_bench::{ExperimentScale, SeedKind};
use pit_models::TempoNet;
use pit_nas::{SearchableNetwork, SizeRegularizer};
use pit_nn::{Adam, Layer, LossKind, Mode, Optimizer, Trainer};
use pit_tensor::Tape;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_search_cost(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let bench_data = build_benchmark(SeedKind::TempoNet, &scale);
    let batch = bench_data
        .train
        .gather(&(0..scale.batch_size.min(bench_data.train.len())).collect::<Vec<_>>());

    let mut group = c.benchmark_group("fig5_step_cost");
    group.sample_size(20);

    // PIT: masked dense forward + task loss + size regulariser + backward.
    let net = build_network(SeedKind::TempoNet, &scale, 0);
    let pit_cfg = pit_config(&scale, 1e-4, 0);
    let regularizer = SizeRegularizer::new(pit_cfg.lambda);
    let mut pit_opt = Adam::new(net.params(), pit_cfg.learning_rate);
    group.bench_function("pit_search_step", |b| {
        b.iter(|| {
            pit_opt.zero_grad();
            let mut tape = Tape::new();
            let x = tape.constant(batch.inputs.clone());
            let pred = net.forward(&mut tape, x, Mode::Train);
            let task = LossKind::Mae.apply(&mut tape, pred, &batch.targets);
            let reg = regularizer.term(&mut tape, &net.pit_layers());
            let total = tape.add(task, reg);
            tape.backward(total);
            pit_opt.step();
        })
    });

    // ProxylessNAS: one sampled-path weight update.
    let mut rng = StdRng::seed_from_u64(1);
    let proxy_cfg = ProxylessConfig {
        batch_size: scale.batch_size,
        ..ProxylessConfig::temponet_like(&temponet_config(&scale))
    };
    let supernet = ProxylessSupernet::new(&mut rng, &proxy_cfg);
    let mut proxy_opt = Adam::new(supernet.all_params(), proxy_cfg.learning_rate);
    group.bench_function("proxyless_path_step", |b| {
        b.iter(|| {
            let path = supernet.sample_path(&mut rng);
            proxy_opt.zero_grad();
            let mut tape = Tape::new();
            let x = tape.constant(batch.inputs.clone());
            let pred = supernet.forward_path(&mut tape, x, &path, Mode::Train);
            let l = LossKind::Mae.apply(&mut tape, pred, &batch.targets);
            tape.backward(l);
            proxy_opt.step();
        })
    });

    // Plain training of the deployed (hand-tuned, truly dilated) network.
    let cfg = temponet_config(&scale);
    let mut rng2 = StdRng::seed_from_u64(2);
    let concrete = TempoNet::concrete(&mut rng2, &cfg, &cfg.hand_tuned_dilations());
    let mut plain_opt = Adam::new(concrete.params(), scale.learning_rate);
    group.bench_function("plain_training_step", |b| {
        b.iter(|| {
            std::hint::black_box(Trainer::train_step(
                &concrete,
                &batch,
                LossKind::Mae,
                &mut plain_opt,
            ));
        })
    });

    group.finish();
}

criterion_group!(benches, bench_search_cost);
criterion_main!(benches);
