//! Property tests for `pit_hw::quant`: round-trip error bounds, degenerate
//! tensors, per-channel vs per-tensor scale dominance and idempotence of
//! `quantize ∘ dequantize ∘ quantize`. Failures shrink to minimal
//! counterexamples through the vendored proptest's halving shrinker.

use pit_hw::quant::{
    quantize_per_channel, quantize_symmetric, quantize_value, symmetric_scale, MaxAbsObserver,
};
use pit_tensor::Tensor;
use proptest::prelude::*;

fn tensor_1d(values: Vec<f32>) -> Tensor {
    let n = values.len();
    Tensor::from_vec(values, &[n]).unwrap()
}

/// Builds a `[channels, cl]` tensor from a flat value vector (truncating to
/// a whole number of rows; at least one row is always kept).
fn tensor_2d(mut values: Vec<f32>, channels: usize) -> Tensor {
    let channels = channels.clamp(1, values.len().max(1));
    let cl = (values.len() / channels).max(1);
    values.truncate(channels * cl);
    while values.len() < channels * cl {
        values.push(0.0);
    }
    Tensor::from_vec(values, &[channels, cl]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Per-tensor round trip: every element comes back within half a
    /// quantization step.
    #[test]
    fn per_tensor_roundtrip_error_is_at_most_half_a_step(
        values in proptest::collection::vec(-40.0f32..40.0, 1..48),
    ) {
        let t = tensor_1d(values);
        let q = quantize_symmetric(&t);
        let back = q.dequantize();
        let half = q.scale / 2.0 + 1e-6;
        for (i, (&a, &b)) in t.data().iter().zip(back.data().iter()).enumerate() {
            prop_assert!(
                (a - b).abs() <= half,
                "element {}: {} -> {} exceeds half-step {}", i, a, b, half
            );
        }
    }

    /// Per-channel round trip: each channel honours its own half-step bound.
    #[test]
    fn per_channel_roundtrip_error_is_at_most_half_a_channel_step(
        values in proptest::collection::vec(-40.0f32..40.0, 1..48),
        channels in 1usize..6,
    ) {
        let t = tensor_2d(values, channels);
        let q = quantize_per_channel(&t);
        let back = q.dequantize();
        let cl = q.channel_len();
        for (i, (&a, &b)) in t.data().iter().zip(back.data().iter()).enumerate() {
            let half = q.scales[i / cl] / 2.0 + 1e-6;
            prop_assert!(
                (a - b).abs() <= half,
                "element {}: {} -> {} exceeds channel half-step {}", i, a, b, half
            );
        }
    }

    /// Per-channel scales never exceed the per-tensor scale, so the
    /// per-channel error bound dominates: per-channel reconstruction is
    /// always within the per-*tensor* half-step too.
    #[test]
    fn per_channel_scales_are_dominated_by_the_per_tensor_scale(
        values in proptest::collection::vec(-40.0f32..40.0, 1..48),
        channels in 1usize..6,
    ) {
        let t = tensor_2d(values, channels);
        let per_tensor = quantize_symmetric(&t);
        let per_channel = quantize_per_channel(&t);
        for (c, &s) in per_channel.scales.iter().enumerate() {
            prop_assert!(
                s <= per_tensor.scale + 1e-9,
                "channel {} scale {} exceeds tensor scale {}", c, s, per_tensor.scale
            );
        }
        let back = per_channel.dequantize();
        let half = per_tensor.scale / 2.0 + 1e-6;
        for (&a, &b) in t.data().iter().zip(back.data().iter()) {
            prop_assert!((a - b).abs() <= half, "{} -> {} vs tensor half-step {}", a, b, half);
        }
    }

    /// `quantize ∘ dequantize ∘ quantize = quantize`: the element with the
    /// largest magnitude maps to exactly ±127, so requantizing the
    /// dequantized tensor picks the same scale and the same codes.
    #[test]
    fn quantize_dequantize_quantize_is_idempotent(
        values in proptest::collection::vec(-40.0f32..40.0, 1..48),
        channels in 1usize..6,
    ) {
        let t = tensor_1d(values.clone());
        let q1 = quantize_symmetric(&t);
        let q2 = quantize_symmetric(&q1.dequantize());
        prop_assert_eq!(&q1, &q2);

        let t2 = tensor_2d(values, channels);
        let c1 = quantize_per_channel(&t2);
        let c2 = quantize_per_channel(&c1.dequantize());
        prop_assert_eq!(&c1, &c2);
    }

    /// The observer scale covers everything it saw: quantizing any observed
    /// value with the calibrated scale keeps the half-step error bound
    /// (nothing saturates).
    #[test]
    fn observer_scale_covers_observed_activations(
        values in proptest::collection::vec(-40.0f32..40.0, 1..48),
    ) {
        let mut obs = MaxAbsObserver::new();
        obs.observe_slice(&values);
        let scale = obs.scale();
        prop_assert_eq!(scale, symmetric_scale(obs.max_abs()));
        for &v in &values {
            let back = f32::from(quantize_value(v, scale)) * scale;
            prop_assert!(
                (v - back).abs() <= scale / 2.0 + 1e-6,
                "{} -> {} with scale {}", v, back, scale
            );
        }
    }
}

#[test]
fn all_zero_tensor_quantizes_exactly_per_channel() {
    let t = Tensor::zeros(&[3, 5]);
    let q = quantize_per_channel(&t);
    assert!(q.data.iter().all(|&v| v == 0));
    assert!(q.scales.iter().all(|&s| s == 1.0));
    assert!(q.dequantize().approx_eq(&t, 0.0));
    assert_eq!(q.channels(), 3);
    assert_eq!(q.channel_len(), 5);
    assert_eq!(q.size_bytes(), 15);
}

#[test]
fn single_extreme_element_saturates_only_its_own_channel() {
    // One huge outlier in channel 0 must not crush channel 1's resolution.
    let t = Tensor::from_vec(vec![1000.0, 0.0, 0.01, -0.02], &[2, 2]).unwrap();
    let q = quantize_per_channel(&t);
    assert_eq!(q.data[0], 127);
    assert!((q.scales[0] - 1000.0 / 127.0).abs() < 1e-4);
    // Channel 1 keeps its own fine scale: both small values survive.
    let back = q.dequantize();
    assert!((back.data()[2] - 0.01).abs() <= q.scales[1] / 2.0 + 1e-9);
    assert!((back.data()[3] + 0.02).abs() <= q.scales[1] / 2.0 + 1e-9);
    assert!(q.scales[1] < 1e-3, "outlier leaked into channel 1's scale");
    // The per-tensor quantization, by contrast, flattens channel 1 to zero.
    let pt = quantize_symmetric(&t);
    assert_eq!(&pt.data[2..], &[0, 0]);
}

#[test]
fn observer_starts_empty_and_tracks_the_running_max() {
    let mut obs = MaxAbsObserver::new();
    assert_eq!(obs.max_abs(), 0.0);
    assert_eq!(obs.scale(), 1.0); // all-zero range: exact zero round trip
    obs.observe(&Tensor::from_vec(vec![0.5, -2.0], &[2]).unwrap());
    obs.observe_slice(&[1.0]);
    assert_eq!(obs.max_abs(), 2.0);
    assert!((obs.scale() - 2.0 / 127.0).abs() < 1e-9);
}
