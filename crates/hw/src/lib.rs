//! # pit-hw
//!
//! An analytical model of the deployment target used in the paper: the
//! GreenWaves GAP8 system-on-chip (one I/O core plus an 8-core RISC-V
//! cluster, 64 kB L1 scratchpad, 512 kB L2, DMA transfers, 100 MHz clock),
//! programmed through an NN-Tool-like flow that runs int8-quantized networks.
//!
//! The physical chip is obviously not available inside this reproduction, so
//! the crate substitutes an analytical simulator with three parts:
//!
//! * [`quant`] — symmetric int8 post-training quantization of weights and
//!   activations (value round-trip, error statistics, model size in bytes);
//! * [`gap8`] — the SoC description: cores, clock, memory sizes, DMA
//!   bandwidth, per-layer compute-efficiency model and power figures,
//!   calibrated so that the seed TEMPONet / ResTCN land near the latency and
//!   energy values of Table III;
//! * [`deploy`] — the deployment analysis: takes a
//!   [`pit_models::NetworkDescriptor`], tiles every layer into L1, overlaps
//!   DMA with compute (double buffering) and reports per-layer and end-to-end
//!   latency, energy and memory footprint.
//!
//! Absolute numbers are model outputs, not silicon measurements; what the
//! simulator preserves is the *relative* ordering and the rough speed-up /
//! compression factors between the architectures of Table III, because every
//! network goes through the same cost model.

pub mod deploy;
pub mod gap8;
pub mod quant;

pub use deploy::{Deployment, DeploymentReport, LayerCost};
pub use gap8::Gap8Config;
pub use quant::{
    quantization_mse, quantize_per_channel, quantize_symmetric, ChannelQuantized, MaxAbsObserver,
    QuantizedTensor,
};
