//! Deployment analysis: latency, energy and memory of a network on GAP8.

use crate::gap8::Gap8Config;
use pit_models::{LayerDesc, NetworkDescriptor};
use serde::{Deserialize, Serialize};

/// Cost breakdown of one layer on the target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Multiply-accumulate operations.
    pub macs: u64,
    /// Weight bytes (int8) that must be streamed into L1.
    pub weight_bytes: u64,
    /// Activation bytes (input + output, int8) moved for the layer.
    pub activation_bytes: u64,
    /// Number of L1 tiles the layer is split into.
    pub tiles: u64,
    /// Cycles spent computing (at the layer's efficiency).
    pub compute_cycles: f64,
    /// Cycles spent on DMA transfers.
    pub dma_cycles: f64,
    /// Total cycles charged to the layer (double-buffered: max of compute and
    /// DMA, plus the fixed per-layer overhead).
    pub total_cycles: f64,
    /// Latency in seconds.
    pub latency_s: f64,
    /// Energy in joules.
    pub energy_j: f64,
}

/// End-to-end deployment report for one network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentReport {
    /// Network name (copied from the descriptor).
    pub name: String,
    /// Per-layer costs, in network order.
    pub layers: Vec<LayerCost>,
    /// Total number of weights (elements).
    pub total_weights: u64,
    /// Total weight storage in bytes after int8 quantization.
    pub weight_bytes: u64,
    /// End-to-end latency in milliseconds.
    pub latency_ms: f64,
    /// End-to-end energy in millijoules.
    pub energy_mj: f64,
    /// Whether the quantized weights fit in the 512 kB L2 memory
    /// (otherwise the off-chip L3 must be used, as for the largest ResTCN).
    pub fits_in_l2: bool,
}

impl DeploymentReport {
    /// Total multiply-accumulate count of one inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }
}

/// Analytical deployment of a network descriptor onto a [`Gap8Config`].
#[derive(Debug, Clone, Default)]
pub struct Deployment {
    config: Gap8Config,
}

impl Deployment {
    /// Creates a deployment analyser for the given SoC configuration.
    pub fn new(config: Gap8Config) -> Self {
        Self { config }
    }

    /// The SoC configuration.
    pub fn config(&self) -> &Gap8Config {
        &self.config
    }

    /// Analyses one layer.
    pub fn layer_cost(&self, layer: &LayerDesc) -> LayerCost {
        let cfg = &self.config;
        let macs = layer.macs();
        let weight_bytes = layer.weights(); // int8: one byte per weight
        let activation_bytes = layer.input_elements() + layer.output_elements();

        // Tile the working set (weights + activations of the tile) into L1.
        // Half of L1 is reserved for double buffering.
        let l1_budget = (cfg.l1_bytes / 2) as u64;
        let working_set = weight_bytes + activation_bytes;
        let tiles = working_set.div_ceil(l1_budget.max(1)).max(1);

        let efficiency = cfg.layer_efficiency(layer).max(1e-3);
        let compute_cycles = macs as f64 / (cfg.peak_macs_per_cycle() * efficiency);
        // Every tile moves its share of weights and activations through DMA;
        // weights are re-loaded once per tile when activations do not fit.
        let dma_bytes = activation_bytes as f64 + weight_bytes as f64 * tiles as f64;
        let dma_cycles = dma_bytes / cfg.dma_bytes_per_cycle;
        let total_cycles = compute_cycles.max(dma_cycles) + cfg.layer_overhead_cycles;
        let latency_s = cfg.cycles_to_seconds(total_cycles);
        LayerCost {
            macs,
            weight_bytes,
            activation_bytes,
            tiles,
            compute_cycles,
            dma_cycles,
            total_cycles,
            latency_s,
            energy_j: cfg.energy_joules(latency_s),
        }
    }

    /// Analyses a whole network.
    pub fn analyze(&self, descriptor: &NetworkDescriptor) -> DeploymentReport {
        let layers: Vec<LayerCost> = descriptor
            .layers
            .iter()
            .map(|l| self.layer_cost(l))
            .collect();
        let latency_s: f64 = layers.iter().map(|l| l.latency_s).sum();
        let energy_j: f64 = layers.iter().map(|l| l.energy_j).sum();
        let weight_bytes: u64 = layers.iter().map(|l| l.weight_bytes).sum();
        DeploymentReport {
            name: descriptor.name.clone(),
            total_weights: descriptor.total_weights(),
            weight_bytes,
            latency_ms: latency_s * 1e3,
            energy_mj: energy_j * 1e3,
            fits_in_l2: weight_bytes <= self.config.l2_bytes as u64,
            layers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_models::{TempoNet, TempoNetConfig};
    use pit_nas::SearchableNetwork;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn conv(c_in: usize, c_out: usize, kernel: usize, t: usize) -> LayerDesc {
        LayerDesc::Conv1d {
            c_in,
            c_out,
            kernel,
            dilation: 1,
            t_in: t,
            t_out: t,
        }
    }

    #[test]
    fn layer_cost_scales_with_macs() {
        let dep = Deployment::new(Gap8Config::paper());
        let small = dep.layer_cost(&conv(16, 16, 3, 64));
        let large = dep.layer_cost(&conv(64, 64, 9, 64));
        assert!(large.macs > small.macs);
        assert!(large.latency_s > small.latency_s);
        assert!(large.energy_j > small.energy_j);
    }

    #[test]
    fn latency_has_a_floor_from_overhead_and_dma() {
        // Pruning weights 4x must NOT reduce latency 4x: activations and the
        // per-layer overhead do not shrink. This is why Table III's speed-ups
        // (3x) are smaller than its compression factors (7.4x).
        let dep = Deployment::new(Gap8Config::paper());
        let dense = dep.layer_cost(&conv(64, 64, 16, 256));
        let pruned = dep.layer_cost(&conv(64, 64, 4, 256));
        let macs_ratio = dense.macs as f64 / pruned.macs as f64;
        let latency_ratio = dense.latency_s / pruned.latency_s;
        assert!((macs_ratio - 4.0).abs() < 1e-9);
        assert!(
            latency_ratio < macs_ratio,
            "latency ratio {latency_ratio} should be sub-linear"
        );
        assert!(latency_ratio > 1.0);
    }

    #[test]
    fn analyze_sums_layers_and_checks_l2() {
        let mut d = NetworkDescriptor::new("toy");
        d.push(conv(4, 16, 5, 128));
        d.push(LayerDesc::Linear {
            in_features: 16 * 128,
            out_features: 1,
        });
        let dep = Deployment::new(Gap8Config::paper());
        let report = dep.analyze(&d);
        assert_eq!(report.layers.len(), 2);
        assert!(report.latency_ms > 0.0);
        assert!((report.energy_mj / report.latency_ms - 0.262).abs() < 1e-3);
        assert!(report.fits_in_l2);
        assert_eq!(report.total_macs(), d.total_macs());
        assert_eq!(report.name, "toy");
    }

    #[test]
    fn big_networks_overflow_l2() {
        let mut d = NetworkDescriptor::new("huge");
        d.push(LayerDesc::Linear {
            in_features: 1024,
            out_features: 1024,
        }); // ~1 MB of int8 weights
        let report = Deployment::new(Gap8Config::paper()).analyze(&d);
        assert!(!report.fits_in_l2);
    }

    #[test]
    fn paper_scale_temponet_latency_is_in_the_right_range() {
        // Table III: TEMPONet dil=1 (939k weights) runs in 112.6 ms / 29.5 mJ.
        // The analytical model should land within a factor ~2 of that without
        // per-network tuning, and the hand-tuned (dilated) network must be
        // substantially faster.
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = TempoNetConfig::paper();
        let net = TempoNet::new(&mut rng, &cfg);
        let dep = Deployment::new(Gap8Config::paper());
        let seed_report = dep.analyze(&net.descriptor());
        assert!(
            (50.0..250.0).contains(&seed_report.latency_ms),
            "seed latency {} ms",
            seed_report.latency_ms
        );
        net.set_dilations(&cfg.hand_tuned_dilations());
        let hand_report = dep.analyze(&net.descriptor());
        let speedup = seed_report.latency_ms / hand_report.latency_ms;
        assert!(speedup > 1.3, "speed-up {speedup}");
        assert!(hand_report.weight_bytes < seed_report.weight_bytes);
    }

    #[test]
    fn tiles_grow_with_working_set() {
        let dep = Deployment::new(Gap8Config::paper());
        let small = dep.layer_cost(&conv(8, 8, 3, 32));
        let large = dep.layer_cost(&conv(128, 128, 17, 256));
        assert_eq!(small.tiles, 1);
        assert!(large.tiles > 1);
    }
}
