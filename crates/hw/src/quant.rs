//! Symmetric int8 post-training quantization: per-tensor
//! ([`quantize_symmetric`]), per-channel ([`quantize_per_channel`]) and the
//! max-abs activation calibration ([`MaxAbsObserver`]) the int8 serving path
//! of `pit-infer` quantizes its layer seams with.

use pit_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// The symmetric scale mapping `[-max_abs, max_abs]` onto `[-127, 127]`
/// (1.0 for an all-zero range, so zeros round-trip exactly).
pub fn symmetric_scale(max_abs: f32) -> f32 {
    if max_abs > 0.0 {
        max_abs / 127.0
    } else {
        1.0
    }
}

/// Quantizes one value: `round(v / scale)` (ties to even) clamped to
/// `[-127, 127]`.
///
/// For `|v| ≤ 127 · scale` the absolute round-trip error is at most
/// `scale / 2`; beyond that range the value saturates.
#[inline]
pub fn quantize_value(v: f32, scale: f32) -> i8 {
    (v / scale).round_ties_even().clamp(-127.0, 127.0) as i8
}

/// Hot-path form of [`quantize_value`] taking the *reciprocal* scale, so a
/// streaming seam pays one multiply per element instead of a divide. The
/// rounded result can differ from the divide form by one code in rare
/// borderline cases (`v · (1/s)` vs `v / s` differ by an ulp), which stays
/// within the `scale/2 (+ ulp)` error bound either way.
#[inline]
pub fn quantize_value_inv(v: f32, inv_scale: f32) -> i8 {
    (v * inv_scale).round_ties_even().clamp(-127.0, 127.0) as i8
}

/// Quantizes a slice into `out` with one shared scale (the activation-seam
/// primitive of the int8 path — allocation free). Quantizes
/// `min(xs.len(), out.len())` elements; any excess on either side is left
/// untouched.
pub fn quantize_slice(xs: &[f32], scale: f32, out: &mut [i8]) {
    for (o, &v) in out.iter_mut().zip(xs.iter()) {
        *o = quantize_value(v, scale);
    }
}

/// An int8-quantized tensor with its (symmetric, per-tensor) scale.
///
/// Values are reconstructed as `value ≈ scale * q` with `q ∈ [−127, 127]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    /// Quantized values.
    pub data: Vec<i8>,
    /// Original tensor shape.
    pub shape: Vec<usize>,
    /// Dequantization scale.
    pub scale: f32,
}

impl QuantizedTensor {
    /// Number of quantized elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Storage size in bytes (one byte per element).
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }

    /// Reconstructs the floating-point tensor.
    pub fn dequantize(&self) -> Tensor {
        let data: Vec<f32> = self.data.iter().map(|&q| q as f32 * self.scale).collect();
        Tensor::from_vec(data, &self.shape).expect("shape preserved by quantization")
    }
}

/// Quantizes a tensor to int8 with a symmetric per-tensor scale
/// (`scale = max(|x|) / 127`).
///
/// An all-zero tensor quantizes to all zeros with scale 1.
pub fn quantize_symmetric(t: &Tensor) -> QuantizedTensor {
    let scale = symmetric_scale(t.abs().max_all());
    let data: Vec<i8> = t.data().iter().map(|&v| quantize_value(v, scale)).collect();
    QuantizedTensor {
        data,
        shape: t.dims().to_vec(),
        scale,
    }
}

/// An int8 tensor quantized with one symmetric scale per leading-dimension
/// slice (per output channel for a `[C_out, ...]` weight tensor).
///
/// Per-channel scales track each channel's own dynamic range, so a channel
/// of small weights is not crushed onto a handful of integer levels by one
/// outlier channel — the round-trip error of channel `c` is bounded by
/// `scales[c] / 2` per element, which is never worse (and usually much
/// better) than the per-tensor bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelQuantized {
    /// Quantized values, same layout as the source tensor.
    pub data: Vec<i8>,
    /// Original tensor shape (`shape[0]` is the channel dimension).
    pub shape: Vec<usize>,
    /// One dequantization scale per channel (`shape[0]` entries).
    pub scales: Vec<f32>,
}

impl ChannelQuantized {
    /// Number of channels (leading-dimension slices).
    pub fn channels(&self) -> usize {
        self.scales.len()
    }

    /// Elements per channel slice.
    pub fn channel_len(&self) -> usize {
        if self.scales.is_empty() {
            0
        } else {
            self.data.len() / self.scales.len()
        }
    }

    /// Storage size in bytes (one byte per element; scales not counted).
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }

    /// Reconstructs the floating-point tensor, channel by channel.
    pub fn dequantize(&self) -> Tensor {
        let cl = self.channel_len();
        let data: Vec<f32> = self
            .data
            .iter()
            .enumerate()
            .map(|(i, &q)| f32::from(q) * self.scales[i / cl.max(1)])
            .collect();
        Tensor::from_vec(data, &self.shape).expect("shape preserved by quantization")
    }
}

/// Quantizes a tensor to int8 with a symmetric scale per leading-dimension
/// slice (`scale[c] = max(|x[c, ...]|) / 127`; all-zero channels get scale
/// 1 so they round-trip exactly).
///
/// # Panics
///
/// Panics if `t` has rank 0.
pub fn quantize_per_channel(t: &Tensor) -> ChannelQuantized {
    assert!(
        !t.dims().is_empty(),
        "per-channel needs a channel dimension"
    );
    let channels = t.dims()[0];
    let cl = t.len().checked_div(channels).unwrap_or(0);
    let mut scales = Vec::with_capacity(channels);
    let mut data = vec![0i8; t.len()];
    for c in 0..channels {
        let row = &t.data()[c * cl..(c + 1) * cl];
        let max_abs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = symmetric_scale(max_abs);
        scales.push(scale);
        quantize_slice(row, scale, &mut data[c * cl..(c + 1) * cl]);
    }
    ChannelQuantized {
        data,
        shape: t.dims().to_vec(),
        scales,
    }
}

/// Running max-abs activation observer: the calibration primitive for int8
/// activation scales. Feed it every tensor that crosses a quantization seam
/// during a calibration run; [`MaxAbsObserver::scale`] then maps the
/// observed range onto `[-127, 127]`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MaxAbsObserver {
    max_abs: f32,
}

impl MaxAbsObserver {
    /// A fresh observer (empty range).
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds a slice of activations into the running range.
    pub fn observe_slice(&mut self, xs: &[f32]) {
        for &v in xs {
            let a = v.abs();
            if a > self.max_abs {
                self.max_abs = a;
            }
        }
    }

    /// Folds a whole tensor into the running range.
    pub fn observe(&mut self, t: &Tensor) {
        self.observe_slice(t.data());
    }

    /// Largest absolute activation seen so far.
    pub fn max_abs(&self) -> f32 {
        self.max_abs
    }

    /// The symmetric int8 scale for the observed range (1.0 when nothing —
    /// or only zeros — was observed).
    pub fn scale(&self) -> f32 {
        symmetric_scale(self.max_abs)
    }
}

/// Mean squared error introduced by symmetric int8 quantization of `t`.
pub fn quantization_mse(t: &Tensor) -> f32 {
    let q = quantize_symmetric(t);
    let back = q.dequantize();
    if t.is_empty() {
        return 0.0;
    }
    t.data()
        .iter()
        .zip(back.data().iter())
        .map(|(&a, &b)| (a - b) * (a - b))
        .sum::<f32>()
        / t.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_error_is_bounded_by_half_step() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = init::uniform(&mut rng, &[256], 3.0);
        let q = quantize_symmetric(&t);
        let back = q.dequantize();
        let half_step = q.scale / 2.0 + 1e-6;
        assert!(
            t.max_abs_diff(&back) <= half_step,
            "max error {} > {}",
            t.max_abs_diff(&back),
            half_step
        );
    }

    #[test]
    fn extreme_values_map_to_127() {
        let t = Tensor::from_vec(vec![-2.0, 0.0, 2.0], &[3]).unwrap();
        let q = quantize_symmetric(&t);
        assert_eq!(q.data, vec![-127, 0, 127]);
        assert_eq!(q.size_bytes(), 3);
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
    }

    #[test]
    fn zero_tensor_is_stable() {
        let t = Tensor::zeros(&[8]);
        let q = quantize_symmetric(&t);
        assert!(q.data.iter().all(|&v| v == 0));
        assert_eq!(q.scale, 1.0);
        assert!(q.dequantize().approx_eq(&t, 0.0));
        assert_eq!(quantization_mse(&t), 0.0);
    }

    #[test]
    fn mse_is_small_relative_to_signal() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = init::normal(&mut rng, &[1024], 1.0);
        let signal_power = t.data().iter().map(|&v| v * v).sum::<f32>() / t.len() as f32;
        let noise = quantization_mse(&t);
        // int8 SQNR should comfortably exceed 30 dB for a well-scaled tensor.
        assert!(
            noise < signal_power / 1000.0,
            "noise {noise} vs signal {signal_power}"
        );
    }

    #[test]
    fn shape_is_preserved() {
        let t = Tensor::zeros(&[2, 3, 4]);
        let q = quantize_symmetric(&t);
        assert_eq!(q.dequantize().dims(), &[2, 3, 4]);
    }
}
