//! Symmetric int8 post-training quantization.

use pit_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// An int8-quantized tensor with its (symmetric, per-tensor) scale.
///
/// Values are reconstructed as `value ≈ scale * q` with `q ∈ [−127, 127]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    /// Quantized values.
    pub data: Vec<i8>,
    /// Original tensor shape.
    pub shape: Vec<usize>,
    /// Dequantization scale.
    pub scale: f32,
}

impl QuantizedTensor {
    /// Number of quantized elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Storage size in bytes (one byte per element).
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }

    /// Reconstructs the floating-point tensor.
    pub fn dequantize(&self) -> Tensor {
        let data: Vec<f32> = self.data.iter().map(|&q| q as f32 * self.scale).collect();
        Tensor::from_vec(data, &self.shape).expect("shape preserved by quantization")
    }
}

/// Quantizes a tensor to int8 with a symmetric per-tensor scale
/// (`scale = max(|x|) / 127`).
///
/// An all-zero tensor quantizes to all zeros with scale 1.
pub fn quantize_symmetric(t: &Tensor) -> QuantizedTensor {
    let max_abs = t.abs().max_all();
    let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
    let data: Vec<i8> = t
        .data()
        .iter()
        .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
        .collect();
    QuantizedTensor {
        data,
        shape: t.dims().to_vec(),
        scale,
    }
}

/// Mean squared error introduced by symmetric int8 quantization of `t`.
pub fn quantization_mse(t: &Tensor) -> f32 {
    let q = quantize_symmetric(t);
    let back = q.dequantize();
    if t.is_empty() {
        return 0.0;
    }
    t.data()
        .iter()
        .zip(back.data().iter())
        .map(|(&a, &b)| (a - b) * (a - b))
        .sum::<f32>()
        / t.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_error_is_bounded_by_half_step() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = init::uniform(&mut rng, &[256], 3.0);
        let q = quantize_symmetric(&t);
        let back = q.dequantize();
        let half_step = q.scale / 2.0 + 1e-6;
        assert!(
            t.max_abs_diff(&back) <= half_step,
            "max error {} > {}",
            t.max_abs_diff(&back),
            half_step
        );
    }

    #[test]
    fn extreme_values_map_to_127() {
        let t = Tensor::from_vec(vec![-2.0, 0.0, 2.0], &[3]).unwrap();
        let q = quantize_symmetric(&t);
        assert_eq!(q.data, vec![-127, 0, 127]);
        assert_eq!(q.size_bytes(), 3);
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
    }

    #[test]
    fn zero_tensor_is_stable() {
        let t = Tensor::zeros(&[8]);
        let q = quantize_symmetric(&t);
        assert!(q.data.iter().all(|&v| v == 0));
        assert_eq!(q.scale, 1.0);
        assert!(q.dequantize().approx_eq(&t, 0.0));
        assert_eq!(quantization_mse(&t), 0.0);
    }

    #[test]
    fn mse_is_small_relative_to_signal() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = init::normal(&mut rng, &[1024], 1.0);
        let signal_power = t.data().iter().map(|&v| v * v).sum::<f32>() / t.len() as f32;
        let noise = quantization_mse(&t);
        // int8 SQNR should comfortably exceed 30 dB for a well-scaled tensor.
        assert!(
            noise < signal_power / 1000.0,
            "noise {noise} vs signal {signal_power}"
        );
    }

    #[test]
    fn shape_is_preserved() {
        let t = Tensor::zeros(&[2, 3, 4]);
        let q = quantize_symmetric(&t);
        assert_eq!(q.dequantize().dims(), &[2, 3, 4]);
    }
}
