//! The GAP8 SoC description and per-layer efficiency model.

use pit_models::LayerDesc;
use serde::{Deserialize, Serialize};

/// Static description of the GAP8 system-on-chip as deployed in the paper
/// (8-core cluster at 100 MHz, 64 kB L1, 512 kB L2) plus the empirical
/// efficiency and power parameters of the analytical cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gap8Config {
    /// Number of cluster cores.
    pub cluster_cores: usize,
    /// Cluster clock frequency in Hz.
    pub frequency_hz: f64,
    /// L1 scratchpad size in bytes.
    pub l1_bytes: usize,
    /// L2 memory size in bytes.
    pub l2_bytes: usize,
    /// DMA bandwidth between L2 and L1 in bytes per cycle.
    pub dma_bytes_per_cycle: f64,
    /// Peak multiply-accumulate throughput per core per cycle (int8 SIMD).
    pub macs_per_cycle_per_core: f64,
    /// Maximum fraction of the peak throughput a large, regular layer reaches
    /// (captures loop overheads of the PULP-NN style kernels).
    pub max_efficiency: f64,
    /// Kernel length at which a convolution reaches half of `max_efficiency`
    /// (shorter filters re-load data more often per MAC).
    pub kernel_half_efficiency: f64,
    /// Output-channel count at which a layer reaches half of
    /// `max_efficiency` (fewer channels leave cores idle).
    pub channel_half_efficiency: f64,
    /// Fixed per-layer overhead in cycles (kernel launch, tiling bookkeeping).
    pub layer_overhead_cycles: f64,
    /// Active power of the cluster while running, in watts.
    pub active_power_w: f64,
}

impl Gap8Config {
    /// The configuration used throughout the paper's Table III: 8 cores at
    /// 100 MHz, 64 kB L1 / 512 kB L2, with efficiency and power parameters
    /// calibrated so the seed networks land near the published latencies.
    pub fn paper() -> Self {
        Self {
            cluster_cores: 8,
            frequency_hz: 100.0e6,
            l1_bytes: 64 * 1024,
            l2_bytes: 512 * 1024,
            dma_bytes_per_cycle: 4.0,
            macs_per_cycle_per_core: 1.0,
            max_efficiency: 0.62,
            kernel_half_efficiency: 2.0,
            channel_half_efficiency: 4.0,
            layer_overhead_cycles: 12_000.0,
            active_power_w: 0.262,
        }
    }

    /// Peak MAC throughput of the whole cluster per cycle.
    pub fn peak_macs_per_cycle(&self) -> f64 {
        self.cluster_cores as f64 * self.macs_per_cycle_per_core
    }

    /// Compute efficiency (fraction of peak throughput) of one layer.
    ///
    /// Convolutions with longer kernels and more output channels amortise
    /// their inner-loop overheads better and get closer to
    /// `max_efficiency`; fully connected layers are memory-bound and run at a
    /// low fixed efficiency; pooling and normalisation are cheap element-wise
    /// passes.
    pub fn layer_efficiency(&self, layer: &LayerDesc) -> f64 {
        match layer {
            LayerDesc::Conv1d { kernel, c_out, .. } => {
                let k = *kernel as f64;
                let c = *c_out as f64;
                self.max_efficiency
                    * (k / (k + self.kernel_half_efficiency))
                    * (c / (c + self.channel_half_efficiency))
            }
            LayerDesc::Linear { .. } => 0.25 * self.max_efficiency,
            LayerDesc::AvgPool { .. } | LayerDesc::BatchNorm { .. } => 0.5 * self.max_efficiency,
        }
    }

    /// Converts a cycle count to seconds at the configured clock.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / self.frequency_hz
    }

    /// Energy in joules for a given latency in seconds.
    pub fn energy_joules(&self, latency_s: f64) -> f64 {
        latency_s * self.active_power_w
    }
}

impl Default for Gap8Config {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_values() {
        let cfg = Gap8Config::paper();
        assert_eq!(cfg.cluster_cores, 8);
        assert_eq!(cfg.l1_bytes, 65_536);
        assert_eq!(cfg.l2_bytes, 524_288);
        assert_eq!(cfg.peak_macs_per_cycle(), 8.0);
        assert!((cfg.cycles_to_seconds(100.0e6) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn longer_kernels_are_more_efficient() {
        let cfg = Gap8Config::paper();
        let short = LayerDesc::Conv1d {
            c_in: 64,
            c_out: 64,
            kernel: 2,
            dilation: 8,
            t_in: 64,
            t_out: 64,
        };
        let long = LayerDesc::Conv1d {
            c_in: 64,
            c_out: 64,
            kernel: 17,
            dilation: 1,
            t_in: 64,
            t_out: 64,
        };
        assert!(cfg.layer_efficiency(&long) > cfg.layer_efficiency(&short));
        assert!(cfg.layer_efficiency(&long) <= cfg.max_efficiency);
    }

    #[test]
    fn more_channels_are_more_efficient() {
        let cfg = Gap8Config::paper();
        let narrow = LayerDesc::Conv1d {
            c_in: 4,
            c_out: 2,
            kernel: 5,
            dilation: 1,
            t_in: 64,
            t_out: 64,
        };
        let wide = LayerDesc::Conv1d {
            c_in: 4,
            c_out: 128,
            kernel: 5,
            dilation: 1,
            t_in: 64,
            t_out: 64,
        };
        assert!(cfg.layer_efficiency(&wide) > cfg.layer_efficiency(&narrow));
    }

    #[test]
    fn linear_layers_are_memory_bound() {
        let cfg = Gap8Config::paper();
        let fc = LayerDesc::Linear {
            in_features: 4096,
            out_features: 64,
        };
        let conv = LayerDesc::Conv1d {
            c_in: 64,
            c_out: 64,
            kernel: 9,
            dilation: 1,
            t_in: 64,
            t_out: 64,
        };
        assert!(cfg.layer_efficiency(&fc) < cfg.layer_efficiency(&conv));
    }

    #[test]
    fn energy_scales_with_latency() {
        let cfg = Gap8Config::paper();
        assert!((cfg.energy_joules(0.1) - 0.0262).abs() < 1e-6);
        assert_eq!(cfg.energy_joules(0.0), 0.0);
    }
}
