//! # pit-nn
//!
//! Neural-network building blocks for the Pruning-In-Time (PIT)
//! reproduction: layers, losses, optimizers, a minimal data pipeline and a
//! training loop with early stopping.
//!
//! Everything is built on top of the [`pit_tensor`] autograd engine. The
//! central abstraction is the [`Layer`] trait: a layer maps an input
//! [`pit_tensor::Var`] to an output `Var` on a [`pit_tensor::Tape`] and
//! exposes its trainable [`pit_tensor::Param`]s.
//!
//! # Example
//!
//! ```
//! use pit_nn::{Layer, Mode, layers::{Linear, Relu, Sequential}};
//! use pit_tensor::{Tape, Tensor};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let model = Sequential::new(vec![
//!     Box::new(Linear::new(&mut rng, 4, 8)),
//!     Box::new(Relu),
//!     Box::new(Linear::new(&mut rng, 8, 1)),
//! ]);
//! let mut tape = Tape::new();
//! let x = tape.constant(Tensor::zeros(&[2, 4]));
//! let y = model.forward(&mut tape, x, Mode::Eval);
//! assert_eq!(tape.dims(y), vec![2, 1]);
//! ```

pub mod data;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod optim;
pub mod schedule;
pub mod train;

pub use data::{Batch, Dataset};
pub use layers::{Layer, Mode};
pub use loss::LossKind;
pub use optim::{Adam, Optimizer, Sgd};
pub use schedule::LrSchedule;
pub use train::{EarlyStopping, TrainConfig, TrainReport, Trainer};
