//! Causal dilated 1-D convolution layer.

use super::{Layer, Mode};
use pit_tensor::{init, Param, Tape, Var};
use rand::Rng;

/// A causal, dilated 1-D convolution over `[N, C_in, T]` activations.
///
/// This is the "fixed-dilation" convolution used by the seed and hand-tuned
/// baselines; the searchable counterpart lives in `pit-nas` as `PitConv1d`.
///
/// # Example
///
/// ```
/// use pit_nn::{Layer, Mode, layers::CausalConv1d};
/// use pit_tensor::{Tape, Tensor};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let conv = CausalConv1d::new(&mut rng, 3, 8, 5, 2);
/// let mut tape = Tape::new();
/// let x = tape.constant(Tensor::zeros(&[1, 3, 16]));
/// let y = conv.forward(&mut tape, x, Mode::Eval);
/// assert_eq!(tape.dims(y), vec![1, 8, 16]);
/// ```
pub struct CausalConv1d {
    weight: Param,
    bias: Option<Param>,
    in_channels: usize,
    out_channels: usize,
    kernel_size: usize,
    dilation: usize,
}

impl CausalConv1d {
    /// Creates a convolution with Kaiming-uniform initialised weights and a
    /// zero-initialised bias.
    ///
    /// # Panics
    ///
    /// Panics if any of the sizes or the dilation is zero.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        in_channels: usize,
        out_channels: usize,
        kernel_size: usize,
        dilation: usize,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0 && kernel_size > 0,
            "conv sizes must be positive"
        );
        assert!(dilation > 0, "dilation must be >= 1");
        let fan_in = in_channels * kernel_size;
        let weight = Param::new(
            init::kaiming_uniform(rng, &[out_channels, in_channels, kernel_size], fan_in),
            format!("conv{out_channels}x{in_channels}x{kernel_size}.weight"),
        );
        let bias = Param::new(
            pit_tensor::Tensor::zeros(&[out_channels]),
            format!("conv{out_channels}x{in_channels}x{kernel_size}.bias"),
        );
        Self {
            weight,
            bias: Some(bias),
            in_channels,
            out_channels,
            kernel_size,
            dilation,
        }
    }

    /// Creates a convolution without a bias term.
    pub fn new_without_bias<R: Rng + ?Sized>(
        rng: &mut R,
        in_channels: usize,
        out_channels: usize,
        kernel_size: usize,
        dilation: usize,
    ) -> Self {
        let mut conv = Self::new(rng, in_channels, out_channels, kernel_size, dilation);
        conv.bias = None;
        conv
    }

    /// The dilation factor currently used by the layer.
    pub fn dilation(&self) -> usize {
        self.dilation
    }

    /// The kernel size (number of taps).
    pub fn kernel_size(&self) -> usize {
        self.kernel_size
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Receptive field of the layer: `(K − 1) · d + 1` input samples.
    pub fn receptive_field(&self) -> usize {
        (self.kernel_size - 1) * self.dilation + 1
    }

    /// The weight parameter (`[C_out, C_in, K]`).
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// The bias parameter, if present.
    pub fn bias(&self) -> Option<&Param> {
        self.bias.as_ref()
    }
}

impl Layer for CausalConv1d {
    fn forward(&self, tape: &mut Tape, input: Var, _mode: Mode) -> Var {
        let w = tape.param(&self.weight);
        let b = self.bias.as_ref().map(|b| tape.param(b));
        tape.conv1d_causal(input, w, b, self.dilation)
    }

    fn params(&self) -> Vec<Param> {
        let mut p = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            p.push(b.clone());
        }
        p
    }

    fn describe(&self) -> String {
        format!(
            "CausalConv1d({}→{}, k={}, d={})",
            self.in_channels, self.out_channels, self.kernel_size, self.dilation
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_tensor::{Tape, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape_preserves_time() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = CausalConv1d::new(&mut rng, 2, 4, 3, 2);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[3, 2, 10]));
        let y = conv.forward(&mut tape, x, Mode::Train);
        assert_eq!(tape.dims(y), vec![3, 4, 10]);
    }

    #[test]
    fn parameter_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = CausalConv1d::new(&mut rng, 2, 4, 3, 1);
        assert_eq!(conv.num_weights(), 4 * 2 * 3 + 4);
        let no_bias = CausalConv1d::new_without_bias(&mut rng, 2, 4, 3, 1);
        assert_eq!(no_bias.num_weights(), 4 * 2 * 3);
    }

    #[test]
    fn receptive_field_formula() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = CausalConv1d::new(&mut rng, 1, 1, 9, 4);
        assert_eq!(conv.receptive_field(), 33);
        assert_eq!(conv.dilation(), 4);
        assert_eq!(conv.kernel_size(), 9);
    }

    #[test]
    fn causality_no_future_leakage() {
        // Changing a future input sample must not change past outputs.
        let mut rng = StdRng::seed_from_u64(1);
        let conv = CausalConv1d::new(&mut rng, 1, 1, 3, 2);
        let base = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[1, 1, 6]).unwrap();
        let mut modified = base.clone();
        modified.data_mut()[5] = 100.0; // change only the last time step

        let mut t1 = Tape::new();
        let x1 = t1.constant(base);
        let y1 = conv.forward(&mut t1, x1, Mode::Eval);
        let mut t2 = Tape::new();
        let x2 = t2.constant(modified);
        let y2 = conv.forward(&mut t2, x2, Mode::Eval);
        let a = t1.value(y1).data();
        let b = t2.value(y2).data();
        assert_eq!(
            &a[..5],
            &b[..5],
            "outputs before the modified sample must match"
        );
        assert_ne!(a[5], b[5]);
    }

    #[test]
    fn describe_mentions_dilation() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = CausalConv1d::new(&mut rng, 2, 4, 3, 8);
        assert!(conv.describe().contains("d=8"));
    }
}
