//! Sequential container for heterogeneous layer stacks.

use super::{Layer, Mode};
use pit_tensor::{Param, Tape, Var};

/// A stack of layers applied in order.
///
/// # Example
///
/// ```
/// use pit_nn::{Layer, Mode, layers::{Sequential, Relu}};
/// use pit_tensor::{Tape, Tensor};
///
/// let model = Sequential::new(vec![Box::new(Relu), Box::new(Relu)]);
/// let mut tape = Tape::new();
/// let x = tape.constant(Tensor::from_vec(vec![-1.0, 1.0], &[2]).unwrap());
/// let y = model.forward(&mut tape, x, Mode::Eval);
/// assert_eq!(tape.value(y).data(), &[0.0, 1.0]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a container from an ordered list of layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Creates an empty container.
    pub fn empty() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer to the end of the stack.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers in the stack.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` if the stack holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Iterates over the contained layers.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Layer> {
        self.layers.iter().map(|l| l.as_ref())
    }
}

impl Layer for Sequential {
    fn forward(&self, tape: &mut Tape, input: Var, mode: Mode) -> Var {
        let mut x = input;
        for layer in &self.layers {
            x = layer.forward(tape, x, mode);
        }
        x
    }

    fn params(&self) -> Vec<Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn describe(&self) -> String {
        let inner: Vec<String> = self.layers.iter().map(|l| l.describe()).collect();
        format!("Sequential[{}]", inner.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use pit_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chains_layers_in_order() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = Sequential::new(vec![
            Box::new(Linear::new(&mut rng, 4, 8)),
            Box::new(Relu),
            Box::new(Linear::new(&mut rng, 8, 2)),
        ]);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[3, 4]));
        let y = model.forward(&mut tape, x, Mode::Train);
        assert_eq!(tape.dims(y), vec![3, 2]);
        assert_eq!(model.len(), 3);
        assert_eq!(model.params().len(), 4);
        assert_eq!(model.num_weights(), 4 * 8 + 8 + 8 * 2 + 2);
    }

    #[test]
    fn push_extends_the_stack() {
        let mut model = Sequential::empty();
        assert!(model.is_empty());
        model.push(Box::new(Relu));
        assert_eq!(model.len(), 1);
        assert!(model.describe().contains("ReLU"));
    }
}
