//! Layer abstractions and the standard TCN building blocks.

mod activation;
mod batchnorm;
mod conv1d;
mod dropout;
mod linear;
mod pool;
mod sequential;

pub use activation::{Relu, Sigmoid, Tanh};
pub use batchnorm::BatchNorm1d;
pub use conv1d::CausalConv1d;
pub use dropout::Dropout;
pub use linear::Linear;
pub use pool::{AvgPool1d, GlobalAvgPool1d};
pub use sequential::Sequential;

use pit_tensor::{Param, Tape, Var};

/// Forward-pass mode: training (batch statistics, dropout active) or
/// evaluation (running statistics, dropout disabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training mode.
    Train,
    /// Inference / evaluation mode.
    Eval,
}

/// A differentiable module: maps an input node to an output node on a tape
/// and exposes its trainable parameters.
///
/// Layers are object safe so heterogeneous networks can be stored as
/// `Vec<Box<dyn Layer>>` (see [`Sequential`]).
pub trait Layer: Send + Sync {
    /// Runs the layer on `input`, recording operations on `tape`.
    fn forward(&self, tape: &mut Tape, input: Var, mode: Mode) -> Var;

    /// All trainable parameters of the layer (empty for stateless layers).
    fn params(&self) -> Vec<Param> {
        Vec::new()
    }

    /// Total number of scalar weights in the layer.
    fn num_weights(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Short human-readable description used in summaries.
    fn describe(&self) -> String {
        "layer".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_tensor::Tensor;

    struct Identity;
    impl Layer for Identity {
        fn forward(&self, _tape: &mut Tape, input: Var, _mode: Mode) -> Var {
            input
        }
    }

    #[test]
    fn default_trait_methods() {
        let l = Identity;
        assert!(l.params().is_empty());
        assert_eq!(l.num_weights(), 0);
        assert_eq!(l.describe(), "layer");
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[1]));
        let y = l.forward(&mut tape, x, Mode::Train);
        assert_eq!(x, y);
    }

    #[test]
    fn layer_is_object_safe() {
        let layers: Vec<Box<dyn Layer>> = vec![Box::new(Identity)];
        assert_eq!(layers.len(), 1);
    }
}
