//! Fully connected (dense) layer.

use super::{Layer, Mode};
use pit_tensor::{init, Param, Tape, Tensor, Var};
use rand::Rng;

/// A dense layer `y = x · W + b` over `[N, in_features]` activations.
///
/// The weight is stored as `[in_features, out_features]` so no transpose is
/// needed in the forward pass.
pub struct Linear {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Creates a dense layer with Xavier-uniform initialised weights.
    ///
    /// # Panics
    ///
    /// Panics if either feature count is zero.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, in_features: usize, out_features: usize) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "linear sizes must be positive"
        );
        let weight = Param::new(
            init::xavier_uniform(rng, &[in_features, out_features], in_features, out_features),
            format!("linear{in_features}x{out_features}.weight"),
        );
        let bias = Param::new(
            Tensor::zeros(&[out_features]),
            format!("linear{in_features}x{out_features}.bias"),
        );
        Self {
            weight,
            bias,
            in_features,
            out_features,
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight parameter (`[in_features, out_features]`).
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// The bias parameter (`[out_features]`).
    pub fn bias(&self) -> &Param {
        &self.bias
    }
}

impl Layer for Linear {
    fn forward(&self, tape: &mut Tape, input: Var, _mode: Mode) -> Var {
        let w = tape.param(&self.weight);
        let b = tape.param(&self.bias);
        let xw = tape.matmul(input, w);
        tape.add_bias_rows(xw, b)
    }

    fn params(&self) -> Vec<Param> {
        vec![self.weight.clone(), self.bias.clone()]
    }

    fn describe(&self) -> String {
        format!("Linear({}→{})", self.in_features, self.out_features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(&mut rng, 4, 3);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[5, 4]));
        let y = l.forward(&mut tape, x, Mode::Train);
        assert_eq!(tape.dims(y), vec![5, 3]);
        assert_eq!(l.num_weights(), 4 * 3 + 3);
        assert_eq!(l.in_features(), 4);
        assert_eq!(l.out_features(), 3);
    }

    #[test]
    fn zero_input_outputs_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(&mut rng, 2, 2);
        l.bias()
            .set_value(Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap());
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[1, 2]));
        let y = l.forward(&mut tape, x, Mode::Eval);
        assert_eq!(tape.value(y).data(), &[1.0, -1.0]);
    }

    #[test]
    fn gradient_flows_to_both_params() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(&mut rng, 3, 2);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2, 3]));
        let y = l.forward(&mut tape, x, Mode::Train);
        let loss = tape.sum(y);
        tape.backward(loss);
        assert!(l
            .weight()
            .grad()
            .data()
            .iter()
            .all(|&g| (g - 2.0).abs() < 1e-6));
        assert!(l
            .bias()
            .grad()
            .data()
            .iter()
            .all(|&g| (g - 2.0).abs() < 1e-6));
    }
}
