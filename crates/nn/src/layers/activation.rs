//! Stateless activation layers.

use super::{Layer, Mode};
use pit_tensor::{Tape, Var};

/// Rectified linear unit activation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Relu;

impl Layer for Relu {
    fn forward(&self, tape: &mut Tape, input: Var, _mode: Mode) -> Var {
        tape.relu(input)
    }

    fn describe(&self) -> String {
        "ReLU".to_string()
    }
}

/// Logistic sigmoid activation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sigmoid;

impl Layer for Sigmoid {
    fn forward(&self, tape: &mut Tape, input: Var, _mode: Mode) -> Var {
        tape.sigmoid(input)
    }

    fn describe(&self) -> String {
        "Sigmoid".to_string()
    }
}

/// Hyperbolic tangent activation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tanh;

impl Layer for Tanh {
    fn forward(&self, tape: &mut Tape, input: Var, _mode: Mode) -> Var {
        tape.tanh(input)
    }

    fn describe(&self) -> String {
        "Tanh".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_tensor::Tensor;

    #[test]
    fn relu_clamps_negative() {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(vec![-1.0, 2.0], &[2]).unwrap());
        let y = Relu.forward(&mut tape, x, Mode::Eval);
        assert_eq!(tape.value(y).data(), &[0.0, 2.0]);
        assert_eq!(Relu.num_weights(), 0);
    }

    #[test]
    fn sigmoid_midpoint() {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[1]));
        let y = Sigmoid.forward(&mut tape, x, Mode::Eval);
        assert!((tape.value(y).item() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn tanh_is_odd() {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(vec![-1.0, 1.0], &[2]).unwrap());
        let y = Tanh.forward(&mut tape, x, Mode::Eval);
        let v = tape.value(y).data().to_vec();
        assert!((v[0] + v[1]).abs() < 1e-6);
    }

    #[test]
    fn describe_names() {
        assert_eq!(Relu.describe(), "ReLU");
        assert_eq!(Sigmoid.describe(), "Sigmoid");
        assert_eq!(Tanh.describe(), "Tanh");
    }
}
