//! Inverted dropout.

use super::{Layer, Mode};
use parking_lot::Mutex;
use pit_tensor::{Tape, Tensor, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout: in training mode each element is zeroed with
/// probability `p` and survivors are scaled by `1 / (1 − p)`; in evaluation
/// mode the layer is the identity.
pub struct Dropout {
    p: f32,
    rng: Mutex<StdRng>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and a deterministic
    /// internal RNG seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0, 1), got {p}"
        );
        Self {
            p,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&self, tape: &mut Tape, input: Var, mode: Mode) -> Var {
        if mode == Mode::Eval || self.p == 0.0 {
            return input;
        }
        let dims = tape.dims(input);
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut rng = self.rng.lock();
        let mask: Vec<f32> = (0..dims.iter().product::<usize>())
            .map(|_| if rng.gen::<f32>() < keep { scale } else { 0.0 })
            .collect();
        let mask = Tensor::from_vec(mask, &dims).expect("dropout mask shape");
        tape.dropout_with_mask(input, mask)
    }

    fn describe(&self) -> String {
        format!("Dropout(p={})", self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let d = Dropout::new(0.5, 0);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[4, 4]));
        let y = d.forward(&mut tape, x, Mode::Eval);
        assert_eq!(x, y);
    }

    #[test]
    fn zero_probability_is_identity_even_in_train() {
        let d = Dropout::new(0.0, 0);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[4]));
        let y = d.forward(&mut tape, x, Mode::Train);
        assert_eq!(x, y);
    }

    #[test]
    fn train_mode_zeroes_roughly_p_fraction_and_rescales() {
        let d = Dropout::new(0.5, 42);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[10_000]));
        let y = d.forward(&mut tape, x, Mode::Train);
        let out = tape.value(y);
        let zeros = out.data().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / out.len() as f32;
        assert!((frac - 0.5).abs() < 0.05, "zero fraction {frac}");
        // Survivors are scaled by 2 so the expectation is preserved.
        assert!((out.mean_all() - 1.0).abs() < 0.1);
    }

    #[test]
    #[should_panic]
    fn invalid_probability_panics() {
        let _ = Dropout::new(1.0, 0);
    }
}
