//! Batch normalisation layer with running statistics.

use super::{Layer, Mode};
use parking_lot::Mutex;
use pit_tensor::{Param, Tape, Tensor, Var};

/// Batch normalisation over the channel dimension of `[N, C, T]` activations.
///
/// In [`Mode::Train`] the layer normalises with batch statistics and updates
/// exponential running averages; in [`Mode::Eval`] it uses the stored running
/// statistics (and therefore works with batch size 1).
pub struct BatchNorm1d {
    gamma: Param,
    beta: Param,
    running_mean: Mutex<Tensor>,
    running_var: Mutex<Tensor>,
    channels: usize,
    momentum: f32,
    eps: f32,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer for `channels` feature maps with the usual
    /// defaults (`momentum = 0.1`, `eps = 1e-5`).
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "channels must be positive");
        Self {
            gamma: Param::new(Tensor::ones(&[channels]), format!("bn{channels}.gamma")),
            beta: Param::new(Tensor::zeros(&[channels]), format!("bn{channels}.beta")),
            running_mean: Mutex::new(Tensor::zeros(&[channels])),
            running_var: Mutex::new(Tensor::ones(&[channels])),
            channels,
            momentum: 0.1,
            eps: 1e-5,
        }
    }

    /// Number of normalised channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The numerical-stability constant ε added to the variance, needed by
    /// consumers that fold the normalisation into convolution weights.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Current running mean estimate.
    pub fn running_mean(&self) -> Tensor {
        self.running_mean.lock().clone()
    }

    /// Current running variance estimate.
    pub fn running_var(&self) -> Tensor {
        self.running_var.lock().clone()
    }

    /// The learnable scale parameter γ.
    pub fn gamma(&self) -> &Param {
        &self.gamma
    }

    /// The learnable shift parameter β.
    pub fn beta(&self) -> &Param {
        &self.beta
    }
}

impl Layer for BatchNorm1d {
    fn forward(&self, tape: &mut Tape, input: Var, mode: Mode) -> Var {
        let g = tape.param(&self.gamma);
        let b = tape.param(&self.beta);
        match mode {
            Mode::Train => {
                let (out, stats) = tape.batch_norm1d(input, g, b, self.eps);
                let mut rm = self.running_mean.lock();
                let mut rv = self.running_var.lock();
                let new_mean = rm
                    .mul_scalar(1.0 - self.momentum)
                    .add(&stats.mean.mul_scalar(self.momentum))
                    .expect("running mean update");
                let new_var = rv
                    .mul_scalar(1.0 - self.momentum)
                    .add(&stats.var.mul_scalar(self.momentum))
                    .expect("running var update");
                *rm = new_mean;
                *rv = new_var;
                out
            }
            Mode::Eval => {
                let rm = self.running_mean.lock().clone();
                let rv = self.running_var.lock().clone();
                tape.batch_norm1d_inference(input, g, b, &rm, &rv, self.eps)
            }
        }
    }

    fn params(&self) -> Vec<Param> {
        vec![self.gamma.clone(), self.beta.clone()]
    }

    fn describe(&self) -> String {
        format!("BatchNorm1d({})", self.channels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn train_mode_normalises_batch() {
        let mut rng = StdRng::seed_from_u64(0);
        let bn = BatchNorm1d::new(2);
        let x = init::uniform(&mut rng, &[4, 2, 8], 3.0).add_scalar(5.0);
        let mut tape = Tape::new();
        let vx = tape.constant(x);
        let y = bn.forward(&mut tape, vx, Mode::Train);
        let out = tape.value(y);
        assert!(out.mean_all().abs() < 1e-3);
    }

    #[test]
    fn running_stats_move_towards_batch_stats() {
        let bn = BatchNorm1d::new(1);
        let x = Tensor::full(&[2, 1, 4], 10.0);
        let mut tape = Tape::new();
        let vx = tape.constant(x);
        let _ = bn.forward(&mut tape, vx, Mode::Train);
        // mean moved from 0 towards 10 by momentum 0.1
        assert!((bn.running_mean().data()[0] - 1.0).abs() < 1e-5);
        // var moved from 1 towards 0
        assert!((bn.running_var().data()[0] - 0.9).abs() < 1e-5);
    }

    #[test]
    fn eval_mode_uses_running_stats_and_keeps_values() {
        let bn = BatchNorm1d::new(1);
        // Default running stats (mean 0, var 1) make eval nearly an identity.
        let x = Tensor::from_vec(vec![0.5, -0.25], &[1, 1, 2]).unwrap();
        let mut tape = Tape::new();
        let vx = tape.constant(x.clone());
        let y = bn.forward(&mut tape, vx, Mode::Eval);
        assert!(tape.value(y).approx_eq(&x, 1e-4));
    }

    #[test]
    fn exposes_two_params() {
        let bn = BatchNorm1d::new(3);
        assert_eq!(bn.params().len(), 2);
        assert_eq!(bn.num_weights(), 6);
        assert_eq!(bn.channels(), 3);
        assert!(bn.describe().contains('3'));
    }
}
