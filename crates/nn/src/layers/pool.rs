//! Pooling layers.

use super::{Layer, Mode};
use pit_tensor::{Tape, Var};

/// Average pooling over the time axis of `[N, C, T]` activations.
#[derive(Debug, Clone, Copy)]
pub struct AvgPool1d {
    kernel: usize,
    stride: usize,
}

impl AvgPool1d {
    /// Creates an average-pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be positive"
        );
        Self { kernel, stride }
    }

    /// Pooling window length.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Pooling stride.
    pub fn stride(&self) -> usize {
        self.stride
    }
}

impl Layer for AvgPool1d {
    fn forward(&self, tape: &mut Tape, input: Var, _mode: Mode) -> Var {
        tape.avg_pool1d(input, self.kernel, self.stride)
    }

    fn describe(&self) -> String {
        format!("AvgPool1d(k={}, s={})", self.kernel, self.stride)
    }
}

/// Global average pooling over time: `[N, C, T] -> [N, C]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalAvgPool1d;

impl Layer for GlobalAvgPool1d {
    fn forward(&self, tape: &mut Tape, input: Var, _mode: Mode) -> Var {
        tape.global_avg_pool_time(input)
    }

    fn describe(&self) -> String {
        "GlobalAvgPool1d".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_tensor::Tensor;

    #[test]
    fn avg_pool_halves_time() {
        let pool = AvgPool1d::new(2, 2);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[1, 3, 8]));
        let y = pool.forward(&mut tape, x, Mode::Eval);
        assert_eq!(tape.dims(y), vec![1, 3, 4]);
        assert_eq!(pool.kernel(), 2);
        assert_eq!(pool.stride(), 2);
    }

    #[test]
    fn global_pool_removes_time() {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2, 3, 5]));
        let y = GlobalAvgPool1d.forward(&mut tape, x, Mode::Eval);
        assert_eq!(tape.dims(y), vec![2, 3]);
        assert!(tape.value(y).data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    #[should_panic]
    fn zero_kernel_panics() {
        let _ = AvgPool1d::new(0, 1);
    }
}
