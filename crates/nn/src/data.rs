//! Minimal in-memory dataset and batching pipeline.

use pit_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// A mini-batch: stacked inputs and targets with a leading batch dimension.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Stacked inputs, shape `[B, ...sample dims]`.
    pub inputs: Tensor,
    /// Stacked targets, shape `[B, ...target dims]`.
    pub targets: Tensor,
}

impl Batch {
    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.inputs.dims()[0]
    }

    /// Returns `true` if the batch holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An in-memory supervised dataset: a list of `(input, target)` tensor pairs
/// with identical per-sample shapes.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    inputs: Vec<Tensor>,
    targets: Vec<Tensor>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dataset from parallel input / target vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths or inconsistent shapes.
    pub fn from_pairs(inputs: Vec<Tensor>, targets: Vec<Tensor>) -> Self {
        assert_eq!(
            inputs.len(),
            targets.len(),
            "inputs and targets must have the same length"
        );
        let ds = Self { inputs, targets };
        ds.validate();
        ds
    }

    fn validate(&self) {
        if let Some(first) = self.inputs.first() {
            assert!(
                self.inputs.iter().all(|t| t.dims() == first.dims()),
                "all input samples must share a shape"
            );
        }
        if let Some(first) = self.targets.first() {
            assert!(
                self.targets.iter().all(|t| t.dims() == first.dims()),
                "all target samples must share a shape"
            );
        }
    }

    /// Appends one `(input, target)` pair.
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not match the existing samples.
    pub fn push(&mut self, input: Tensor, target: Tensor) {
        if let Some(first) = self.inputs.first() {
            assert_eq!(first.dims(), input.dims(), "input shape mismatch");
        }
        if let Some(first) = self.targets.first() {
            assert_eq!(first.dims(), target.dims(), "target shape mismatch");
        }
        self.inputs.push(input);
        self.targets.push(target);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Returns `true` if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// The `i`-th `(input, target)` pair.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sample(&self, i: usize) -> (&Tensor, &Tensor) {
        (&self.inputs[i], &self.targets[i])
    }

    /// The shape of one input sample (without the batch dimension).
    pub fn input_dims(&self) -> Option<Vec<usize>> {
        self.inputs.first().map(|t| t.dims().to_vec())
    }

    /// The shape of one target sample (without the batch dimension).
    pub fn target_dims(&self) -> Option<Vec<usize>> {
        self.targets.first().map(|t| t.dims().to_vec())
    }

    /// Splits the dataset into two parts; the first receives `fraction` of
    /// the samples (rounded down, at least one sample if possible).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < fraction < 1.0`.
    pub fn split(&self, fraction: f64) -> (Dataset, Dataset) {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "fraction must be in (0, 1)"
        );
        let cut = ((self.len() as f64 * fraction) as usize).clamp(1.min(self.len()), self.len());
        let first = Dataset {
            inputs: self.inputs[..cut].to_vec(),
            targets: self.targets[..cut].to_vec(),
        };
        let second = Dataset {
            inputs: self.inputs[cut..].to_vec(),
            targets: self.targets[cut..].to_vec(),
        };
        (first, second)
    }

    /// Stacks the samples at `indices` into a [`Batch`].
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or any index is out of range.
    pub fn gather(&self, indices: &[usize]) -> Batch {
        assert!(!indices.is_empty(), "cannot build an empty batch");
        let in_dims = self.input_dims().expect("dataset is empty");
        let tgt_dims = self.target_dims().expect("dataset is empty");
        let mut in_shape = vec![indices.len()];
        in_shape.extend_from_slice(&in_dims);
        let mut tgt_shape = vec![indices.len()];
        tgt_shape.extend_from_slice(&tgt_dims);
        let mut in_data = Vec::with_capacity(in_shape.iter().product());
        let mut tgt_data = Vec::with_capacity(tgt_shape.iter().product());
        for &i in indices {
            in_data.extend_from_slice(self.inputs[i].data());
            tgt_data.extend_from_slice(self.targets[i].data());
        }
        Batch {
            inputs: Tensor::from_vec(in_data, &in_shape).expect("batch input shape"),
            targets: Tensor::from_vec(tgt_data, &tgt_shape).expect("batch target shape"),
        }
    }

    /// Produces mini-batches covering the whole dataset, optionally shuffled.
    /// The last batch may be smaller than `batch_size`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn batches<R: Rng + ?Sized>(
        &self,
        batch_size: usize,
        shuffle: Option<&mut R>,
    ) -> Vec<Batch> {
        assert!(batch_size > 0, "batch_size must be positive");
        if self.is_empty() {
            return Vec::new();
        }
        let mut order: Vec<usize> = (0..self.len()).collect();
        if let Some(rng) = shuffle {
            order.shuffle(rng);
        }
        order
            .chunks(batch_size)
            .map(|chunk| self.gather(chunk))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_dataset(n: usize) -> Dataset {
        let mut ds = Dataset::new();
        for i in 0..n {
            ds.push(
                Tensor::full(&[2, 3], i as f32),
                Tensor::full(&[1], i as f32),
            );
        }
        ds
    }

    #[test]
    fn push_and_len() {
        let ds = toy_dataset(5);
        assert_eq!(ds.len(), 5);
        assert!(!ds.is_empty());
        assert_eq!(ds.input_dims().unwrap(), vec![2, 3]);
        assert_eq!(ds.target_dims().unwrap(), vec![1]);
        assert_eq!(ds.sample(2).1.data(), &[2.0]);
    }

    #[test]
    #[should_panic]
    fn push_shape_mismatch_panics() {
        let mut ds = toy_dataset(1);
        ds.push(Tensor::zeros(&[3, 3]), Tensor::zeros(&[1]));
    }

    #[test]
    fn split_fractions() {
        let ds = toy_dataset(10);
        let (train, val) = ds.split(0.8);
        assert_eq!(train.len(), 8);
        assert_eq!(val.len(), 2);
        // Order preserved: first split holds the first samples.
        assert_eq!(train.sample(0).1.data(), &[0.0]);
        assert_eq!(val.sample(0).1.data(), &[8.0]);
    }

    #[test]
    fn gather_stacks_samples() {
        let ds = toy_dataset(4);
        let b = ds.gather(&[1, 3]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.inputs.dims(), &[2, 2, 3]);
        assert_eq!(b.targets.dims(), &[2, 1]);
        assert_eq!(b.targets.data(), &[1.0, 3.0]);
    }

    #[test]
    fn batches_cover_every_sample_once() {
        let ds = toy_dataset(7);
        let mut rng = StdRng::seed_from_u64(0);
        let batches = ds.batches(3, Some(&mut rng));
        assert_eq!(batches.len(), 3);
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 7);
        let mut seen: Vec<f32> = batches
            .iter()
            .flat_map(|b| b.targets.data().to_vec())
            .collect();
        seen.sort_by(f32::total_cmp);
        assert_eq!(seen, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn batches_without_shuffle_preserve_order() {
        let ds = toy_dataset(4);
        let batches = ds.batches::<StdRng>(2, None);
        assert_eq!(batches[0].targets.data(), &[0.0, 1.0]);
        assert_eq!(batches[1].targets.data(), &[2.0, 3.0]);
    }

    #[test]
    fn from_pairs_validates() {
        let ds = Dataset::from_pairs(
            vec![Tensor::zeros(&[2]), Tensor::ones(&[2])],
            vec![Tensor::zeros(&[1]), Tensor::ones(&[1])],
        );
        assert_eq!(ds.len(), 2);
    }
}
