//! Task losses used by the PIT benchmarks.

use pit_tensor::{Tape, Tensor, Var};
use serde::{Deserialize, Serialize};

/// The performance loss `L_perf` of Eq. 7: which criterion to apply between
/// the network output and the target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossKind {
    /// Mean squared error (used during training of the heart-rate regressor).
    Mse,
    /// Mean absolute error (the MAE metric of the PPG-Dalia benchmark).
    Mae,
    /// Element-averaged binary cross-entropy with logits.
    BceWithLogits,
    /// Frame-level negative log-likelihood for polyphonic music: binary
    /// cross-entropy summed over the 88 keys and averaged over frames.
    FrameNll,
}

impl LossKind {
    /// Applies the loss between a prediction node and a constant target,
    /// returning a scalar node.
    ///
    /// # Panics
    ///
    /// Panics if prediction and target shapes are incompatible for the
    /// selected criterion.
    pub fn apply(&self, tape: &mut Tape, pred: Var, target: &Tensor) -> Var {
        match self {
            LossKind::Mse => tape.mse_loss(pred, target),
            LossKind::Mae => tape.mae_loss(pred, target),
            LossKind::BceWithLogits => tape.bce_with_logits_loss(pred, target),
            LossKind::FrameNll => tape.bce_frame_nll_loss(pred, target),
        }
    }

    /// The display name of the metric associated with this loss
    /// (as used in the paper's tables).
    pub fn metric_name(&self) -> &'static str {
        match self {
            LossKind::Mse => "MSE",
            LossKind::Mae => "MAE",
            LossKind::BceWithLogits => "BCE",
            LossKind::FrameNll => "NLL",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_dispatches_to_the_right_op() {
        let pred_t = Tensor::from_vec(vec![1.0, 3.0], &[2]).unwrap();
        let target = Tensor::from_vec(vec![0.0, 1.0], &[2]).unwrap();

        let mut tape = Tape::new();
        let p = tape.constant(pred_t.clone());
        let l = LossKind::Mse.apply(&mut tape, p, &target);
        assert!((tape.value(l).item() - 2.5).abs() < 1e-6);

        let mut tape = Tape::new();
        let p = tape.constant(pred_t);
        let l = LossKind::Mae.apply(&mut tape, p, &target);
        assert!((tape.value(l).item() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn frame_nll_requires_rank3() {
        let logits = Tensor::zeros(&[1, 2, 3]);
        let target = Tensor::ones(&[1, 2, 3]);
        let mut tape = Tape::new();
        let p = tape.constant(logits);
        let l = LossKind::FrameNll.apply(&mut tape, p, &target);
        assert!(tape.value(l).item() > 0.0);
    }

    #[test]
    fn metric_names() {
        assert_eq!(LossKind::Mae.metric_name(), "MAE");
        assert_eq!(LossKind::FrameNll.metric_name(), "NLL");
        assert_eq!(LossKind::Mse.metric_name(), "MSE");
        assert_eq!(LossKind::BceWithLogits.metric_name(), "BCE");
    }
}
