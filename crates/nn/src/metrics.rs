//! Evaluation metrics computed outside the autograd graph.

use pit_tensor::Tensor;

/// Mean absolute error between predictions and targets.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mae(pred: &Tensor, target: &Tensor) -> f32 {
    assert!(pred.shape().same_as(target.shape()), "mae: shape mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    pred.data()
        .iter()
        .zip(target.data().iter())
        .map(|(&p, &t)| (p - t).abs())
        .sum::<f32>()
        / pred.len() as f32
}

/// Mean squared error between predictions and targets.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mse(pred: &Tensor, target: &Tensor) -> f32 {
    assert!(pred.shape().same_as(target.shape()), "mse: shape mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    pred.data()
        .iter()
        .zip(target.data().iter())
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum::<f32>()
        / pred.len() as f32
}

/// Element-averaged binary cross-entropy between logits and 0/1 targets.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn bce_with_logits(logits: &Tensor, target: &Tensor) -> f32 {
    assert!(
        logits.shape().same_as(target.shape()),
        "bce: shape mismatch"
    );
    if logits.is_empty() {
        return 0.0;
    }
    logits
        .data()
        .iter()
        .zip(target.data().iter())
        .map(|(&z, &y)| z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln())
        .sum::<f32>()
        / logits.len() as f32
}

/// Frame-level negative log-likelihood for multi-label sequence prediction:
/// binary cross-entropy summed over the label dimension of `[N, C, T]`
/// logits and averaged over `N · T` frames. This is the "NLL" reported for
/// the Nottingham benchmark.
///
/// # Panics
///
/// Panics if shapes differ or the logits are not rank 3.
pub fn frame_nll(logits: &Tensor, target: &Tensor) -> f32 {
    assert_eq!(logits.dims().len(), 3, "frame_nll expects [N, C, T] logits");
    let c = logits.dims()[1] as f32;
    bce_with_logits(logits, target) * c
}

/// Classification accuracy of binarised multi-label predictions at a 0.5
/// probability threshold (i.e. logit threshold 0).
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn binary_accuracy(logits: &Tensor, target: &Tensor) -> f32 {
    assert!(
        logits.shape().same_as(target.shape()),
        "accuracy: shape mismatch"
    );
    if logits.is_empty() {
        return 0.0;
    }
    let correct = logits
        .data()
        .iter()
        .zip(target.data().iter())
        .filter(|(&z, &y)| (z >= 0.0) == (y >= 0.5))
        .count();
    correct as f32 / logits.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_and_mse_basic() {
        let p = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let t = Tensor::from_vec(vec![0.0, 4.0], &[2]).unwrap();
        assert!((mae(&p, &t) - 1.5).abs() < 1e-6);
        assert!((mse(&p, &t) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn bce_at_zero_logit_is_ln2() {
        let p = Tensor::zeros(&[4]);
        let t = Tensor::ones(&[4]);
        assert!((bce_with_logits(&p, &t) - std::f32::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn frame_nll_scales_with_keys() {
        let p = Tensor::zeros(&[1, 88, 4]);
        let t = Tensor::zeros(&[1, 88, 4]);
        let per_elem = bce_with_logits(&p, &t);
        assert!((frame_nll(&p, &t) - 88.0 * per_elem).abs() < 1e-4);
    }

    #[test]
    fn binary_accuracy_counts_matches() {
        let p = Tensor::from_vec(vec![1.0, -1.0, 2.0, -2.0], &[4]).unwrap();
        let t = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0], &[4]).unwrap();
        assert!((binary_accuracy(&p, &t) - 0.75).abs() < 1e-6);
    }

    #[test]
    fn empty_tensors_return_zero() {
        let e = Tensor::zeros(&[0]);
        assert_eq!(mae(&e, &e), 0.0);
        assert_eq!(mse(&e, &e), 0.0);
        assert_eq!(bce_with_logits(&e, &e), 0.0);
        assert_eq!(binary_accuracy(&e, &e), 0.0);
    }
}
