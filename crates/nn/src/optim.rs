//! Gradient-descent optimizers.

use pit_tensor::{Param, Tensor};

/// A first-order optimizer over a fixed set of parameters.
///
/// The typical training-step sequence is:
///
/// 1. [`Optimizer::zero_grad`]
/// 2. forward pass + `Tape::backward`
/// 3. [`Optimizer::step`]
pub trait Optimizer {
    /// Applies one update using the gradients currently stored in the params.
    fn step(&mut self);

    /// Clears the gradients of every managed parameter.
    fn zero_grad(&self);

    /// The parameters managed by this optimizer.
    fn params(&self) -> &[Param];

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum and weight decay.
pub struct Sgd {
    params: Vec<Param>,
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(params: Vec<Param>, lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        let velocity = params.iter().map(|p| Tensor::zeros(&p.dims())).collect();
        Self {
            params,
            lr,
            momentum,
            weight_decay,
            velocity,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        for (param, vel) in self.params.iter().zip(self.velocity.iter_mut()) {
            if !param.trainable() {
                continue;
            }
            param.with_value_mut_and_grad(|value, grad| {
                for i in 0..value.len() {
                    let g = grad.data()[i] + self.weight_decay * value.data()[i];
                    let v = self.momentum * vel.data()[i] + g;
                    vel.data_mut()[i] = v;
                    value.data_mut()[i] -= self.lr * v;
                }
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn params(&self) -> &[Param] {
        &self.params
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba) with decoupled weight decay disabled by
/// default (plain L2 on the gradient, matching the reference PyTorch setup).
pub struct Adam {
    params: Vec<Param>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step_count: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard β parameters.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(params: Vec<Param>, lr: f32) -> Self {
        Self::with_config(params, lr, 0.9, 0.999, 1e-8, 0.0)
    }

    /// Creates an Adam optimizer with explicit hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn with_config(
        params: Vec<Param>,
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        weight_decay: f32,
    ) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        let m = params.iter().map(|p| Tensor::zeros(&p.dims())).collect();
        let v = params.iter().map(|p| Tensor::zeros(&p.dims())).collect();
        Self {
            params,
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            step_count: 0,
            m,
            v,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.step_count += 1;
        let t = self.step_count as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for ((param, m), v) in self
            .params
            .iter()
            .zip(self.m.iter_mut())
            .zip(self.v.iter_mut())
        {
            if !param.trainable() {
                continue;
            }
            param.with_value_mut_and_grad(|value, grad| {
                for i in 0..value.len() {
                    let g = grad.data()[i] + self.weight_decay * value.data()[i];
                    let mi = self.beta1 * m.data()[i] + (1.0 - self.beta1) * g;
                    let vi = self.beta2 * v.data()[i] + (1.0 - self.beta2) * g * g;
                    m.data_mut()[i] = mi;
                    v.data_mut()[i] = vi;
                    let m_hat = mi / bias1;
                    let v_hat = vi / bias2;
                    value.data_mut()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
                }
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn params(&self) -> &[Param] {
        &self.params
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_tensor::Tape;

    fn quadratic_step(p: &Param) {
        // loss = sum(p^2); gradient = 2p
        let mut tape = Tape::new();
        let x = tape.param(p);
        let sq = tape.square(x);
        let loss = tape.sum(sq);
        tape.backward(loss);
    }

    #[test]
    fn sgd_descends_a_quadratic() {
        let p = Param::new(Tensor::from_vec(vec![1.0, -2.0], &[2]).unwrap(), "p");
        let mut opt = Sgd::new(vec![p.clone()], 0.1, 0.0, 0.0);
        for _ in 0..50 {
            opt.zero_grad();
            quadratic_step(&p);
            opt.step();
        }
        assert!(p.value().abs().max_all() < 1e-3);
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let plain = Param::new(Tensor::from_vec(vec![1.0], &[1]).unwrap(), "a");
        let momentum = Param::new(Tensor::from_vec(vec![1.0], &[1]).unwrap(), "b");
        let mut o1 = Sgd::new(vec![plain.clone()], 0.01, 0.0, 0.0);
        let mut o2 = Sgd::new(vec![momentum.clone()], 0.01, 0.9, 0.0);
        for _ in 0..20 {
            o1.zero_grad();
            quadratic_step(&plain);
            o1.step();
            o2.zero_grad();
            quadratic_step(&momentum);
            o2.step();
        }
        assert!(momentum.value().data()[0].abs() < plain.value().data()[0].abs());
    }

    #[test]
    fn adam_descends_a_quadratic() {
        let p = Param::new(Tensor::from_vec(vec![3.0, -1.5, 0.7], &[3]).unwrap(), "p");
        let mut opt = Adam::new(vec![p.clone()], 0.05);
        for _ in 0..300 {
            opt.zero_grad();
            quadratic_step(&p);
            opt.step();
        }
        assert!(
            p.value().abs().max_all() < 1e-2,
            "value {:?}",
            p.value().data()
        );
    }

    #[test]
    fn weight_decay_shrinks_parameters_without_gradient() {
        let p = Param::new(Tensor::from_vec(vec![1.0], &[1]).unwrap(), "p");
        let mut opt = Sgd::new(vec![p.clone()], 0.1, 0.0, 0.5);
        // No backward pass: gradient stays zero, only decay applies.
        opt.step();
        assert!((p.value().data()[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn frozen_params_are_not_updated() {
        let p = Param::new(Tensor::from_vec(vec![1.0], &[1]).unwrap(), "p");
        p.set_trainable(false);
        let mut opt = Adam::new(vec![p.clone()], 0.1);
        opt.zero_grad();
        quadratic_step(&p);
        opt.step();
        assert_eq!(p.value().data(), &[1.0]);
    }

    #[test]
    fn learning_rate_accessors() {
        let p = Param::new(Tensor::zeros(&[1]), "p");
        let mut opt = Sgd::new(vec![p], 0.1, 0.0, 0.0);
        assert!((opt.learning_rate() - 0.1).abs() < 1e-9);
        opt.set_learning_rate(0.01);
        assert!((opt.learning_rate() - 0.01).abs() < 1e-9);
    }
}
