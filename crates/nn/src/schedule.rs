//! Learning-rate schedules.

use serde::{Deserialize, Serialize};

/// A learning-rate schedule: maps an epoch index to a multiplier of the base
/// learning rate.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Constant learning rate.
    #[default]
    Constant,
    /// Multiply the learning rate by `gamma` every `step_epochs` epochs.
    StepDecay {
        /// Epochs between decays.
        step_epochs: usize,
        /// Decay factor applied at each step.
        gamma: f32,
    },
    /// Cosine annealing from 1 down to `min_factor` over `total_epochs`.
    Cosine {
        /// Length of the annealing period in epochs.
        total_epochs: usize,
        /// Final fraction of the base learning rate.
        min_factor: f32,
    },
}

impl LrSchedule {
    /// The learning-rate multiplier for the given (0-based) epoch.
    pub fn factor(&self, epoch: usize) -> f32 {
        match self {
            LrSchedule::Constant => 1.0,
            LrSchedule::StepDecay { step_epochs, gamma } => {
                let steps = if *step_epochs == 0 {
                    0
                } else {
                    epoch / step_epochs
                };
                gamma.powi(steps as i32)
            }
            LrSchedule::Cosine {
                total_epochs,
                min_factor,
            } => {
                let total = (*total_epochs).max(1) as f32;
                let progress = (epoch as f32 / total).min(1.0);
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
                min_factor + (1.0 - min_factor) * cos
            }
        }
    }

    /// The learning rate for the given epoch and base rate.
    pub fn learning_rate(&self, base: f32, epoch: usize) -> f32 {
        base * self.factor(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one() {
        assert_eq!(LrSchedule::Constant.factor(0), 1.0);
        assert_eq!(LrSchedule::Constant.factor(100), 1.0);
    }

    #[test]
    fn step_decay_halves_every_period() {
        let s = LrSchedule::StepDecay {
            step_epochs: 10,
            gamma: 0.5,
        };
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(9), 1.0);
        assert_eq!(s.factor(10), 0.5);
        assert_eq!(s.factor(25), 0.25);
        assert!((s.learning_rate(0.1, 10) - 0.05).abs() < 1e-7);
    }

    #[test]
    fn step_decay_with_zero_period_is_constant() {
        let s = LrSchedule::StepDecay {
            step_epochs: 0,
            gamma: 0.5,
        };
        assert_eq!(s.factor(100), 1.0);
    }

    #[test]
    fn cosine_anneals_to_min_factor() {
        let s = LrSchedule::Cosine {
            total_epochs: 20,
            min_factor: 0.1,
        };
        assert!((s.factor(0) - 1.0).abs() < 1e-6);
        assert!((s.factor(20) - 0.1).abs() < 1e-6);
        assert!((s.factor(40) - 0.1).abs() < 1e-6); // clamped after the period
        let mid = s.factor(10);
        assert!(mid > 0.1 && mid < 1.0);
        // Monotonically non-increasing over the period.
        for e in 1..=20 {
            assert!(s.factor(e) <= s.factor(e - 1) + 1e-6);
        }
    }

    #[test]
    fn default_is_constant() {
        assert_eq!(LrSchedule::default(), LrSchedule::Constant);
    }
}
