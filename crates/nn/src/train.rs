//! Training loop with validation, early stopping and timing.

use crate::data::{Batch, Dataset};
use crate::layers::{Layer, Mode};
use crate::loss::LossKind;
use crate::optim::Optimizer;
use pit_tensor::Tape;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Hyper-parameters of a plain training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Maximum number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Whether to shuffle the training set every epoch.
    pub shuffle: bool,
    /// Early-stopping patience in epochs (`None` disables early stopping).
    pub patience: Option<usize>,
    /// RNG seed for shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 32,
            shuffle: true,
            patience: Some(50),
            seed: 0,
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Number of epochs actually run (may be fewer than requested when early
    /// stopping triggers).
    pub epochs_run: usize,
    /// Number of optimizer steps taken.
    pub steps: usize,
    /// Average training loss per epoch.
    pub train_loss: Vec<f32>,
    /// Validation loss per epoch (empty when no validation set is given).
    pub val_loss: Vec<f32>,
    /// Best (lowest) validation loss observed, or the final training loss
    /// when no validation set is given.
    pub best_loss: f32,
    /// Wall-clock duration of the run.
    pub wall_time: Duration,
}

/// Early-stopping state: stop when the monitored loss has not improved for
/// `patience` consecutive updates.
#[derive(Debug, Clone)]
pub struct EarlyStopping {
    patience: usize,
    best: f32,
    wait: usize,
}

impl EarlyStopping {
    /// Creates an early-stopping monitor with the given patience.
    pub fn new(patience: usize) -> Self {
        Self {
            patience,
            best: f32::INFINITY,
            wait: 0,
        }
    }

    /// Records a new loss value; returns `true` when training should stop.
    pub fn update(&mut self, loss: f32) -> bool {
        if loss < self.best {
            self.best = loss;
            self.wait = 0;
            false
        } else {
            self.wait += 1;
            self.wait >= self.patience
        }
    }

    /// Best loss seen so far.
    pub fn best(&self) -> f32 {
        self.best
    }
}

/// Orchestrates epochs of mini-batch gradient descent over a [`Layer`].
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Runs one optimisation step on a single batch and returns its loss.
    pub fn train_step(
        model: &dyn Layer,
        batch: &Batch,
        loss: LossKind,
        optimizer: &mut dyn Optimizer,
    ) -> f32 {
        optimizer.zero_grad();
        let mut tape = Tape::new();
        let x = tape.constant(batch.inputs.clone());
        let pred = model.forward(&mut tape, x, Mode::Train);
        let l = loss.apply(&mut tape, pred, &batch.targets);
        let value = tape.value(l).item();
        tape.backward(l);
        optimizer.step();
        value
    }

    /// Evaluates the average loss of `model` over `data` in evaluation mode
    /// (no parameter updates).
    pub fn evaluate(model: &dyn Layer, data: &Dataset, loss: LossKind, batch_size: usize) -> f32 {
        if data.is_empty() {
            return 0.0;
        }
        let batches = data.batches::<StdRng>(batch_size, None);
        let mut total = 0.0f64;
        let mut count = 0usize;
        for batch in &batches {
            let mut tape = Tape::new();
            let x = tape.constant(batch.inputs.clone());
            let pred = model.forward(&mut tape, x, Mode::Eval);
            let l = loss.apply(&mut tape, pred, &batch.targets);
            total += tape.value(l).item() as f64 * batch.len() as f64;
            count += batch.len();
        }
        (total / count as f64) as f32
    }

    /// Trains `model` on `train`, monitoring `val` (when provided) for early
    /// stopping, and returns a [`TrainReport`].
    pub fn train(
        &self,
        model: &dyn Layer,
        train: &Dataset,
        val: Option<&Dataset>,
        loss: LossKind,
        optimizer: &mut dyn Optimizer,
    ) -> TrainReport {
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut report = TrainReport {
            epochs_run: 0,
            steps: 0,
            train_loss: Vec::new(),
            val_loss: Vec::new(),
            best_loss: f32::INFINITY,
            wall_time: Duration::ZERO,
        };
        let mut stopper = self.config.patience.map(EarlyStopping::new);

        for _epoch in 0..self.config.epochs {
            let batches = if self.config.shuffle {
                train.batches(self.config.batch_size, Some(&mut rng))
            } else {
                train.batches::<StdRng>(self.config.batch_size, None)
            };
            let mut epoch_loss = 0.0f64;
            let mut seen = 0usize;
            for batch in &batches {
                let l = Self::train_step(model, batch, loss, optimizer);
                epoch_loss += l as f64 * batch.len() as f64;
                seen += batch.len();
                report.steps += 1;
            }
            let train_loss = (epoch_loss / seen.max(1) as f64) as f32;
            report.train_loss.push(train_loss);
            report.epochs_run += 1;

            let monitored = if let Some(val) = val {
                let v = Self::evaluate(model, val, loss, self.config.batch_size);
                report.val_loss.push(v);
                v
            } else {
                train_loss
            };
            report.best_loss = report.best_loss.min(monitored);
            if let Some(stopper) = &mut stopper {
                if stopper.update(monitored) {
                    break;
                }
            }
        }
        report.wall_time = start.elapsed();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Sequential};
    use crate::optim::{Adam, Sgd};
    use pit_tensor::Tensor;
    use rand::Rng;

    /// y = 2*x0 - x1 + 0.5 regression problem.
    fn linear_problem(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new();
        for _ in 0..n {
            let x0: f32 = rng.gen_range(-1.0..1.0);
            let x1: f32 = rng.gen_range(-1.0..1.0);
            let y = 2.0 * x0 - x1 + 0.5;
            ds.push(
                Tensor::from_vec(vec![x0, x1], &[2]).unwrap(),
                Tensor::from_vec(vec![y], &[1]).unwrap(),
            );
        }
        ds
    }

    #[test]
    fn early_stopping_triggers_after_patience() {
        let mut es = EarlyStopping::new(2);
        assert!(!es.update(1.0));
        assert!(!es.update(0.5));
        assert!(!es.update(0.6));
        assert!(es.update(0.7));
        assert_eq!(es.best(), 0.5);
    }

    #[test]
    fn training_reduces_loss_on_linear_regression() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = Sequential::new(vec![Box::new(Linear::new(&mut rng, 2, 1))]);
        let data = linear_problem(64, 7);
        let (train, val) = data.split(0.75);
        let mut opt = Adam::new(model.params(), 0.05);
        let trainer = Trainer::new(TrainConfig {
            epochs: 60,
            batch_size: 16,
            shuffle: true,
            patience: None,
            seed: 0,
        });
        let report = trainer.train(&model, &train, Some(&val), LossKind::Mse, &mut opt);
        assert_eq!(report.epochs_run, 60);
        assert!(
            report.val_loss.last().copied().unwrap() < 0.05,
            "final val loss {:?}",
            report.val_loss.last()
        );
        assert!(report.train_loss[0] > *report.train_loss.last().unwrap());
        assert!(report.steps >= 60 * 3);
    }

    #[test]
    fn early_stopping_cuts_the_run_short() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = Sequential::new(vec![Box::new(Linear::new(&mut rng, 2, 1))]);
        let data = linear_problem(32, 1);
        let (train, val) = data.split(0.5);
        // Large learning rate makes validation plateau/noisy quickly.
        let mut opt = Sgd::new(model.params(), 0.5, 0.0, 0.0);
        let trainer = Trainer::new(TrainConfig {
            epochs: 200,
            batch_size: 8,
            shuffle: true,
            patience: Some(3),
            seed: 0,
        });
        let report = trainer.train(&model, &train, Some(&val), LossKind::Mse, &mut opt);
        assert!(report.epochs_run < 200);
    }

    #[test]
    fn evaluate_returns_zero_on_empty_dataset() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = Sequential::new(vec![Box::new(Linear::new(&mut rng, 2, 1))]);
        let empty = Dataset::new();
        assert_eq!(Trainer::evaluate(&model, &empty, LossKind::Mse, 4), 0.0);
    }

    #[test]
    fn train_without_validation_uses_train_loss() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = Sequential::new(vec![Box::new(Linear::new(&mut rng, 2, 1))]);
        let data = linear_problem(16, 2);
        let mut opt = Adam::new(model.params(), 0.01);
        let trainer = Trainer::new(TrainConfig {
            epochs: 3,
            batch_size: 8,
            shuffle: false,
            patience: None,
            seed: 0,
        });
        let report = trainer.train(&model, &data, None, LossKind::Mse, &mut opt);
        assert!(report.val_loss.is_empty());
        assert_eq!(report.train_loss.len(), 3);
        assert!(report.best_loss.is_finite());
    }
}
