//! The telemetry layer end to end: the HTTP sidecar's `/metrics`,
//! `/stats`, `/healthz` and `/trace` routes against a live daemon, the
//! exact agreement between Prometheus totals and the binary-protocol
//! STATS frame, the per-stream trace over the TRACE frame, sidecar
//! hardening, and the Prometheus exposition format itself.

use pit_infer::{compile_temponet, InferencePlan, QuantizedPlan};
use pit_models::{TempoNet, TempoNetConfig};
use pit_nas::SearchableNetwork;
use pit_serve::{Client, ServeEngine, Server, ServerConfig, ServerFrame, StatsSnapshot};
use pit_tensor::init;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const C: usize = 4;
const RECV_TIMEOUT: Duration = Duration::from_secs(10);

fn searched_plan(seed: u64) -> Arc<InferencePlan> {
    let cfg = TempoNetConfig::scaled(8, 64);
    let mut rng = StdRng::seed_from_u64(seed);
    let net = TempoNet::new(&mut rng, &cfg);
    net.set_dilations(&cfg.hand_tuned_dilations());
    Arc::new(compile_temponet(&net))
}

fn quantized_plan(plan: &InferencePlan, seed: u64) -> Arc<QuantizedPlan> {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = init::uniform(&mut rng, &[1, C, 64], 1.0);
    Arc::new(QuantizedPlan::quantize(plan, std::slice::from_ref(&x)).unwrap())
}

fn metrics_config() -> ServerConfig {
    ServerConfig {
        metrics_addr: Some("127.0.0.1:0".into()),
        ..ServerConfig::default()
    }
}

/// One blocking HTTP/1.1 GET (or arbitrary raw request) against the
/// sidecar; returns (status code, full header block, body).
fn http_request(addr: SocketAddr, raw: &[u8]) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("sidecar reachable");
    stream.set_read_timeout(Some(RECV_TIMEOUT)).unwrap();
    stream.write_all(raw).expect("request sent");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("response read");
    let text = String::from_utf8(response).expect("sidecar responses are UTF-8");
    let (head, body) = text
        .split_once("\r\n\r\n")
        .expect("response has a header terminator");
    let status: u16 = head
        .split_ascii_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, head.to_string(), body.to_string())
}

fn http_get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    http_request(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: pit-serve\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

/// Extracts one sample's value from a Prometheus text body. `selector` is
/// the full sample name plus any label set, e.g. `pit_serve_waves_total`
/// or `pit_serve_model_timesteps_total{model="fp",kind="f32"}`.
fn metric(text: &str, selector: &str) -> f64 {
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        if let Some((name, value)) = line.rsplit_once(' ') {
            if name == selector {
                return value.parse().expect("numeric sample value");
            }
        }
    }
    panic!("metric {selector} not found in exposition");
}

/// Polls the binary-protocol STATS frame until the daemon reports itself
/// settled (no routed events or queued timesteps in flight) plus any
/// extra condition, returning the settled snapshot.
fn settled_stats(client: &mut Client, extra: impl Fn(&StatsSnapshot) -> bool) -> StatsSnapshot {
    let deadline = Instant::now() + RECV_TIMEOUT;
    loop {
        client.stats().expect("stats");
        let json = loop {
            match client.recv_timeout(RECV_TIMEOUT).expect("transport") {
                Some(ServerFrame::StatsJson { json }) => break json,
                Some(_) => continue,
                None => panic!("daemon hung up mid-poll"),
            }
        };
        let snap = StatsSnapshot::from_json_str(&json).expect("stats parse");
        if snap.settled && extra(&snap) {
            return snap;
        }
        assert!(Instant::now() < deadline, "daemon never settled: {json}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The acceptance test: concurrent f32 and int8 streams, then — once the
/// daemon settles — every total in `/metrics` must match the binary
/// STATS frame exactly. Both read the same atomics; any disagreement is
/// a telemetry bug, not a race.
#[test]
fn metrics_totals_match_the_stats_frame_exactly() {
    let plan = searched_plan(61);
    let qplan = quantized_plan(&plan, 62);
    let server = Server::bind_models(
        vec![
            ("fp".into(), ServeEngine::F32(Arc::clone(&plan))),
            ("q8".into(), ServeEngine::I8(Arc::clone(&qplan))),
        ],
        "fp",
        metrics_config(),
    )
    .expect("bind registry");
    let addr = server.local_addr();
    let metrics_addr = server.metrics_addr().expect("sidecar bound");
    let handle = server.spawn();
    assert_eq!(handle.metrics_addr(), Some(metrics_addr));

    // Concurrent traffic on both models.
    const STREAMS: usize = 6;
    let workers: Vec<_> = (0..STREAMS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + i as u64);
                let steps = 16 + 8 * i;
                let input: Vec<f32> = (0..steps * C).map(|_| rng.gen::<f32>() - 0.5).collect();
                let mut client = Client::connect(addr).expect("connect");
                let model = if i % 2 == 0 { "fp" } else { "q8" };
                client.open_with_model(i as u32, model).expect("open");
                client.push(i as u32, C as u32, &input).expect("push");
                let mut got = 0usize;
                while got < steps / 8 {
                    match client
                        .recv_timeout(RECV_TIMEOUT)
                        .expect("transport")
                        .expect("emissions arrive")
                    {
                        ServerFrame::Emit { count, .. } => got += count as usize,
                        ServerFrame::Opened { .. } => {}
                        other => panic!("unexpected frame {other:?}"),
                    }
                }
                client.close(i as u32).expect("close");
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }

    // Quiesce: all worker sockets are gone; wait until the edge has
    // processed the disconnects and every shard has drained its queue.
    let mut control = Client::connect(addr).expect("connect");
    let snap = settled_stats(&mut control, |s| {
        s.connections_open == 1 && s.streams_open == 0
    });

    // Now nothing is moving: scrape and compare EXACTLY.
    let (status, head, metrics_text) = http_get(metrics_addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "exposition content type: {head}"
    );
    let int = |selector: &str| metric(&metrics_text, selector) as u64;
    assert_eq!(int("pit_serve_connections_total"), snap.connections_total);
    assert_eq!(int("pit_serve_connections_open"), snap.connections_open);
    assert_eq!(
        int("pit_serve_connections_closed_total"),
        snap.connections_closed
    );
    assert_eq!(
        int("pit_serve_connections_errored_total"),
        snap.connections_errored
    );
    assert_eq!(
        int("pit_serve_connections_expired_total"),
        snap.connections_expired
    );
    assert_eq!(int("pit_serve_streams_open"), snap.streams_open);
    assert_eq!(int("pit_serve_streams_opened_total"), snap.streams_opened);
    assert_eq!(int("pit_serve_streams_evicted_total"), snap.streams_evicted);
    assert_eq!(int("pit_serve_timesteps_total"), snap.timesteps_in);
    assert_eq!(int("pit_serve_emissions_total"), snap.emissions_out);
    assert_eq!(int("pit_serve_frames_rejected_total"), snap.frames_rejected);
    assert_eq!(int("pit_serve_replies_dropped_total"), snap.replies_dropped);
    assert_eq!(int("pit_serve_waves_total"), snap.waves);
    assert_eq!(int("pit_serve_stats_settled"), 1);
    assert!(int("pit_serve_stats_seq") >= snap.seq, "seq is monotone");
    // Per-model families match the snapshot's per-model breakdown.
    for m in &snap.models {
        let labels = format!("{{model=\"{}\",kind=\"{}\"}}", m.name, m.kind);
        assert_eq!(
            int(&format!("pit_serve_model_streams_open{labels}")),
            m.streams_open
        );
        assert_eq!(
            int(&format!("pit_serve_model_streams_opened_total{labels}")),
            m.streams_opened
        );
        assert_eq!(
            int(&format!("pit_serve_model_timesteps_total{labels}")),
            m.timesteps_in
        );
        assert_eq!(
            int(&format!("pit_serve_model_emissions_total{labels}")),
            m.emissions_out
        );
        assert_eq!(
            int(&format!("pit_serve_model_waves_total{labels}")),
            m.waves
        );
        assert!(m.timesteps_in > 0, "both models saw traffic");
    }
    // Wave-latency histogram counts sum to the wave counter across shards.
    let bucket_count: u64 = metrics_text
        .lines()
        .filter(|l| l.starts_with("pit_serve_wave_flush_ns_count{"))
        .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
        .sum();
    assert_eq!(bucket_count, snap.waves);
    // The wave-latency percentiles come from the merged histograms.
    assert!(snap.wave_p50_ns > 0 && snap.wave_p99_ns >= snap.wave_p50_ns);

    // The outbuf high-water mark moves when the daemon writes the STATS
    // reply itself (the reply is queued *after* the snapshot is taken), so
    // compare the scrape against a snapshot taken after it — with traffic
    // quiesced, nothing else pushes to an outbuf in between.
    let resnap = settled_stats(&mut control, |_| true);
    assert_eq!(
        int("pit_serve_outbuf_high_water_bytes"),
        resnap.outbuf_hwm_bytes
    );
    assert!(resnap.outbuf_hwm_bytes >= snap.outbuf_hwm_bytes);

    // `/stats` serves the same snapshot as the binary STATS frame.
    let (status, _head, stats_body) = http_get(metrics_addr, "/stats");
    assert_eq!(status, 200);
    let http_snap = StatsSnapshot::from_json_str(&stats_body).expect("stats parse");
    assert_eq!(http_snap.connections_total, snap.connections_total);
    assert_eq!(http_snap.timesteps_in, snap.timesteps_in);
    assert_eq!(http_snap.emissions_out, snap.emissions_out);
    assert_eq!(http_snap.streams_opened, snap.streams_opened);
    assert_eq!(http_snap.waves, snap.waves);
    assert_eq!(http_snap.models.len(), snap.models.len());

    handle.shutdown();
}

/// Counters must never decrease between scrapes, with live traffic in
/// between.
#[test]
fn counters_are_monotone_across_scrapes() {
    let plan = searched_plan(63);
    let server = Server::bind(ServeEngine::F32(plan), metrics_config()).expect("bind");
    let addr = server.local_addr();
    let metrics_addr = server.metrics_addr().expect("sidecar bound");
    let handle = server.spawn();

    let counters = [
        "pit_serve_connections_total",
        "pit_serve_streams_opened_total",
        "pit_serve_timesteps_total",
        "pit_serve_emissions_total",
        "pit_serve_waves_total",
        "pit_serve_trace_events_total",
        "pit_serve_stats_seq",
    ];
    let mut last = vec![0.0f64; counters.len()];
    let mut rng = StdRng::seed_from_u64(9);
    for round in 0..3u32 {
        let mut client = Client::connect(addr).expect("connect");
        client.open(round).expect("open");
        let input: Vec<f32> = (0..32 * C).map(|_| rng.gen::<f32>() - 0.5).collect();
        client.push(round, C as u32, &input).expect("push");
        let mut got = 0usize;
        while got < 4 {
            if let ServerFrame::Emit { count, .. } = client
                .recv_timeout(RECV_TIMEOUT)
                .expect("transport")
                .expect("emissions arrive")
            {
                got += count as usize;
            }
        }
        client.close(round).expect("close");
        drop(client);
        let (status, _head, text) = http_get(metrics_addr, "/metrics");
        assert_eq!(status, 200);
        for (i, name) in counters.iter().enumerate() {
            let value = metric(&text, name);
            assert!(
                value >= last[i],
                "{name} went backwards: {} -> {value}",
                last[i]
            );
            last[i] = value;
        }
    }
    assert!(last[2] >= 96.0, "three rounds of 32 timesteps scraped");
    handle.shutdown();
}

/// Every sample line must be well-formed, every family announced with
/// HELP and TYPE before its samples, and histogram bucket counts must be
/// cumulative in `le` and agree with `_count`.
#[test]
fn prometheus_exposition_format_is_wellformed() {
    let plan = searched_plan(64);
    let server = Server::bind(ServeEngine::F32(plan), metrics_config()).expect("bind");
    let addr = server.local_addr();
    let metrics_addr = server.metrics_addr().expect("sidecar bound");
    let handle = server.spawn();

    // Some traffic so histograms are non-empty.
    let mut client = Client::connect(addr).expect("connect");
    client.open(0).expect("open");
    let input = vec![0.25f32; 32 * C];
    client.push(0, C as u32, &input).expect("push");
    let mut got = 0usize;
    while got < 4 {
        if let ServerFrame::Emit { count, .. } = client
            .recv_timeout(RECV_TIMEOUT)
            .expect("transport")
            .expect("emissions arrive")
        {
            got += count as usize;
        }
    }

    let (status, _head, text) = http_get(metrics_addr, "/metrics");
    assert_eq!(status, 200);
    let mut announced: Vec<(String, String)> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap().to_string();
            announced.push((name, String::new()));
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap().to_string();
            let kind = parts.next().expect("TYPE has a kind").to_string();
            assert!(
                matches!(kind.as_str(), "counter" | "gauge" | "histogram" | "summary"),
                "unknown TYPE {kind}"
            );
            let slot = announced
                .iter_mut()
                .rfind(|(n, _)| *n == name)
                .expect("TYPE follows HELP");
            slot.1 = kind;
            continue;
        }
        assert!(!line.is_empty(), "no blank lines in the exposition");
        // name[{labels}] value
        let (selector, value) = line.rsplit_once(' ').expect("sample has a value");
        value.parse::<f64>().expect("sample value is a float");
        let name = selector.split('{').next().unwrap();
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name {name}"
        );
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| announced.iter().any(|(n, k)| n == f && k == "histogram"))
            .unwrap_or(name);
        let (_, kind) = announced
            .iter()
            .find(|(n, _)| n == family)
            .unwrap_or_else(|| panic!("sample {name} has no HELP/TYPE"));
        if name.ends_with("_total") {
            assert_eq!(kind, "counter", "{name} should be a counter");
        }
        // Labels, when present, are key="escaped value" pairs.
        if let Some(labels) = selector
            .split_once('{')
            .map(|(_, l)| l.strip_suffix('}').expect("closed label set"))
        {
            for pair in labels.split(',') {
                let (key, val) = pair.split_once('=').expect("label has =");
                assert!(key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
                assert!(val.starts_with('"') && val.ends_with('"'), "quoted {val}");
            }
        }
    }
    // Histogram buckets: cumulative in le, +Inf equals _count.
    for shard_label in ["shard=\"0\""] {
        let prefix = format!("pit_serve_wave_flush_ns_bucket{{{shard_label},le=");
        let mut lastv = 0.0;
        let mut inf = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix(&prefix) {
                let value: f64 = rest.rsplit_once(' ').unwrap().1.parse().unwrap();
                assert!(value >= lastv, "bucket counts are cumulative");
                lastv = value;
                if rest.starts_with("\"+Inf\"") {
                    inf = Some(value);
                }
            }
        }
        let count = metric(
            &text,
            &format!("pit_serve_wave_flush_ns_count{{{shard_label}}}"),
        );
        assert_eq!(inf, Some(count), "+Inf bucket equals _count");
    }

    // The wave-latency summary carries all three quantiles, non-decreasing
    // in q (p50 ≤ p99 ≤ p99.9 by construction of the merged histogram).
    let quantiles: Vec<f64> = ["0.5", "0.99", "0.999"]
        .iter()
        .map(|q| {
            metric(
                &text,
                &format!("pit_serve_wave_latency_ns{{quantile=\"{q}\"}}"),
            )
        })
        .collect();
    assert_eq!(quantiles.len(), 3);
    assert!(
        quantiles.windows(2).all(|w| w[0] <= w[1]),
        "summary quantiles must be non-decreasing: {quantiles:?}"
    );

    handle.shutdown();
}

/// Model names land in label values escaped, never truncating the scrape.
#[test]
fn weird_model_names_are_escaped_in_labels() {
    let plan = searched_plan(65);
    let server = Server::bind_models(
        vec![(r#"we"ird\model"#.into(), ServeEngine::F32(plan))],
        r#"we"ird\model"#,
        metrics_config(),
    )
    .expect("bind");
    let metrics_addr = server.metrics_addr().expect("sidecar bound");
    let handle = server.spawn();
    let (status, _head, text) = http_get(metrics_addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        text.contains(r#"model="we\"ird\\model""#),
        "escaped label value present: {text}"
    );
    handle.shutdown();
}

/// `/healthz` must flip 200 → 503 the moment a graceful drain starts,
/// while the drain grace keeps the daemon serving reads.
#[test]
fn healthz_flips_to_503_during_graceful_drain() {
    let plan = searched_plan(66);
    let config = ServerConfig {
        metrics_addr: Some("127.0.0.1:0".into()),
        drain_grace: Duration::from_millis(1500),
        ..ServerConfig::default()
    };
    let server = Server::bind(ServeEngine::F32(plan), config).expect("bind");
    let metrics_addr = server.metrics_addr().expect("sidecar bound");
    let handle = server.spawn();

    // Serving: 200.
    let deadline = Instant::now() + RECV_TIMEOUT;
    loop {
        let (status, _head, body) = http_get(metrics_addr, "/healthz");
        if status == 200 {
            assert!(body.contains("\"serving\""), "{body}");
            break;
        }
        assert!(Instant::now() < deadline, "daemon never reached serving");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Request the drain without waiting for the exit: within the grace
    // window the sidecar must already report draining with a 503.
    handle.request_shutdown();
    let deadline = Instant::now() + RECV_TIMEOUT;
    loop {
        let (status, _head, body) = http_get(metrics_addr, "/healthz");
        if status == 503 {
            assert!(body.contains("\"draining\""), "{body}");
            break;
        }
        assert!(Instant::now() < deadline, "healthz never flipped to 503");
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.shutdown();
}

/// The per-stream event trace, over both the TRACE frame and HTTP.
#[test]
fn trace_reports_the_stream_lifecycle() {
    let plan = searched_plan(67);
    let server = Server::bind(ServeEngine::F32(plan), metrics_config()).expect("bind");
    let addr = server.local_addr();
    let metrics_addr = server.metrics_addr().expect("sidecar bound");
    let handle = server.spawn();

    let mut client = Client::connect(addr).expect("connect");
    client.open(3).expect("open");
    let input = vec![0.5f32; 24 * C];
    client.push(3, C as u32, &input).expect("push");
    let mut got = 0usize;
    while got < 3 {
        if let ServerFrame::Emit { count, .. } = client
            .recv_timeout(RECV_TIMEOUT)
            .expect("transport")
            .expect("emissions arrive")
        {
            got += count as usize;
        }
    }
    client.close(3).expect("close");

    // The close is processed shard-side; poll the TRACE frame until its
    // event lands.
    let deadline = Instant::now() + RECV_TIMEOUT;
    let events = loop {
        let events = client.trace(3).expect("trace");
        if events.iter().any(|e| e.event == "close") {
            break events;
        }
        assert!(Instant::now() < deadline, "close event never traced");
        std::thread::sleep(Duration::from_millis(5));
    };
    let kind_of = |what: &str| events.iter().find(|e| e.event == what);
    let open = kind_of("open").expect("open traced");
    assert_eq!(open.stream, Some(3));
    assert!(open.shard.is_some(), "open is a shard-side event");
    let push = kind_of("push").expect("push traced");
    assert_eq!(push.count, 24, "push event carries the timestep count");
    let emit = kind_of("emit").expect("emit traced");
    assert!(emit.count >= 1);
    let close = kind_of("close").expect("close traced");
    assert_eq!(close.count, 0, "closed by client (reason code 0)");
    // Events are chronological and sequence-ordered.
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq);
        assert!(pair[0].t_us <= pair[1].t_us);
    }
    // All events name the serving model.
    assert!(events.iter().all(|e| !e.model.is_empty()));

    // The same events over HTTP, filtered by the query string.
    let (status, _head, body) = http_get(metrics_addr, "/trace?stream=3");
    assert_eq!(status, 200);
    assert!(body.contains("\"pit-serve-trace/1\""));
    let http_events = pit_serve::TraceEvent::parse_list(&body).expect("parse");
    assert!(http_events
        .iter()
        .any(|e| e.event == "push" && e.count == 24));
    // A filter that matches nothing returns an empty list, not an error.
    let (status, _head, body) = http_get(metrics_addr, "/trace?conn=999999");
    assert_eq!(status, 200);
    let none = pit_serve::TraceEvent::parse_list(&body).expect("parse");
    assert!(none.is_empty());

    handle.shutdown();
}

/// Sidecar hardening: bad methods, unknown paths, oversized request
/// lines and stalled clients must never wedge the daemon.
#[test]
fn sidecar_survives_hostile_http_clients() {
    let plan = searched_plan(68);
    let server = Server::bind(ServeEngine::F32(plan), metrics_config()).expect("bind");
    let addr = server.local_addr();
    let metrics_addr = server.metrics_addr().expect("sidecar bound");
    let handle = server.spawn();

    // Bad method.
    let (status, head, _body) =
        http_request(metrics_addr, b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 405);
    assert!(head.contains("Allow: GET"), "{head}");
    // Unknown path.
    let (status, _head, _body) = http_get(metrics_addr, "/favicon.ico");
    assert_eq!(status, 404);
    // Bad trace query.
    let (status, _head, _body) = http_get(metrics_addr, "/trace?conn=banana");
    assert_eq!(status, 400);
    // Oversized request: 16 KB of request line.
    let mut huge = Vec::from(&b"GET /"[..]);
    huge.extend(std::iter::repeat_n(b'a', 16 * 1024));
    huge.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    let (status, _head, _body) = http_request(metrics_addr, &huge);
    assert_eq!(status, 400);
    // A stalled client (connected, nothing sent) must not block others.
    let stalled = TcpStream::connect(metrics_addr).expect("connect");
    let (status, _head, body) = http_get(metrics_addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("pit_serve_connections_total"));
    drop(stalled);

    // Through all of it the serving daemon itself stays healthy.
    let mut client = Client::connect(addr).expect("connect");
    client.ping(41).expect("ping");
    assert!(matches!(
        client.recv_timeout(RECV_TIMEOUT).unwrap(),
        Some(ServerFrame::Pong { token: 41 })
    ));
    handle.shutdown();
}

/// The trace ring holds 4096 slots and never stops the world to rotate:
/// writers overwrite the oldest slots in place while readers skip any
/// slot caught mid-overwrite. Push enough single-step bursts through one
/// stream to lap the ring, then demand that both read paths — the TRACE
/// frame and the HTTP `/trace` route — serve only coherent, most-recent
/// events: strictly increasing sequence numbers, chronological
/// timestamps, nothing older than one ring's worth, and none of the
/// stream's earliest events (those must have been overwritten).
#[test]
fn trace_ring_wraparound_serves_only_recent_coherent_events() {
    const RING_SLOTS: f64 = 4096.0;
    let plan = searched_plan(73);
    let server = Server::bind(ServeEngine::F32(plan), metrics_config()).expect("bind");
    let addr = server.local_addr();
    let metrics_addr = server.metrics_addr().expect("sidecar bound");
    let handle = server.spawn();

    let mut client = Client::connect(addr).expect("connect");
    client.open(5).expect("open");

    // Every 1-step PUSH records one push event and (once flushed) one
    // emit event, so the ring laps after ~2048 bursts; drive it well
    // past a full lap, draining EMIT frames as we go so backpressure
    // never pauses the experiment.
    let step = vec![0.25f32; C];
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        for _ in 0..64 {
            client.push(5, C as u32, &step).expect("push");
        }
        client.flush().expect("flush");
        while let Some(_frame) = client
            .recv_timeout(Duration::from_millis(1))
            .expect("transport")
        {}
        let (status, _head, body) = http_get(metrics_addr, "/metrics");
        assert_eq!(status, 200);
        if metric(&body, "pit_serve_trace_events_total") >= RING_SLOTS + 512.0 {
            break;
        }
        assert!(Instant::now() < deadline, "ring never lapped");
    }
    // Quiesce so every recorded event is stable before reading.
    let snap = settled_stats(&mut client, |_| true);
    assert!(snap.timesteps_in > RING_SLOTS as u64 / 2);

    let (status, _head, body) = http_get(metrics_addr, "/metrics");
    assert_eq!(status, 200);
    let recorded = metric(&body, "pit_serve_trace_events_total");
    assert!(recorded >= RING_SLOTS + 512.0);

    // Both read paths, same demands.
    let frame_events = client.trace(5).expect("trace frame");
    let (status, _head, body) = http_get(metrics_addr, "/trace?stream=5");
    assert_eq!(status, 200);
    let http_events = pit_serve::TraceEvent::parse_list(&body).expect("parse");
    for (path, events) in [("TRACE frame", &frame_events), ("/trace", &http_events)] {
        assert!(
            !events.is_empty() && events.len() <= RING_SLOTS as usize,
            "{path}: {} events",
            events.len()
        );
        // Coherent: strictly ordered, chronological, all for stream 5.
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "{path}: seq order broken");
            assert!(pair[0].t_us <= pair[1].t_us, "{path}: time order broken");
        }
        assert!(
            events.iter().all(|e| e.stream == Some(5)),
            "{path}: filter leak"
        );
        // Most-recent only: nothing older than one ring behind the write
        // cursor can survive, so the stream's OPEN (its very first
        // event) must be gone and every survivor sits in the last lap.
        assert!(
            events.iter().all(|e| e.event != "open"),
            "{path}: the lapped OPEN event must have been overwritten"
        );
        let oldest = events.first().expect("nonempty").seq;
        assert!(
            (oldest as f64) >= recorded - RING_SLOTS,
            "{path}: event {oldest} is older than one ring ({recorded} recorded)"
        );
    }
    // The ring keeps filling right up to the cursor: the newest surviving
    // event is within the final few waves of the cursor position.
    let newest = frame_events.last().expect("nonempty").seq;
    assert!(
        (newest as f64) >= recorded - 64.0,
        "newest surviving event {newest} lags the cursor {recorded}"
    );

    client.close(5).expect("close");
    handle.shutdown();
}

/// Booting without `metrics_addr` keeps the sidecar off entirely.
#[test]
fn sidecar_is_disabled_by_default() {
    let plan = searched_plan(69);
    let server = Server::bind(ServeEngine::F32(plan), ServerConfig::default()).expect("bind");
    assert_eq!(server.metrics_addr(), None);
    let handle = server.spawn();
    assert_eq!(handle.metrics_addr(), None);
    handle.shutdown();
}
