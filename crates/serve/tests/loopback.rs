//! End-to-end loopback tests: a real daemon on an ephemeral port, real TCP
//! clients, and emissions checked against solo `Session` /
//! `QuantizedSession` runs — within 1e-5 for f32, bit-for-bit for int8.

use pit_infer::{compile_temponet, InferencePlan, QuantizedPlan, QuantizedSession, Session};
use pit_models::{TempoNet, TempoNetConfig};
use pit_nas::SearchableNetwork;
use pit_serve::{
    Client, ClientFrame, CloseReason, ErrorCode, ServeEngine, Server, ServerConfig, ServerFrame,
    StatsSnapshot,
};
use pit_tensor::init;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

const C: usize = 4;
const RECV_TIMEOUT: Duration = Duration::from_secs(10);

fn searched_plan(seed: u64) -> Arc<InferencePlan> {
    let cfg = TempoNetConfig::scaled(8, 64);
    let mut rng = StdRng::seed_from_u64(seed);
    let net = TempoNet::new(&mut rng, &cfg);
    net.set_dilations(&cfg.hand_tuned_dilations());
    Arc::new(compile_temponet(&net))
}

fn quantized_plan(plan: &InferencePlan, seed: u64) -> Arc<QuantizedPlan> {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = init::uniform(&mut rng, &[1, C, 64], 1.0);
    Arc::new(QuantizedPlan::quantize(plan, std::slice::from_ref(&x)).unwrap())
}

fn random_stream(rng: &mut StdRng, steps: usize) -> Vec<f32> {
    (0..steps * C).map(|_| rng.gen::<f32>() - 0.5).collect()
}

/// Drains EMIT frames for one single-stream client until `want` output
/// vectors arrived (other frame kinds are ignored).
fn collect_emissions(client: &mut Client, want: usize, dim: usize) -> Vec<Vec<f32>> {
    let mut out = Vec::new();
    while out.len() < want {
        match client
            .recv_timeout(RECV_TIMEOUT)
            .expect("transport healthy")
            .expect("emissions arrive before the timeout")
        {
            ServerFrame::Emit { outputs, .. } => {
                for chunk in outputs.chunks_exact(dim) {
                    out.push(chunk.to_vec());
                }
            }
            ServerFrame::Opened { .. } | ServerFrame::Closed { .. } => {}
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert_eq!(out.len(), want, "no extra emissions expected");
    out
}

fn assert_f32_close(got: &[Vec<f32>], want: &[Vec<f32>], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: emission count");
    for (a, b) in got.iter().zip(want.iter()) {
        assert_eq!(a.len(), b.len(), "{label}: output dim");
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-5, "{label}: {x} vs {y}");
        }
    }
}

/// 16 concurrent client threads (one connection + one stream each), ragged
/// stream lengths and staggered open/close, against one daemon. Shared
/// scenario for both engines.
fn sixteen_ragged_streams(
    engine: ServeEngine,
    config: ServerConfig,
    mut solo: impl FnMut(&[f32]) -> Vec<Vec<f32>>,
) {
    const STREAMS: usize = 16;
    let server = Server::bind(engine, config).expect("bind ephemeral");
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut rng = StdRng::seed_from_u64(7);
    // Ragged lengths: 8..=68 steps, deliberately crossing the pooled
    // emission period (8) unevenly.
    let inputs: Vec<Vec<f32>> = (0..STREAMS)
        .map(|i| random_stream(&mut rng, 8 + 4 * i))
        .collect();

    let dim = 1usize;
    let workers: Vec<_> = inputs
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, input)| {
            std::thread::spawn(move || -> Vec<Vec<f32>> {
                // Stagger connects and disconnects.
                std::thread::sleep(Duration::from_millis((i as u64 % 5) * 3));
                let mut client = Client::connect(addr).expect("connect");
                client.open(i as u32).expect("open");
                let steps = input.len() / C;
                // Push in ragged bursts: single samples for even streams,
                // multi-step bursts for odd ones.
                let burst = if i % 2 == 0 { 1 } else { 5 };
                let mut pushed = 0;
                while pushed < steps {
                    let take = burst.min(steps - pushed);
                    client
                        .push(i as u32, C as u32, &input[pushed * C..(pushed + take) * C])
                        .expect("push");
                    pushed += take;
                }
                let want = steps / 8; // three stride-2 pools → emit every 8
                let out = collect_emissions(&mut client, want, dim);
                client.close(i as u32).expect("close");
                out
            })
        })
        .collect();

    let results: Vec<Vec<Vec<f32>>> = workers
        .into_iter()
        .map(|w| w.join().expect("worker"))
        .collect();

    let stats = handle.shutdown();
    assert_eq!(stats.streams_opened, STREAMS as u64);
    assert_eq!(
        stats.timesteps_in,
        inputs.iter().map(|i| (i.len() / C) as u64).sum::<u64>()
    );
    assert!(stats.waves > 0);

    for (i, (input, got)) in inputs.iter().zip(results.iter()).enumerate() {
        let want = solo(input);
        assert_f32_close(got, &want, &format!("stream {i}"));
    }
}

#[test]
fn f32_sixteen_ragged_streams_match_solo_sessions() {
    let plan = searched_plan(1);
    let solo_plan = Arc::clone(&plan);
    sixteen_ragged_streams(
        ServeEngine::F32(plan),
        ServerConfig::default(),
        move |input| {
            let mut session = Session::new(Arc::clone(&solo_plan));
            input.chunks(C).filter_map(|s| session.push(s)).collect()
        },
    );
}

#[test]
fn f32_ragged_streams_across_four_shards_match_solo_sessions() {
    let plan = searched_plan(21);
    let solo_plan = Arc::clone(&plan);
    sixteen_ragged_streams(
        ServeEngine::F32(plan),
        ServerConfig {
            shards: 4,
            ..ServerConfig::default()
        },
        move |input| {
            let mut session = Session::new(Arc::clone(&solo_plan));
            input.chunks(C).filter_map(|s| session.push(s)).collect()
        },
    );
}

#[test]
fn i8_sixteen_ragged_streams_match_solo_sessions_bit_for_bit() {
    let plan = searched_plan(2);
    let qplan = quantized_plan(&plan, 3);
    let solo_plan = Arc::clone(&qplan);
    // The shared scenario checks 1e-5; int8 must actually be bit-exact, so
    // re-check equality inside the solo closure by returning the session's
    // own outputs and comparing exactly below.
    let server = Server::bind(ServeEngine::I8(Arc::clone(&qplan)), ServerConfig::default())
        .expect("bind ephemeral");
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut rng = StdRng::seed_from_u64(11);
    let inputs: Vec<Vec<f32>> = (0..16)
        .map(|i| random_stream(&mut rng, 16 + 3 * i))
        .collect();
    let workers: Vec<_> = inputs
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, input)| {
            std::thread::spawn(move || -> Vec<Vec<f32>> {
                let mut client = Client::connect(addr).expect("connect");
                client.open(900 + i as u32).expect("open");
                let steps = input.len() / C;
                client.push(900 + i as u32, C as u32, &input).expect("push");
                collect_emissions(&mut client, steps / 8, 1)
            })
        })
        .collect();
    let results: Vec<Vec<Vec<f32>>> = workers
        .into_iter()
        .map(|w| w.join().expect("worker"))
        .collect();
    handle.shutdown();

    for (i, (input, got)) in inputs.iter().zip(results.iter()).enumerate() {
        let mut session = QuantizedSession::new(Arc::clone(&solo_plan));
        let want: Vec<Vec<f32>> = input.chunks(C).filter_map(|s| session.push(s)).collect();
        assert_eq!(got, &want, "stream {i} must be bit-exact");
    }
}

/// Drains frames until every stream in `want` reached its expected output
/// count, demuxing both v1 EMIT and v2 EMIT_N frames per stream.
fn collect_demuxed(
    client: &mut Client,
    want: &std::collections::HashMap<u32, usize>,
    dim: usize,
) -> (std::collections::HashMap<u32, Vec<Vec<f32>>>, usize) {
    let mut out: std::collections::HashMap<u32, Vec<Vec<f32>>> = std::collections::HashMap::new();
    let mut emit_n_frames = 0usize;
    let done = |out: &std::collections::HashMap<u32, Vec<Vec<f32>>>| {
        want.iter()
            .all(|(sid, &n)| out.get(sid).map_or(n == 0, |v| v.len() >= n))
    };
    while !done(&out) {
        match client
            .recv_timeout(RECV_TIMEOUT)
            .expect("transport healthy")
            .expect("emissions arrive before the timeout")
        {
            ServerFrame::Emit {
                stream_id, outputs, ..
            } => {
                let per = out.entry(stream_id).or_default();
                for chunk in outputs.chunks_exact(dim) {
                    per.push(chunk.to_vec());
                }
            }
            ServerFrame::EmitN {
                entries, outputs, ..
            } => {
                emit_n_frames += 1;
                let mut offset = 0usize;
                for (stream_id, count) in entries {
                    let per = out.entry(stream_id).or_default();
                    let end = offset + count as usize * dim;
                    for chunk in outputs[offset..end].chunks_exact(dim) {
                        per.push(chunk.to_vec());
                    }
                    offset = end;
                }
            }
            ServerFrame::Opened { .. } | ServerFrame::Closed { .. } => {}
            other => panic!("unexpected frame {other:?}"),
        }
    }
    for (sid, &n) in want {
        assert_eq!(
            out.get(sid).map_or(0, Vec::len),
            n,
            "stream {sid}: no extra emissions expected"
        );
    }
    (out, emit_n_frames)
}

/// 32 streams spread over 4 connections and 4 shards, several streams per
/// connection, pushed in interleaved bursts — the demux (stream → shard at
/// OPEN, per-stream reassembly on EMIT) must keep every stream bit-exact
/// with a solo int8 session.
#[test]
fn i8_multi_connection_streams_across_four_shards_are_bit_exact() {
    const CONNS: usize = 4;
    const PER_CONN: usize = 8;
    let plan = searched_plan(31);
    let qplan = quantized_plan(&plan, 32);
    let server = Server::bind(
        ServeEngine::I8(Arc::clone(&qplan)),
        ServerConfig {
            shards: 4,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut rng = StdRng::seed_from_u64(33);
    // Ragged: stream s on conn c runs 8..=64 steps.
    let inputs: Vec<Vec<Vec<f32>>> = (0..CONNS)
        .map(|c| {
            (0..PER_CONN)
                .map(|s| random_stream(&mut rng, 8 + 8 * ((c + 2 * s) % 8)))
                .collect()
        })
        .collect();

    let workers: Vec<_> = inputs
        .iter()
        .cloned()
        .enumerate()
        .map(|(c, conn_inputs)| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for s in 0..PER_CONN {
                    client.open(s as u32).expect("open");
                }
                // Interleave bursts of 4 timesteps round-robin across the
                // connection's streams, so shards see mixed arrivals.
                let mut offsets = [0usize; PER_CONN];
                loop {
                    let mut progressed = false;
                    for (s, input) in conn_inputs.iter().enumerate() {
                        let steps = input.len() / C;
                        if offsets[s] < steps {
                            let take = 4.min(steps - offsets[s]);
                            client
                                .push(
                                    s as u32,
                                    C as u32,
                                    &input[offsets[s] * C..(offsets[s] + take) * C],
                                )
                                .expect("push");
                            offsets[s] += take;
                            progressed = true;
                        }
                    }
                    if !progressed {
                        break;
                    }
                }
                let want: std::collections::HashMap<u32, usize> = conn_inputs
                    .iter()
                    .enumerate()
                    .map(|(s, input)| (s as u32, input.len() / C / 8))
                    .collect();
                let (out, _) = collect_demuxed(&mut client, &want, 1);
                (c, out)
            })
        })
        .collect();

    let results: Vec<_> = workers
        .into_iter()
        .map(|w| w.join().expect("worker"))
        .collect();
    let stats = handle.shutdown();
    assert_eq!(stats.streams_opened, (CONNS * PER_CONN) as u64);
    assert_eq!(stats.shards, 4);

    for (c, out) in results {
        for (s, input) in inputs[c].iter().enumerate() {
            let mut session = QuantizedSession::new(Arc::clone(&qplan));
            let want: Vec<Vec<f32>> = input.chunks(C).filter_map(|x| session.push(x)).collect();
            assert_eq!(
                out.get(&(s as u32)).map_or(0, Vec::len),
                want.len(),
                "conn {c} stream {s}: emission count"
            );
            assert_eq!(
                out[&(s as u32)],
                want,
                "conn {c} stream {s} must be bit-exact"
            );
        }
    }
}

/// Protocol v2: PUSH_N batches several streams' timesteps into one frame;
/// the server latches the connection into v2 and replies with coalesced
/// EMIT_N frames. Outputs stay bit-exact with solo int8 sessions.
#[test]
fn push_n_batches_serve_bit_exact_and_reply_with_emit_n() {
    const STREAMS: usize = 6;
    const STEPS: usize = 32;
    let plan = searched_plan(41);
    let qplan = quantized_plan(&plan, 42);
    let server = Server::bind(
        ServeEngine::I8(Arc::clone(&qplan)),
        ServerConfig {
            shards: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut rng = StdRng::seed_from_u64(43);
    let inputs: Vec<Vec<f32>> = (0..STREAMS)
        .map(|_| random_stream(&mut rng, STEPS))
        .collect();

    let mut client = Client::connect(addr).expect("connect");
    for s in 0..STREAMS {
        client.open(s as u32).expect("open");
    }
    // Push all streams 8 timesteps at a time through single PUSH_N frames.
    for round in 0..STEPS / 8 {
        let entries: Vec<(u32, u32)> = (0..STREAMS).map(|s| (s as u32, 8)).collect();
        let samples: Vec<f32> = inputs
            .iter()
            .flat_map(|input| input[round * 8 * C..(round + 1) * 8 * C].iter().copied())
            .collect();
        client.push_n(C as u32, &entries, &samples).expect("push_n");
    }
    let want: std::collections::HashMap<u32, usize> =
        (0..STREAMS as u32).map(|s| (s, STEPS / 8)).collect();
    let (out, emit_n_frames) = collect_demuxed(&mut client, &want, 1);
    assert!(
        emit_n_frames > 0,
        "a PUSH_N connection must get coalesced EMIT_N replies"
    );
    handle.shutdown();

    for (s, input) in inputs.iter().enumerate() {
        let mut session = QuantizedSession::new(Arc::clone(&qplan));
        let solo: Vec<Vec<f32>> = input.chunks(C).filter_map(|x| session.push(x)).collect();
        assert_eq!(out[&(s as u32)], solo, "stream {s} must be bit-exact");
    }
}

/// A connection with streams pinned across all shards drops mid-sweep
/// (queued timesteps unflushed). Every shard must reclaim its slots and the
/// server-wide budget must free up for a new connection.
#[test]
fn mid_sweep_disconnect_reclaims_slots_on_every_shard() {
    const STREAMS: usize = 8;
    let plan = searched_plan(51);
    let server = Server::bind(
        ServeEngine::F32(plan),
        ServerConfig {
            shards: 4,
            max_streams: STREAMS,
            // Slow tick: the disconnect lands while pushes are queued.
            tick: Duration::from_millis(200),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut rng = StdRng::seed_from_u64(53);
    {
        let mut doomed = Client::connect(addr).expect("connect");
        for s in 0..STREAMS {
            doomed.open(s as u32).expect("open");
        }
        // Read the OPENED acks before vanishing: a socket dropped with
        // unread replies resets the connection, and a reset may discard
        // frames still in flight toward the server — the test pins down
        // slot reclamation, not TCP loss semantics.
        for _ in 0..STREAMS {
            assert!(matches!(
                doomed.recv_timeout(RECV_TIMEOUT).unwrap(),
                Some(ServerFrame::Opened { .. })
            ));
        }
        for s in 0..STREAMS {
            let input = random_stream(&mut rng, 8);
            doomed.push(s as u32, C as u32, &input).expect("push");
        }
        // Dropped here, mid-sweep: no CLOSE frames, timesteps still queued.
    }

    // All eight slots must come back; cleanup is asynchronous, so retry.
    let mut client = Client::connect(addr).expect("connect");
    let deadline = std::time::Instant::now() + RECV_TIMEOUT;
    let mut opened = 0u32;
    while opened < STREAMS as u32 {
        client.open(100 + opened).expect("open");
        match client.recv_timeout(RECV_TIMEOUT).unwrap() {
            Some(ServerFrame::Opened { stream_id }) => {
                assert_eq!(stream_id, 100 + opened);
                opened += 1;
            }
            Some(ServerFrame::Error {
                code: ErrorCode::ServerFull,
                ..
            }) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    let stats = handle.shutdown();
    assert_eq!(stats.streams_opened, 2 * STREAMS as u64);
    assert_eq!(stats.streams_open, 0);
    assert_eq!(stats.shards, 4);
}

#[test]
fn graceful_drain_delivers_pending_emissions_and_closed_frames() {
    let plan = searched_plan(4);
    let solo_plan = Arc::clone(&plan);
    let server = Server::bind(
        ServeEngine::F32(plan),
        ServerConfig {
            // A slow tick so the shutdown lands while timesteps are queued.
            tick: Duration::from_millis(250),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut rng = StdRng::seed_from_u64(13);
    let input = random_stream(&mut rng, 16);
    let mut client = Client::connect(addr).expect("connect");
    client.open(5).expect("open");
    assert!(matches!(
        client.recv_timeout(RECV_TIMEOUT).unwrap(),
        Some(ServerFrame::Opened { stream_id: 5 })
    ));
    // First burst flushes in the immediate first wave; the second lands
    // inside the 250 ms tick window and is still queued at shutdown — the
    // drain must flush it.
    client.push(5, C as u32, &input[..8 * C]).expect("push");
    std::thread::sleep(Duration::from_millis(30));
    client.push(5, C as u32, &input[8 * C..]).expect("push");
    std::thread::sleep(Duration::from_millis(30));
    let stats = handle.shutdown();
    assert_eq!(stats.timesteps_in, 16);
    assert_eq!(stats.emissions_out, 2);

    let mut outputs = Vec::new();
    let mut closed = false;
    while let Ok(Some(frame)) = client.recv_timeout(Duration::from_secs(2)) {
        match frame {
            ServerFrame::Emit { outputs: o, .. } => {
                outputs.extend(o.chunks_exact(1).map(|c| c.to_vec()))
            }
            ServerFrame::Closed { stream_id, reason } => {
                assert_eq!(stream_id, 5);
                assert_eq!(reason, CloseReason::Drained);
                closed = true;
            }
            other => panic!("unexpected frame {other:?}"),
        }
        if closed && outputs.len() >= 2 {
            break;
        }
    }
    assert!(closed, "drain must notify the stream");
    let mut session = Session::new(solo_plan);
    let want: Vec<Vec<f32>> = input.chunks(C).filter_map(|s| session.push(s)).collect();
    assert_f32_close(&outputs, &want, "drained stream");
}

#[test]
fn idle_streams_are_evicted_and_slots_recycled() {
    let plan = searched_plan(5);
    let server = Server::bind(
        ServeEngine::F32(plan),
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(50)),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut client = Client::connect(addr).expect("connect");
    client.open(1).expect("open");
    assert!(matches!(
        client.recv_timeout(RECV_TIMEOUT).unwrap(),
        Some(ServerFrame::Opened { stream_id: 1 })
    ));
    // Stop pushing; the stream must be evicted.
    let frame = client.recv_timeout(RECV_TIMEOUT).unwrap();
    assert!(
        matches!(
            frame,
            Some(ServerFrame::Closed {
                stream_id: 1,
                reason: CloseReason::IdleEvicted,
            })
        ),
        "expected eviction, got {frame:?}"
    );
    // The id is free again on this connection.
    client.open(1).expect("reopen");
    assert!(matches!(
        client.recv_timeout(RECV_TIMEOUT).unwrap(),
        Some(ServerFrame::Opened { stream_id: 1 })
    ));
    let stats = handle.shutdown();
    assert_eq!(stats.streams_evicted, 1);
    assert_eq!(stats.streams_opened, 2);
}

#[test]
fn backpressure_cap_rejects_oversized_pushes() {
    let plan = searched_plan(6);
    let server = Server::bind(
        ServeEngine::F32(plan),
        ServerConfig {
            max_pending_per_conn: 12,
            // A leisurely tick so later bursts land while earlier ones are
            // still queued.
            tick: Duration::from_millis(200),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut client = Client::connect(addr).expect("connect");
    client.open(0).expect("open");
    let mut rng = StdRng::seed_from_u64(17);
    let burst = random_stream(&mut rng, 8);
    // Three 8-step bursts against a 12-step cap: wherever the first wave
    // lands relative to these, at least one burst finds ≥ 8 steps already
    // queued and must be rejected.
    client.push(0, C as u32, &burst).expect("push 1");
    client.push(0, C as u32, &burst).expect("push 2");
    client.push(0, C as u32, &burst).expect("push 3");
    let mut saw_backpressure = false;
    for _ in 0..8 {
        match client.recv_timeout(Duration::from_secs(2)).unwrap() {
            Some(ServerFrame::Error { code, .. }) => {
                assert_eq!(code, ErrorCode::Backpressure);
                saw_backpressure = true;
                break;
            }
            Some(_) => {}
            None => break,
        }
    }
    assert!(saw_backpressure, "a burst must trip the cap");
    let stats = handle.shutdown();
    assert!(
        stats.frames_rejected >= 1,
        "rejected: {}",
        stats.frames_rejected
    );
    assert!(
        stats.timesteps_in <= 16,
        "rejected bursts must not enqueue (got {})",
        stats.timesteps_in
    );
}

#[test]
fn stats_frame_reports_live_counters() {
    let plan = searched_plan(8);
    let server = Server::bind(ServeEngine::F32(plan), ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut client = Client::connect(addr).expect("connect");
    client.open(0).expect("open");
    let mut rng = StdRng::seed_from_u64(19);
    client
        .push(0, C as u32, &random_stream(&mut rng, 16))
        .expect("push");
    let _ = collect_emissions(&mut client, 2, 1);
    client.ping(0xDEAD).expect("ping");
    assert!(matches!(
        client.recv_timeout(RECV_TIMEOUT).unwrap(),
        Some(ServerFrame::Pong { token: 0xDEAD })
    ));
    client.stats().expect("stats");
    let Some(ServerFrame::StatsJson { json }) = client.recv_timeout(RECV_TIMEOUT).unwrap() else {
        panic!("expected stats json")
    };
    let snap = StatsSnapshot::from_json_str(&json).expect("stats json parses");
    assert_eq!(snap.kind, "f32");
    assert_eq!(snap.model, "TEMPONet-plan");
    assert_eq!(snap.streams_open, 1);
    assert_eq!(snap.timesteps_in, 16);
    assert_eq!(snap.emissions_out, 2);
    assert!(snap.waves > 0 && snap.wave_p50_ns > 0);
    assert!(snap.wave_occupancy > 0.0);
    handle.shutdown();
}

#[test]
fn server_boots_from_artifact_file_and_hot_swaps_models() {
    let plan = searched_plan(9);
    let qplan = quantized_plan(&plan, 10);
    let dir = std::env::temp_dir().join(format!("pit-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let f32_path = dir.join("model_f32.json");
    let i8_path = dir.join("model_i8.json");
    std::fs::write(&f32_path, plan.to_artifact_string()).expect("write f32 artifact");
    std::fs::write(&i8_path, qplan.to_artifact_string()).expect("write i8 artifact");

    // Boot from the f32 file.
    let server = Server::bind_artifact(&f32_path, ServerConfig::default()).expect("boot");
    let addr = server.local_addr();
    let handle = server.spawn();
    let mut client = Client::connect(addr).expect("connect");

    // Replacing the model a live stream runs on must be refused...
    client.open(0).expect("open");
    assert!(matches!(
        client.recv_timeout(RECV_TIMEOUT).unwrap(),
        Some(ServerFrame::Opened { .. })
    ));
    client
        .send(&ClientFrame::LoadModel {
            path: f32_path.display().to_string(),
        })
        .expect("send");
    assert!(matches!(
        client.recv_timeout(RECV_TIMEOUT).unwrap(),
        Some(ServerFrame::Error {
            code: ErrorCode::StreamsActive,
            ..
        })
    ));

    // ...but loading a *differently named* artifact while that stream is
    // still open is an add, not a replace, and goes through.
    client
        .send(&ClientFrame::LoadModel {
            path: i8_path.display().to_string(),
        })
        .expect("send");
    let Some(ServerFrame::ModelLoaded { name }) = client.recv_timeout(RECV_TIMEOUT).unwrap() else {
        panic!("expected model add")
    };
    assert_eq!(name, "TEMPONet-plan-int8");

    // After closing, the same-name replace goes through too.
    client.close(0).expect("close");
    assert!(matches!(
        client.recv_timeout(RECV_TIMEOUT).unwrap(),
        Some(ServerFrame::Closed { .. })
    ));
    client
        .send(&ClientFrame::LoadModel {
            path: f32_path.display().to_string(),
        })
        .expect("send");
    let Some(ServerFrame::ModelLoaded { name }) = client.recv_timeout(RECV_TIMEOUT).unwrap() else {
        panic!("expected model swap")
    };
    assert_eq!(name, "TEMPONet-plan");

    // A nonexistent path fails cleanly, daemon stays up.
    client
        .send(&ClientFrame::LoadModel {
            path: dir.join("missing.json").display().to_string(),
        })
        .expect("send");
    assert!(matches!(
        client.recv_timeout(RECV_TIMEOUT).unwrap(),
        Some(ServerFrame::Error {
            code: ErrorCode::LoadFailed,
            ..
        })
    ));

    // And the added int8 model actually serves, selected by name.
    client
        .open_with_model(1, "TEMPONet-plan-int8")
        .expect("open on i8");
    assert!(matches!(
        client.recv_timeout(RECV_TIMEOUT).unwrap(),
        Some(ServerFrame::Opened { .. })
    ));
    let mut rng = StdRng::seed_from_u64(23);
    let input = random_stream(&mut rng, 8);
    client.push(1, C as u32, &input).expect("push");
    let got = collect_emissions(&mut client, 1, 1);
    let mut session = QuantizedSession::new(qplan);
    let want: Vec<Vec<f32>> = input.chunks(C).filter_map(|s| session.push(s)).collect();
    assert_eq!(got, want, "added model must serve bit-exactly");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disconnect_without_close_frees_the_streams() {
    let plan = searched_plan(12);
    let server = Server::bind(
        ServeEngine::F32(plan),
        ServerConfig {
            max_streams: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    {
        let mut doomed = Client::connect(addr).expect("connect");
        doomed.open(0).expect("open");
        doomed.open(1).expect("open");
        assert!(matches!(
            doomed.recv_timeout(RECV_TIMEOUT).unwrap(),
            Some(ServerFrame::Opened { .. })
        ));
        assert!(matches!(
            doomed.recv_timeout(RECV_TIMEOUT).unwrap(),
            Some(ServerFrame::Opened { .. })
        ));
        // Dropped here: the TCP connection closes without CLOSE frames.
    }

    // The server must reclaim both slots; a new client can fill the pool.
    let mut client = Client::connect(addr).expect("connect");
    let deadline = std::time::Instant::now() + RECV_TIMEOUT;
    loop {
        client.open(7).expect("open");
        match client.recv_timeout(RECV_TIMEOUT).unwrap() {
            Some(ServerFrame::Opened { stream_id: 7 }) => break,
            Some(ServerFrame::Error {
                code: ErrorCode::ServerFull,
                ..
            }) if std::time::Instant::now() < deadline => {
                // Disconnect cleanup is asynchronous; retry.
                std::thread::sleep(Duration::from_millis(10));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    let stats = handle.shutdown();
    assert_eq!(stats.streams_open, 0);
}
