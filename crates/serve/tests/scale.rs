//! The thousand-stream sweep: 1024 concurrent streams (32 connections ×
//! 32 streams each) against one daemon — event-driven edge, four
//! wave-batcher shards — with every stream's emissions checked bit-exactly
//! against a solo int8 session. No per-connection server threads exist to
//! make this cheap; the edge multiplexes all 32 sockets in one poll loop.

use pit_infer::{compile_temponet, InferencePlan, QuantizedPlan, QuantizedSession};
use pit_models::{TempoNet, TempoNetConfig};
use pit_nas::SearchableNetwork;
use pit_serve::{Client, ServeEngine, Server, ServerConfig, ServerFrame};
use pit_tensor::init;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

const C: usize = 4;
const CONNS: usize = 32;
const PER_CONN: usize = 32;
const STEPS: usize = 16;
const RECV_TIMEOUT: Duration = Duration::from_secs(60);

fn quantized_fixture() -> Arc<QuantizedPlan> {
    let cfg = TempoNetConfig::scaled(8, 64);
    let mut rng = StdRng::seed_from_u64(61);
    let net = TempoNet::new(&mut rng, &cfg);
    net.set_dilations(&cfg.hand_tuned_dilations());
    let plan: InferencePlan = compile_temponet(&net);
    let x = init::uniform(&mut rng, &[1, C, 64], 1.0);
    Arc::new(QuantizedPlan::quantize(&plan, std::slice::from_ref(&x)).unwrap())
}

/// Deterministic per-stream input so workers and the solo checker agree
/// without sharing buffers.
fn stream_input(conn: usize, stream: usize) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(7_000 + (conn * PER_CONN + stream) as u64);
    (0..STEPS * C).map(|_| rng.gen::<f32>() - 0.5).collect()
}

#[test]
fn thousand_stream_sweep_is_bit_exact_under_the_event_driven_edge() {
    let qplan = quantized_fixture();
    let server = Server::bind(
        ServeEngine::I8(Arc::clone(&qplan)),
        ServerConfig {
            shards: 4,
            max_streams: CONNS * PER_CONN,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    let workers: Vec<_> = (0..CONNS)
        .map(|conn| {
            std::thread::spawn(move || -> HashMap<u32, Vec<Vec<f32>>> {
                let mut client = Client::connect(addr).expect("connect");
                for s in 0..PER_CONN {
                    client.open(s as u32).expect("open");
                }
                let inputs: Vec<Vec<f32>> = (0..PER_CONN).map(|s| stream_input(conn, s)).collect();
                // Protocol v2 at scale: each 8-step round ships one PUSH_N
                // frame carrying all 32 streams of this connection.
                for round in 0..STEPS / 8 {
                    let entries: Vec<(u32, u32)> = (0..PER_CONN).map(|s| (s as u32, 8)).collect();
                    let samples: Vec<f32> = inputs
                        .iter()
                        .flat_map(|input| input[round * 8 * C..(round + 1) * 8 * C].iter().copied())
                        .collect();
                    client.push_n(C as u32, &entries, &samples).expect("push_n");
                }
                let want_per_stream = STEPS / 8;
                let mut out: HashMap<u32, Vec<Vec<f32>>> = HashMap::new();
                let done = |out: &HashMap<u32, Vec<Vec<f32>>>| {
                    out.len() == PER_CONN && out.values().all(|v| v.len() >= want_per_stream)
                };
                while !done(&out) {
                    match client
                        .recv_timeout(RECV_TIMEOUT)
                        .expect("transport healthy")
                        .expect("emissions arrive before the timeout")
                    {
                        ServerFrame::Emit {
                            stream_id, outputs, ..
                        } => out
                            .entry(stream_id)
                            .or_default()
                            .extend(outputs.chunks_exact(1).map(|c| c.to_vec())),
                        ServerFrame::EmitN {
                            entries, outputs, ..
                        } => {
                            let mut offset = 0usize;
                            for (stream_id, count) in entries {
                                let end = offset + count as usize;
                                out.entry(stream_id).or_default().extend(
                                    outputs[offset..end].chunks_exact(1).map(|c| c.to_vec()),
                                );
                                offset = end;
                            }
                        }
                        ServerFrame::Opened { .. } | ServerFrame::Closed { .. } => {}
                        other => panic!("conn {conn}: unexpected frame {other:?}"),
                    }
                }
                for s in 0..PER_CONN {
                    client.close(s as u32).expect("close");
                }
                out
            })
        })
        .collect();

    let results: Vec<HashMap<u32, Vec<Vec<f32>>>> = workers
        .into_iter()
        .map(|w| w.join().expect("worker"))
        .collect();

    let stats = handle.shutdown();
    assert_eq!(stats.streams_opened, (CONNS * PER_CONN) as u64);
    assert_eq!(stats.timesteps_in, (CONNS * PER_CONN * STEPS) as u64);
    assert_eq!(stats.emissions_out, (CONNS * PER_CONN * STEPS / 8) as u64);
    assert_eq!(stats.shards, 4);
    assert_eq!(stats.streams_open, 0);
    assert!(stats.waves > 0);

    // Every one of the 1024 streams, bit for bit.
    for (conn, out) in results.iter().enumerate() {
        for s in 0..PER_CONN {
            let input = stream_input(conn, s);
            let mut session = QuantizedSession::new(Arc::clone(&qplan));
            let want: Vec<Vec<f32>> = input.chunks(C).filter_map(|x| session.push(x)).collect();
            assert_eq!(
                out[&(s as u32)],
                want,
                "conn {conn} stream {s} must be bit-exact"
            );
        }
    }
}
