//! Multi-model registry end to end: one daemon serving an f32 plan and its
//! int8 lowering side by side, streams selecting per-OPEN — interleaved
//! traffic must match solo sessions (1e-5 for f32, bit-for-bit for int8),
//! stats must break down per model, and per-stream channel validation must
//! follow each stream's own model.

use pit_infer::{
    compile_generic, compile_temponet, InferencePlan, QuantizedPlan, QuantizedSession, Session,
};
use pit_models::{GenericTcn, GenericTcnConfig, TempoNet, TempoNetConfig};
use pit_nas::SearchableNetwork;
use pit_serve::{
    Client, ClientFrame, ErrorCode, ServeEngine, Server, ServerConfig, ServerFrame, StatsSnapshot,
};
use pit_tensor::init;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

const C: usize = 4;
const RECV_TIMEOUT: Duration = Duration::from_secs(10);

fn searched_plan(seed: u64) -> Arc<InferencePlan> {
    let cfg = TempoNetConfig::scaled(8, 64);
    let mut rng = StdRng::seed_from_u64(seed);
    let net = TempoNet::new(&mut rng, &cfg);
    net.set_dilations(&cfg.hand_tuned_dilations());
    Arc::new(compile_temponet(&net))
}

fn quantized_plan(plan: &InferencePlan, seed: u64) -> Arc<QuantizedPlan> {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = init::uniform(&mut rng, &[1, C, 64], 1.0);
    Arc::new(QuantizedPlan::quantize(plan, std::slice::from_ref(&x)).unwrap())
}

fn random_stream(rng: &mut StdRng, steps: usize, channels: usize) -> Vec<f32> {
    (0..steps * channels)
        .map(|_| rng.gen::<f32>() - 0.5)
        .collect()
}

fn collect_emissions(client: &mut Client, want: usize, dim: usize) -> Vec<Vec<f32>> {
    let mut out = Vec::new();
    while out.len() < want {
        match client
            .recv_timeout(RECV_TIMEOUT)
            .expect("transport healthy")
            .expect("emissions arrive before the timeout")
        {
            ServerFrame::Emit { outputs, .. } => {
                for chunk in outputs.chunks_exact(dim) {
                    out.push(chunk.to_vec());
                }
            }
            ServerFrame::Opened { .. } | ServerFrame::Closed { .. } => {}
            other => panic!("unexpected frame {other:?}"),
        }
    }
    out
}

/// Two models — the f32 plan and its int8 lowering — in one registry;
/// 8 threads alternate between them on interleaved connections. Every f32
/// stream matches a solo `Session` within 1e-5; every int8 stream matches
/// a solo `QuantizedSession` bit for bit. The shutdown snapshot carries a
/// per-model breakdown whose counters sum to the totals.
#[test]
fn f32_and_i8_models_interleave_and_match_solo_sessions() {
    let plan = searched_plan(41);
    let qplan = quantized_plan(&plan, 42);
    let server = Server::bind_models(
        vec![
            ("fp".into(), ServeEngine::F32(Arc::clone(&plan))),
            ("q8".into(), ServeEngine::I8(Arc::clone(&qplan))),
        ],
        "fp",
        ServerConfig::default(),
    )
    .expect("bind registry");
    let addr = server.local_addr();
    let handle = server.spawn();

    const STREAMS: usize = 8;
    let mut rng = StdRng::seed_from_u64(5);
    let inputs: Vec<Vec<f32>> = (0..STREAMS)
        .map(|i| random_stream(&mut rng, 16 + 8 * i, C))
        .collect();

    let workers: Vec<_> = inputs
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, input)| {
            std::thread::spawn(move || -> Vec<Vec<f32>> {
                std::thread::sleep(Duration::from_millis((i as u64 % 3) * 5));
                let mut client = Client::connect(addr).expect("connect");
                let model = if i % 2 == 0 { "fp" } else { "q8" };
                client.open_with_model(i as u32, model).expect("open");
                let steps = input.len() / C;
                // Ragged bursts so waves interleave both models.
                let burst = if i % 2 == 0 { 3 } else { 7 };
                let mut pushed = 0;
                while pushed < steps {
                    let take = burst.min(steps - pushed);
                    client
                        .push(i as u32, C as u32, &input[pushed * C..(pushed + take) * C])
                        .expect("push");
                    pushed += take;
                }
                let out = collect_emissions(&mut client, steps / 8, 1);
                client.close(i as u32).expect("close");
                out
            })
        })
        .collect();
    let results: Vec<Vec<Vec<f32>>> = workers
        .into_iter()
        .map(|w| w.join().expect("worker"))
        .collect();

    let stats = handle.shutdown();
    for (i, (input, got)) in inputs.iter().zip(results.iter()).enumerate() {
        if i % 2 == 0 {
            let mut session = Session::new(Arc::clone(&plan));
            let want: Vec<Vec<f32>> = input.chunks(C).filter_map(|s| session.push(s)).collect();
            assert_eq!(got.len(), want.len(), "f32 stream {i}: emission count");
            for (a, b) in got.iter().zip(want.iter()) {
                for (x, y) in a.iter().zip(b.iter()) {
                    assert!((x - y).abs() < 1e-5, "f32 stream {i}: {x} vs {y}");
                }
            }
        } else {
            let mut session = QuantizedSession::new(Arc::clone(&qplan));
            let want: Vec<Vec<f32>> = input.chunks(C).filter_map(|s| session.push(s)).collect();
            assert_eq!(got, &want, "i8 stream {i} must be bit-exact");
        }
    }

    // Per-model breakdown: both models saw traffic and the counters sum to
    // the connection-level totals.
    assert_eq!(stats.models.len(), 2);
    let fp = stats.models.iter().find(|m| m.name == "fp").expect("fp");
    let q8 = stats.models.iter().find(|m| m.name == "q8").expect("q8");
    assert_eq!(fp.kind, "f32");
    assert_eq!(q8.kind, "i8");
    assert_eq!(fp.streams_opened, (STREAMS / 2) as u64);
    assert_eq!(q8.streams_opened, (STREAMS / 2) as u64);
    assert_eq!(
        fp.timesteps_in + q8.timesteps_in,
        stats.timesteps_in,
        "model breakdown sums to the totals"
    );
    assert_eq!(fp.emissions_out + q8.emissions_out, stats.emissions_out);
    assert!(fp.waves > 0 && q8.waves > 0);
}

/// The registry lists over the wire: LIST_MODELS returns every model with
/// its geometry, exactly one marked default, and live stream gauges.
#[test]
fn list_models_reports_the_registry_with_live_gauges() {
    let plan = searched_plan(43);
    let qplan = quantized_plan(&plan, 44);
    let server = Server::bind_models(
        vec![
            ("fp".into(), ServeEngine::F32(Arc::clone(&plan))),
            ("q8".into(), ServeEngine::I8(qplan)),
        ],
        "q8",
        ServerConfig::default(),
    )
    .expect("bind registry");
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut client = Client::connect(addr).expect("connect");
    client.open_with_model(0, "fp").expect("open");
    assert!(matches!(
        client.recv_timeout(RECV_TIMEOUT).unwrap(),
        Some(ServerFrame::Opened { .. })
    ));
    let listed = client.list_models().expect("LIST_MODELS");
    assert_eq!(listed.len(), 2);
    let fp = listed.iter().find(|m| m.name == "fp").expect("fp listed");
    let q8 = listed.iter().find(|m| m.name == "q8").expect("q8 listed");
    assert_eq!(fp.kind, "f32");
    assert_eq!(fp.input_channels, C);
    assert_eq!(fp.output_dim, 1);
    assert!(fp.receptive_field > 0);
    assert_eq!(fp.streams_open, 1);
    assert_eq!(q8.streams_open, 0);
    assert!(!fp.default);
    assert!(q8.default, "the configured default is q8");

    // A model-less OPEN lands on the default.
    client.open(1).expect("open default");
    assert!(matches!(
        client.recv_timeout(RECV_TIMEOUT).unwrap(),
        Some(ServerFrame::Opened { .. })
    ));
    let listed = client.list_models().expect("LIST_MODELS");
    let q8 = listed.iter().find(|m| m.name == "q8").expect("q8 listed");
    assert_eq!(q8.streams_open, 1);

    handle.shutdown();
}

/// Regression for the registry channel-count audit: with models of
/// *different* input widths in one registry, PUSH validation must follow
/// the stream's own model — the 1-channel stream takes 1-channel pushes
/// and refuses 4-channel ones, and vice versa, on the same connection.
#[test]
fn push_channel_validation_follows_each_streams_model() {
    let narrow = {
        let mut rng = StdRng::seed_from_u64(3);
        let net = GenericTcn::new(&mut rng, &GenericTcnConfig::tiny());
        net.set_dilations(&[2, 4]);
        Arc::new(compile_generic(&net))
    };
    assert_eq!(narrow.input_channels(), 1);
    let wide = searched_plan(45);
    assert_eq!(wide.input_channels(), C);

    let server = Server::bind_models(
        vec![
            ("narrow".into(), ServeEngine::F32(narrow)),
            ("wide".into(), ServeEngine::F32(wide)),
        ],
        "narrow",
        ServerConfig::default(),
    )
    .expect("bind registry");
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut client = Client::connect(addr).expect("connect");
    client.open_with_model(0, "narrow").expect("open");
    client.open_with_model(1, "wide").expect("open");
    for _ in 0..2 {
        assert!(matches!(
            client.recv_timeout(RECV_TIMEOUT).unwrap(),
            Some(ServerFrame::Opened { .. })
        ));
    }

    // Wrong width for the stream's model → BadFrame, even though the other
    // registry model would accept it.
    client.push(0, C as u32, &[0.1; C]).expect("send");
    match client.recv_timeout(RECV_TIMEOUT).expect("transport") {
        Some(ServerFrame::Error { code, message }) => {
            assert_eq!(code, ErrorCode::BadFrame);
            assert!(message.contains("narrow"), "{message}");
        }
        other => panic!("expected BadFrame, got {other:?}"),
    }
    client.push(1, 1, &[0.1]).expect("send");
    match client.recv_timeout(RECV_TIMEOUT).expect("transport") {
        Some(ServerFrame::Error { code, message }) => {
            assert_eq!(code, ErrorCode::BadFrame);
            assert!(message.contains("wide"), "{message}");
        }
        other => panic!("expected BadFrame, got {other:?}"),
    }

    // The right widths flow on both streams of the same connection.
    client.push(0, 1, &[0.5, 0.5]).expect("send");
    client.push(1, C as u32, &[0.5; 2 * C]).expect("send");
    // The edge answers STATS as soon as it has *forwarded* the pushes; the
    // timestep counters are bumped on the shard threads. The snapshot's
    // `settled` flag says whether any routed events or queued timesteps
    // are still in flight — poll on it rather than on counter values.
    let deadline = Instant::now() + RECV_TIMEOUT;
    let snap = loop {
        client.stats().expect("stats");
        let json = loop {
            match client.recv_timeout(RECV_TIMEOUT).expect("transport") {
                Some(ServerFrame::StatsJson { json }) => break json,
                Some(ServerFrame::Emit { .. }) => continue,
                other => panic!("unexpected frame {other:?}"),
            }
        };
        let snap = StatsSnapshot::from_json_str(&json).expect("stats parse");
        if snap.settled {
            break snap;
        }
        assert!(
            Instant::now() < deadline,
            "shards never processed the pushes: {json}"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(snap.timesteps_in, 4, "2 narrow + 2 wide steps enqueued");
    let narrow_stats = snap.models.iter().find(|m| m.name == "narrow").unwrap();
    let wide_stats = snap.models.iter().find(|m| m.name == "wide").unwrap();
    assert_eq!(narrow_stats.timesteps_in, 2);
    assert_eq!(wide_stats.timesteps_in, 2);

    handle.shutdown();
}

/// LOAD_MODEL while traffic is live: four workers stream against the
/// booted f32 model while the main thread *adds* an int8 model to the
/// registry, serves a stream on it, then *replaces* it — all mid-flight.
/// The untouched f32 streams must match solo sessions as if the registry
/// never changed, the int8 stream must be bit-exact, and the shutdown
/// snapshot's per-model breakdown must stay consistent with the totals.
#[test]
fn load_model_during_live_traffic_leaves_streams_bit_exact() {
    let plan = searched_plan(46);
    let qplan = quantized_plan(&plan, 47);
    let dir = std::env::temp_dir().join(format!("pit-serve-chaos-load-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let i8_path = dir.join("model_i8.json");
    std::fs::write(&i8_path, qplan.to_artifact_string()).expect("write i8 artifact");

    let server = Server::bind_models(
        vec![("fp".into(), ServeEngine::F32(Arc::clone(&plan)))],
        "fp",
        ServerConfig::default(),
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    // Four workers keep f32 traffic flowing for the whole registry dance:
    // 4 rounds of 8 steps with sleeps in between (~90 ms of live pushes).
    const WORKERS: usize = 4;
    let mut rng = StdRng::seed_from_u64(48);
    let inputs: Vec<Vec<f32>> = (0..WORKERS)
        .map(|_| random_stream(&mut rng, 32, C))
        .collect();
    let threads: Vec<_> = inputs
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, input)| {
            std::thread::spawn(move || -> Vec<Vec<f32>> {
                let mut client = Client::connect(addr).expect("connect");
                client.open(i as u32).expect("open");
                for round in 0..4 {
                    client
                        .push(
                            i as u32,
                            C as u32,
                            &input[round * 8 * C..(round + 1) * 8 * C],
                        )
                        .expect("push");
                    std::thread::sleep(Duration::from_millis(30));
                }
                let out = collect_emissions(&mut client, 4, 1);
                client.close(i as u32).expect("close");
                out
            })
        })
        .collect();

    // Mid-traffic: LOAD_MODEL adds the int8 artifact beside "fp"...
    std::thread::sleep(Duration::from_millis(15));
    let mut control = Client::connect(addr).expect("connect");
    control
        .send(&ClientFrame::LoadModel {
            path: i8_path.display().to_string(),
        })
        .expect("send");
    let Some(ServerFrame::ModelLoaded { name }) = control.recv_timeout(RECV_TIMEOUT).unwrap()
    else {
        panic!("expected the int8 model to load as an add")
    };
    // ...a stream on the fresh model serves bit-exact while f32 pushes
    // are still in flight...
    control.open_with_model(100, &name).expect("open");
    let q_input = random_stream(&mut rng, 8, C);
    control.push(100, C as u32, &q_input).expect("push");
    let got = collect_emissions(&mut control, 1, 1);
    let mut q_session = QuantizedSession::new(Arc::clone(&qplan));
    let q_want: Vec<Vec<f32>> = q_input
        .chunks(C)
        .filter_map(|s| q_session.push(s))
        .collect();
    assert_eq!(got, q_want, "the hot-loaded int8 stream must be bit-exact");
    control.close(100).expect("close");
    assert!(matches!(
        control.recv_timeout(RECV_TIMEOUT).unwrap(),
        Some(ServerFrame::Closed { stream_id: 100, .. })
    ));
    // ...and with its stream closed, reloading the same artifact is an
    // atomic replace, still under live f32 traffic.
    control
        .send(&ClientFrame::LoadModel {
            path: i8_path.display().to_string(),
        })
        .expect("send");
    let Some(ServerFrame::ModelLoaded { name: swapped }) =
        control.recv_timeout(RECV_TIMEOUT).unwrap()
    else {
        panic!("expected the int8 model to replace in place")
    };
    assert_eq!(swapped, name);

    let results: Vec<Vec<Vec<f32>>> = threads
        .into_iter()
        .map(|t| t.join().expect("worker"))
        .collect();
    for (i, (input, got)) in inputs.iter().zip(results.iter()).enumerate() {
        let mut session = Session::new(Arc::clone(&plan));
        let want: Vec<Vec<f32>> = input.chunks(C).filter_map(|s| session.push(s)).collect();
        assert_eq!(got.len(), want.len(), "f32 stream {i}: emission count");
        for (a, b) in got.iter().zip(want.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert!(
                    (x - y).abs() < 1e-5,
                    "f32 stream {i} must be untouched by the registry dance: {x} vs {y}"
                );
            }
        }
    }

    // Per-model books survive both the add and the replace: counters key
    // the model entry, not the engine instance.
    let stats = handle.shutdown();
    assert_eq!(stats.models.len(), 2);
    let fp = stats.models.iter().find(|m| m.name == "fp").expect("fp");
    let q8 = stats.models.iter().find(|m| m.name == name).expect("i8");
    assert_eq!(fp.streams_opened, WORKERS as u64);
    assert_eq!(q8.streams_opened, 1);
    assert_eq!(fp.timesteps_in, (WORKERS * 32) as u64);
    assert_eq!(q8.timesteps_in, 8);
    assert_eq!(fp.timesteps_in + q8.timesteps_in, stats.timesteps_in);
    assert_eq!(fp.emissions_out + q8.emissions_out, stats.emissions_out);
    assert_eq!(fp.streams_open, 0);
    assert_eq!(q8.streams_open, 0);
}
