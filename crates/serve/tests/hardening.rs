//! Malformed-input hardening: hostile bytes on the wire and corrupt
//! artifacts must produce ERROR frames or clean disconnects — never a
//! daemon panic. Each scenario is followed by a proof of life (a fresh
//! connection that PINGs successfully).

use pit_infer::{compile_generic, InferencePlan};
use pit_models::{GenericTcn, GenericTcnConfig};
use pit_nas::SearchableNetwork;
use pit_serve::{
    Client, ClientFrame, ErrorCode, ServeEngine, ServeError, Server, ServerConfig, ServerFrame,
    ServerHandle, MAX_MODEL_NAME,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const RECV_TIMEOUT: Duration = Duration::from_secs(10);

fn tiny_plan() -> Arc<InferencePlan> {
    let mut rng = StdRng::seed_from_u64(0);
    let net = GenericTcn::new(&mut rng, &GenericTcnConfig::tiny());
    net.set_dilations(&[2, 4]);
    Arc::new(compile_generic(&net))
}

fn spawn_server() -> (SocketAddr, ServerHandle) {
    let server =
        Server::bind(ServeEngine::F32(tiny_plan()), ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    (addr, server.spawn())
}

/// The daemon still answers a PING on a *new* connection.
fn assert_alive(addr: SocketAddr) {
    let mut probe = Client::connect(addr).expect("daemon accepts connections");
    probe.ping(42).expect("ping");
    assert!(
        matches!(
            probe.recv_timeout(RECV_TIMEOUT).expect("transport"),
            Some(ServerFrame::Pong { token: 42 })
        ),
        "daemon must keep serving after hostile input"
    );
}

fn expect_error(client: &mut Client, want: ErrorCode) {
    match client.recv_timeout(RECV_TIMEOUT).expect("transport") {
        Some(ServerFrame::Error { code, .. }) => assert_eq!(code, want),
        other => panic!("expected {want:?} error, got {other:?}"),
    }
}

#[test]
fn truncated_frame_then_disconnect_does_not_kill_the_daemon() {
    let (addr, handle) = spawn_server();
    {
        let mut raw = TcpStream::connect(addr).expect("connect");
        // A length prefix promising 100 bytes, then only 3, then hang up.
        raw.write_all(&100u32.to_le_bytes()).unwrap();
        raw.write_all(&[0x01, 0x02, 0x03]).unwrap();
    }
    assert_alive(addr);
    handle.shutdown();
}

#[test]
fn oversized_length_prefix_is_rejected_without_unbounded_allocation() {
    let (addr, handle) = spawn_server();
    {
        let mut raw = TcpStream::connect(addr).expect("connect");
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        raw.write_all(&[0u8; 64]).unwrap();
        // The server may send an ERROR and/or just drop us; either way it
        // must survive.
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_alive(addr);
    handle.shutdown();
}

#[test]
fn malformed_trace_body_is_a_bad_frame_not_a_panic() {
    let (addr, handle) = spawn_server();
    {
        let mut raw = TcpStream::connect(addr).expect("connect");
        // TRACE promises a u32 stream id; deliver only two bytes of it.
        raw.write_all(&3u32.to_le_bytes()).unwrap();
        raw.write_all(&[0x09, 0x01, 0x02]).unwrap();
        std::thread::sleep(Duration::from_millis(50));
    }
    // A well-formed TRACE on a fresh connection still answers.
    let mut client = Client::connect(addr).expect("connect");
    let events = client.trace(0).expect("trace");
    assert!(events.is_empty(), "fresh connection has no stream events");
    assert_alive(addr);
    handle.shutdown();
}

#[test]
fn unknown_opcode_gets_an_error_and_the_connection_survives() {
    let (addr, handle) = spawn_server();
    let mut client = Client::connect(addr).expect("connect");
    // Hand-craft a frame with opcode 0x7E.
    let mut raw = TcpStream::connect(addr).expect("second connect");
    raw.write_all(&1u32.to_le_bytes()).unwrap();
    raw.write_all(&[0x7E]).unwrap();
    drop(raw);
    // The well-behaved client still works throughout.
    client.ping(7).expect("ping");
    assert!(matches!(
        client.recv_timeout(RECV_TIMEOUT).unwrap(),
        Some(ServerFrame::Pong { token: 7 })
    ));
    assert_alive(addr);
    handle.shutdown();
}

#[test]
fn unknown_opcode_error_arrives_on_the_offending_connection() {
    use pit_serve::protocol::{decode_server, FrameReader, ReadOutcome};
    let (addr, handle) = spawn_server();
    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.write_all(&1u32.to_le_bytes()).unwrap();
    raw.write_all(&[0x7F]).unwrap();
    raw.flush().unwrap();
    raw.set_read_timeout(Some(RECV_TIMEOUT)).unwrap();
    let mut reader = FrameReader::new(raw);
    let body = loop {
        match reader.poll().expect("read") {
            ReadOutcome::Frame(body) => break body,
            ReadOutcome::WouldBlock => continue,
            ReadOutcome::Eof => panic!("server hung up instead of replying"),
        }
    };
    match decode_server(&body).expect("reply decodes") {
        ServerFrame::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownOpcode),
        other => panic!("expected unknown-opcode error, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn push_before_open_is_an_unknown_stream_error() {
    let (addr, handle) = spawn_server();
    let mut client = Client::connect(addr).expect("connect");
    client.push(3, 1, &[0.5]).expect("send");
    expect_error(&mut client, ErrorCode::UnknownStream);
    assert_alive(addr);
    handle.shutdown();
}

#[test]
fn close_before_open_is_an_unknown_stream_error() {
    let (addr, handle) = spawn_server();
    let mut client = Client::connect(addr).expect("connect");
    client.close(3).expect("send");
    expect_error(&mut client, ErrorCode::UnknownStream);
    handle.shutdown();
}

#[test]
fn duplicate_open_is_rejected() {
    let (addr, handle) = spawn_server();
    let mut client = Client::connect(addr).expect("connect");
    client.open(1).expect("send");
    assert!(matches!(
        client.recv_timeout(RECV_TIMEOUT).unwrap(),
        Some(ServerFrame::Opened { stream_id: 1 })
    ));
    client.open(1).expect("send");
    expect_error(&mut client, ErrorCode::DuplicateStream);
    handle.shutdown();
}

#[test]
fn wrong_channel_count_is_a_bad_frame() {
    let (addr, handle) = spawn_server();
    let mut client = Client::connect(addr).expect("connect");
    client.open(0).expect("send");
    assert!(matches!(
        client.recv_timeout(RECV_TIMEOUT).unwrap(),
        Some(ServerFrame::Opened { .. })
    ));
    // The tiny plan takes 1 channel; push 3-channel samples.
    client.push(0, 3, &[0.1, 0.2, 0.3]).expect("send");
    expect_error(&mut client, ErrorCode::BadFrame);
    handle.shutdown();
}

#[test]
fn truncated_push_body_is_a_bad_frame_not_a_panic() {
    let (addr, handle) = spawn_server();
    let mut raw = TcpStream::connect(addr).expect("connect");
    // PUSH claiming 4 timesteps × 1 channel but carrying one value.
    let mut body = vec![0x02];
    body.extend_from_slice(&0u32.to_le_bytes());
    body.extend_from_slice(&4u32.to_le_bytes());
    body.extend_from_slice(&1u32.to_le_bytes());
    body.extend_from_slice(&1.0f32.to_le_bytes());
    raw.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
    raw.write_all(&body).unwrap();
    raw.flush().unwrap();
    std::thread::sleep(Duration::from_millis(50));
    assert_alive(addr);
    handle.shutdown();
}

/// Hand-crafts a PUSH_N frame body: opcode 0x07, channels, an entry count
/// (overridable to lie), `(stream_id, count)` pairs, then samples.
fn raw_push_n(
    channels: u32,
    n_override: Option<u32>,
    entries: &[(u32, u32)],
    samples: &[f32],
) -> Vec<u8> {
    let mut body = vec![0x07];
    body.extend_from_slice(&channels.to_le_bytes());
    body.extend_from_slice(&n_override.unwrap_or(entries.len() as u32).to_le_bytes());
    for &(sid, count) in entries {
        body.extend_from_slice(&sid.to_le_bytes());
        body.extend_from_slice(&count.to_le_bytes());
    }
    for v in samples {
        body.extend_from_slice(&v.to_le_bytes());
    }
    let mut frame = (body.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&body);
    frame
}

#[test]
fn malformed_push_n_counts_error_without_killing_the_daemon() {
    let (addr, handle) = spawn_server();
    // Each case on its own raw connection; the daemon must survive all.
    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("zero entries", raw_push_n(1, None, &[], &[])),
        ("zero channels", raw_push_n(0, None, &[(0, 1)], &[0.5])),
        ("zero-count entry", raw_push_n(1, None, &[(0, 0)], &[])),
        (
            "entry count lies past the payload",
            raw_push_n(1, Some(u32::MAX), &[(0, 1)], &[0.5]),
        ),
        (
            "counts sum past the frame bound",
            raw_push_n(1, None, &[(0, u32::MAX), (1, u32::MAX)], &[0.5]),
        ),
        (
            "payload shorter than the counts claim",
            raw_push_n(1, None, &[(0, 4)], &[0.5]),
        ),
    ];
    for (label, frame) in cases {
        let mut raw = TcpStream::connect(addr).expect("connect");
        raw.write_all(&frame).unwrap();
        raw.flush().unwrap();
        // The reply must be a BAD_FRAME error on the offending connection.
        use pit_serve::protocol::{decode_server, FrameReader, ReadOutcome};
        raw.set_read_timeout(Some(RECV_TIMEOUT)).unwrap();
        let mut reader = FrameReader::new(raw);
        let body = loop {
            match reader.poll().expect("read") {
                ReadOutcome::Frame(body) => break body,
                ReadOutcome::WouldBlock => continue,
                ReadOutcome::Eof => panic!("{label}: server hung up instead of replying"),
            }
        };
        match decode_server(&body).unwrap_or_else(|e| panic!("{label}: reply decodes ({e})")) {
            ServerFrame::Error { code, .. } => {
                assert_eq!(code, ErrorCode::BadFrame, "{label}")
            }
            other => panic!("{label}: expected BAD_FRAME, got {other:?}"),
        }
    }
    assert_alive(addr);
    handle.shutdown();
}

#[test]
fn push_n_with_an_unknown_stream_rejects_the_whole_frame() {
    let (addr, handle) = spawn_server();
    let mut client = Client::connect(addr).expect("connect");
    client.open(0).expect("open");
    assert!(matches!(
        client.recv_timeout(RECV_TIMEOUT).unwrap(),
        Some(ServerFrame::Opened { stream_id: 0 })
    ));
    // Stream 1 was never opened: the whole batch must be refused — stream
    // 0's timesteps must not half-apply.
    client
        .push_n(1, &[(0, 2), (1, 2)], &[0.1, 0.2, 0.3, 0.4])
        .expect("send");
    expect_error(&mut client, ErrorCode::UnknownStream);
    client.stats().expect("stats");
    let Some(ServerFrame::StatsJson { json }) = client.recv_timeout(RECV_TIMEOUT).unwrap() else {
        panic!("expected stats json")
    };
    let snap = pit_serve::StatsSnapshot::from_json_str(&json).expect("parses");
    assert_eq!(
        snap.timesteps_in, 0,
        "a rejected PUSH_N must not enqueue any entry"
    );
    assert_alive(addr);
    handle.shutdown();
}

#[test]
fn random_garbage_streams_never_panic_the_daemon() {
    let (addr, handle) = spawn_server();
    let mut state = 0x12345678u32;
    for round in 0..8 {
        let mut raw = TcpStream::connect(addr).expect("connect");
        let mut junk = Vec::with_capacity(512);
        for _ in 0..512 {
            // Tiny xorshift so the junk is deterministic.
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            junk.push(state as u8);
        }
        // Prefix half the rounds with a plausible small length so the
        // garbage lands in the decoder rather than the length check.
        if round % 2 == 0 {
            let _ = raw.write_all(&64u32.to_le_bytes());
        }
        let _ = raw.write_all(&junk);
        drop(raw);
    }
    std::thread::sleep(Duration::from_millis(100));
    assert_alive(addr);
    handle.shutdown();
}

#[test]
fn open_with_an_unknown_model_is_refused_and_the_id_stays_free() {
    let (addr, handle) = spawn_server();
    let mut client = Client::connect(addr).expect("connect");
    client.open_with_model(0, "no-such-model").expect("send");
    expect_error(&mut client, ErrorCode::UnknownModel);
    // The refused OPEN must not half-claim the stream id.
    client.open(0).expect("send");
    assert!(matches!(
        client.recv_timeout(RECV_TIMEOUT).unwrap(),
        Some(ServerFrame::Opened { stream_id: 0 })
    ));
    assert_alive(addr);
    handle.shutdown();
}

/// Hand-crafts an OPEN body: opcode 0x01, stream id, then raw bytes posing
/// as the v3 model-name field.
fn raw_open(stream_id: u32, name_field: &[u8]) -> Vec<u8> {
    let mut body = vec![0x01];
    body.extend_from_slice(&stream_id.to_le_bytes());
    body.extend_from_slice(name_field);
    let mut frame = (body.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&body);
    frame
}

#[test]
fn malformed_open_model_name_fields_are_bad_frames() {
    use pit_serve::protocol::{decode_server, FrameReader, ReadOutcome};
    let (addr, handle) = spawn_server();
    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("zero-length model name", raw_open(0, &[0, 0])),
        ("name length past the body", raw_open(0, &[200, 0, b'm'])),
        ("truncated length prefix", raw_open(0, &[5])),
        ("invalid UTF-8 name", raw_open(0, &[2, 0, 0xFF, 0xFE])),
        (
            "trailing bytes after the name",
            raw_open(0, &[1, 0, b'm', b'x']),
        ),
    ];
    for (label, frame) in cases {
        let mut raw = TcpStream::connect(addr).expect("connect");
        raw.write_all(&frame).unwrap();
        raw.flush().unwrap();
        raw.set_read_timeout(Some(RECV_TIMEOUT)).unwrap();
        let mut reader = FrameReader::new(raw);
        let body = loop {
            match reader.poll().expect("read") {
                ReadOutcome::Frame(body) => break body,
                ReadOutcome::WouldBlock => continue,
                ReadOutcome::Eof => panic!("{label}: server hung up instead of replying"),
            }
        };
        match decode_server(&body).unwrap_or_else(|e| panic!("{label}: reply decodes ({e})")) {
            ServerFrame::Error { code, .. } => assert_eq!(code, ErrorCode::BadFrame, "{label}"),
            other => panic!("{label}: expected BAD_FRAME, got {other:?}"),
        }
    }
    assert_alive(addr);
    handle.shutdown();
}

/// The client refuses names the OPEN wire field cannot represent — a
/// typed [`ServeError::Protocol`] instead of release-mode length
/// truncation emitting a malformed frame the server bounces as BadFrame.
#[test]
fn client_rejects_unrepresentable_model_names_before_encoding() {
    let (addr, handle) = spawn_server();
    let mut client = Client::connect(addr).expect("connect");
    for name in [String::new(), "m".repeat(MAX_MODEL_NAME + 1)] {
        match client.open_with_model(0, name) {
            Err(ServeError::Protocol(_)) => {}
            other => panic!("expected a protocol error, got {other:?}"),
        }
    }
    // The longest representable name still goes out on the wire (and is
    // simply unknown to the registry).
    client
        .open_with_model(0, "m".repeat(MAX_MODEL_NAME))
        .expect("send");
    expect_error(&mut client, ErrorCode::UnknownModel);
    assert_alive(addr);
    handle.shutdown();
}

#[test]
fn replace_while_busy_is_refused_but_the_registry_still_grows() {
    let dir = std::env::temp_dir().join(format!("pit-serve-replace-busy-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let plan = tiny_plan();
    let path = dir.join("model.json");
    std::fs::write(&path, plan.to_artifact_string()).expect("write artifact");

    let (addr, handle) = spawn_server();
    let mut client = Client::connect(addr).expect("connect");
    client.open(0).expect("open");
    assert!(matches!(
        client.recv_timeout(RECV_TIMEOUT).unwrap(),
        Some(ServerFrame::Opened { .. })
    ));
    // Same name as the booted model → replace → refused while stream 0 is
    // open on it.
    client
        .send(&ClientFrame::LoadModel {
            path: path.display().to_string(),
        })
        .expect("send");
    expect_error(&mut client, ErrorCode::StreamsActive);
    // The refusal must not have half-registered anything: a second client
    // listing models still sees exactly one entry.
    let mut probe = Client::connect(addr).expect("connect");
    let listed = probe.list_models().expect("LIST_MODELS");
    assert_eq!(listed.len(), 1, "{listed:?}");
    assert!(listed[0].default);
    assert_alive(addr);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_artifacts_fail_to_boot_with_an_error() {
    let dir = std::env::temp_dir().join(format!("pit-serve-hardening-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    let plan = tiny_plan();
    let good = plan.to_artifact_string();

    // Bad base64 payload.
    let bad_b64 = good.replacen("\"weight\": \"", "\"weight\": \"####", 1);
    // Wrong tensor length (valid base64 of too few floats).
    let start = good.find("\"weight\": \"").unwrap() + "\"weight\": \"".len();
    let end = start + good[start..].find('"').unwrap();
    let mut short = good.clone();
    short.replace_range(start..end, &pit_tensor::json::encode_f32s(&[0.5]));
    // Not JSON at all.
    let not_json = "\u{90}\u{0}this is not an artifact".to_string();

    for (name, text) in [
        ("bad_b64.json", bad_b64),
        ("short.json", short),
        ("not_json.json", not_json),
    ] {
        let path = dir.join(name);
        std::fs::write(&path, text).expect("write corrupt artifact");
        let err = Server::bind_artifact(&path, ServerConfig::default())
            .err()
            .unwrap_or_else(|| panic!("{name} must be rejected"));
        assert!(!err.is_empty());
    }

    // Non-regular files (directories, FIFOs, device nodes) must be refused
    // before any read — a LOAD_MODEL of /dev/zero must not hang the boot.
    let err = Server::bind_artifact(&dir, ServerConfig::default())
        .err()
        .expect("a directory must be rejected");
    assert!(err.contains("regular file"), "{err}");

    // And LOAD_MODEL of a corrupt file at runtime errors without killing
    // the daemon.
    let (addr, handle) = spawn_server();
    let mut client = Client::connect(addr).expect("connect");
    client
        .send(&ClientFrame::LoadModel {
            path: dir.join("bad_b64.json").display().to_string(),
        })
        .expect("send");
    expect_error(&mut client, ErrorCode::LoadFailed);
    assert_alive(addr);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The read-progress deadline reaps a slow loris — a connection that
/// sends part of a length prefix and stalls — while a slow-but-honest
/// client that completes a frame inside every deadline window stays
/// connected. Regression test for the resource hold: before the deadline
/// existed, the stalled socket pinned its edge slot and outbuf forever.
#[test]
fn slow_loris_partial_frame_is_reaped_but_honest_slow_clients_are_not() {
    use std::io::Read;
    use std::time::Instant;

    let server = Server::bind(
        ServeEngine::F32(tiny_plan()),
        ServerConfig {
            read_progress_timeout: Some(Duration::from_millis(250)),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    // The loris: 3 bytes of a 4-byte length prefix, then silence.
    let mut loris = TcpStream::connect(addr).expect("connect");
    loris.write_all(&64u32.to_le_bytes()[..3]).unwrap();
    loris.flush().unwrap();

    // The honest client pings through six deadline windows.
    let mut client = Client::connect(addr).expect("connect");
    for token in 0..6u64 {
        client.ping(token).expect("ping");
        assert!(matches!(
            client.recv_timeout(RECV_TIMEOUT).expect("transport"),
            Some(ServerFrame::Pong { token: t }) if t == token
        ));
        std::thread::sleep(Duration::from_millis(100));
    }

    // The loris socket got hung up on (EOF or RST both count as reaped).
    loris
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut buf = [0u8; 16];
    loop {
        match loris.read(&mut buf) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                assert!(Instant::now() < deadline, "loris was never reaped");
            }
            Err(_) => break,
        }
    }

    assert_alive(addr);
    let stats = handle.shutdown();
    assert_eq!(stats.connections_expired, 1, "the loris is counted");
    assert!(
        stats.connections_errored >= 1,
        "expired is a sub-category of errored"
    );
}
