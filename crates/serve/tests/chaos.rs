//! Chaos suite: seeded fault scenarios against a live daemon. Every
//! scenario drives a misbehaving client population (slow-loris drips,
//! header-then-stall peers, mid-batch RSTs, readers that never drain)
//! and/or a deterministic server-side fault plan (forced `WouldBlock`
//! reads, skipped flushes, stalled waves, delayed eviction notes), then
//! proves the same three things:
//!
//! 1. the daemon is alive — a fresh connection PINGs and `/healthz` says
//!    `serving`;
//! 2. the books balance — stats reach `settled` with zero open streams
//!    on both the shard gauge and the per-model edge gauge (no leaked
//!    slots);
//! 3. surviving streams are bit-exact against a solo `QuantizedSession`.
//!
//! All randomness comes from `ChaosRng` with seeds committed below, so a
//! failing interleaving replays exactly. Each scenario dumps the
//! daemon's event trace to `$CHAOS_TRACE_DIR` (default: the cargo
//! target tmpdir) before asserting, so CI can upload the schedule that
//! broke.

#![cfg(feature = "chaos")]

use pit_infer::{compile_temponet, QuantizedPlan, QuantizedSession};
use pit_models::{TempoNet, TempoNetConfig};
use pit_nas::SearchableNetwork;
use pit_serve::chaos::{self, ChaosRng, FaultPlan};
use pit_serve::protocol::{decode_server, encode_client, FrameReader, ReadOutcome};
use pit_serve::{
    Client, ClientFrame, CloseReason, ErrorCode, ServeEngine, Server, ServerConfig, ServerFrame,
    ServerHandle, StatsSnapshot,
};
use pit_tensor::init;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

const C: usize = 4;
const RECV_TIMEOUT: Duration = Duration::from_secs(30);
const SETTLE_TIMEOUT: Duration = Duration::from_secs(30);

/// One quantized plan shared by every scenario (quantization is the
/// expensive part; the scenarios only differ in how they abuse it).
fn fixture() -> Arc<QuantizedPlan> {
    static PLAN: OnceLock<Arc<QuantizedPlan>> = OnceLock::new();
    Arc::clone(PLAN.get_or_init(|| {
        let cfg = TempoNetConfig::scaled(8, 64);
        let mut rng = StdRng::seed_from_u64(61);
        let net = TempoNet::new(&mut rng, &cfg);
        net.set_dilations(&cfg.hand_tuned_dilations());
        let plan = compile_temponet(&net);
        let mut rng = StdRng::seed_from_u64(62);
        let x = init::uniform(&mut rng, &[1, C, 64], 1.0);
        Arc::new(QuantizedPlan::quantize(&plan, std::slice::from_ref(&x)).expect("quantize"))
    }))
}

/// Boots the fixture with the telemetry sidecar forced on (the epilogue
/// needs `/healthz` and `/trace`).
fn boot(mut config: ServerConfig) -> (SocketAddr, SocketAddr, ServerHandle) {
    config.metrics_addr = Some("127.0.0.1:0".into());
    let server = Server::bind(ServeEngine::I8(fixture()), config).expect("bind");
    let addr = server.local_addr();
    let metrics = server.metrics_addr().expect("sidecar bound");
    (addr, metrics, server.spawn())
}

/// What a solo session emits for `input` — the bit-exactness oracle.
fn solo(input: &[f32]) -> Vec<Vec<f32>> {
    let mut session = QuantizedSession::new(fixture());
    input.chunks(C).filter_map(|s| session.push(s)).collect()
}

fn stream_input(seed: u64, steps: usize) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(7_000 + seed);
    (0..steps * C).map(|_| rng.gen::<f32>() - 0.5).collect()
}

/// A complete wire frame (`encode_client` already length-prefixes) for
/// raw-socket clients.
fn frame_bytes(frame: &ClientFrame) -> Vec<u8> {
    encode_client(frame)
}

/// Collects `want` output vectors for a single stream, skipping OPENED
/// acks; anything else (an ERROR, a CLOSED) fails the scenario.
fn collect_emissions(client: &mut Client, stream_id: u32, want: usize) -> Vec<Vec<f32>> {
    let mut out = Vec::new();
    while out.len() < want {
        match client
            .recv_timeout(RECV_TIMEOUT)
            .expect("transport healthy")
            .expect("emissions arrive before the timeout")
        {
            ServerFrame::Emit {
                stream_id: sid,
                dim,
                outputs,
                ..
            } => {
                assert_eq!(sid, stream_id, "emission for the wrong stream");
                for chunk in outputs.chunks_exact(dim as usize) {
                    out.push(chunk.to_vec());
                }
            }
            ServerFrame::Opened { .. } => {}
            other => panic!("unexpected frame {other:?}"),
        }
    }
    out
}

/// Collects `want` output vectors across several streams of one
/// connection, tallied per stream id.
fn collect_tally(client: &mut Client, want: usize) -> HashMap<u32, Vec<Vec<f32>>> {
    let mut out: HashMap<u32, Vec<Vec<f32>>> = HashMap::new();
    let mut n = 0;
    while n < want {
        match client
            .recv_timeout(RECV_TIMEOUT)
            .expect("transport healthy")
            .expect("emissions arrive before the timeout")
        {
            ServerFrame::Emit {
                stream_id,
                dim,
                outputs,
                ..
            } => {
                let per = out.entry(stream_id).or_default();
                for chunk in outputs.chunks_exact(dim as usize) {
                    per.push(chunk.to_vec());
                    n += 1;
                }
            }
            ServerFrame::Opened { .. } => {}
            other => panic!("unexpected frame {other:?}"),
        }
    }
    out
}

fn expect_error(client: &mut Client, want: ErrorCode) {
    match client.recv_timeout(RECV_TIMEOUT).expect("transport") {
        Some(ServerFrame::Error { code, .. }) => assert_eq!(code, want),
        other => panic!("expected {want:?} error, got {other:?}"),
    }
}

/// Blocks (with frame-by-frame polling) until the next server frame on a
/// raw socket's reply stream.
fn read_frame(reader: &mut FrameReader<TcpStream>) -> ServerFrame {
    loop {
        match reader.poll().expect("read") {
            ReadOutcome::Frame(body) => return decode_server(&body).expect("reply decodes"),
            ReadOutcome::WouldBlock => std::thread::sleep(Duration::from_millis(2)),
            ReadOutcome::Eof => panic!("server hung up instead of replying"),
        }
    }
}

/// Polls until `stream`'s peer hangs up, failing after 15 s.
fn await_hangup(stream: &TcpStream, who: &str) {
    let deadline = Instant::now() + Duration::from_secs(15);
    while !chaos::peer_hung_up(stream).expect("hangup probe") {
        assert!(Instant::now() < deadline, "{who} was never reaped");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Saves the daemon's event trace under `$CHAOS_TRACE_DIR` (default: the
/// cargo target tmpdir) so a failing schedule can be replayed from the
/// CI artifact. Best-effort: trace dumping must never fail a scenario.
fn dump_trace(name: &str, metrics: SocketAddr) {
    let dir = std::env::var_os("CHAOS_TRACE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("chaos-traces"));
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    if let Ok((200, body)) = chaos::http_get(metrics, "/trace") {
        let _ = std::fs::write(dir.join(format!("{name}.json")), body);
    }
}

/// The post-scenario invariant every test ends with: trace dumped, daemon
/// answers PING on a fresh connection, `/healthz` reports serving, and
/// stats reach `settled` with zero open streams on both the shard gauge
/// and the per-model edge gauge. Returns the settled snapshot for
/// scenario-specific counter asserts.
fn epilogue(name: &str, addr: SocketAddr, metrics: SocketAddr) -> StatsSnapshot {
    dump_trace(name, metrics);
    let mut probe = Client::connect(addr).expect("daemon accepts connections");
    probe.ping(42).expect("ping");
    assert!(
        matches!(
            probe.recv_timeout(RECV_TIMEOUT).expect("transport"),
            Some(ServerFrame::Pong { token: 42 })
        ),
        "daemon must answer PING after the scenario"
    );
    let (status, body) = chaos::http_get(metrics, "/healthz").expect("healthz reachable");
    assert_eq!(status, 200, "healthz after chaos: {body}");
    assert!(body.contains("serving"), "healthz after chaos: {body}");

    let deadline = Instant::now() + SETTLE_TIMEOUT;
    loop {
        probe.stats().expect("stats request");
        let json = loop {
            match probe
                .recv_timeout(RECV_TIMEOUT)
                .expect("transport")
                .expect("stats reply")
            {
                ServerFrame::StatsJson { json } => break json,
                _ => continue,
            }
        };
        let snap = StatsSnapshot::from_json_str(&json).expect("stats parse");
        let edge_open: u64 = snap.models.iter().map(|m| m.streams_open).sum();
        if snap.settled && snap.streams_open == 0 && edge_open == 0 {
            return snap;
        }
        assert!(
            Instant::now() < deadline,
            "never settled with zero open streams: {json}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Scenario 1 — slow loris: three connections send 1–3 bytes of a length
/// prefix and stall forever. The read-progress deadline reaps all three
/// (counted in `connections_expired`) while an honest client streams
/// bit-exact through the reaping.
#[test]
fn slow_loris_header_stall_is_expired() {
    let (addr, metrics, handle) = boot(ServerConfig {
        read_progress_timeout: Some(Duration::from_millis(250)),
        ..ServerConfig::default()
    });
    let mut rng = ChaosRng::new(0xC4A0_5001);
    let lorises: Vec<TcpStream> = (0..3)
        .map(|_| chaos::partial_frame_header(addr, 1 + rng.below(3) as usize).expect("loris"))
        .collect();

    let mut client = Client::connect(addr).expect("connect");
    client.open(0).expect("open");
    let input = stream_input(1, 24);
    for round in 0..3 {
        client
            .push(0, C as u32, &input[round * 8 * C..(round + 1) * 8 * C])
            .expect("push");
        std::thread::sleep(Duration::from_millis(120));
    }
    let got = collect_emissions(&mut client, 0, 3);
    assert_eq!(got, solo(&input), "honest stream rides out the reaping");

    for loris in &lorises {
        await_hangup(loris, "loris connection");
    }
    client.close(0).expect("close");

    let snap = epilogue("slow_loris_header_stall", addr, metrics);
    assert_eq!(snap.connections_expired, 3, "every loris counted");
    assert!(
        snap.connections_errored >= 3,
        "expired is a sub-category of errored: {snap:?}"
    );
    handle.shutdown();
}

/// Scenario 2 — frameless idle: a connection that never sends a byte is
/// expired by the same deadline, while a control connection that
/// completes a PING inside every window outlives several sweeps.
#[test]
fn frameless_idle_connection_is_expired() {
    let (addr, metrics, handle) = boot(ServerConfig {
        read_progress_timeout: Some(Duration::from_millis(200)),
        ..ServerConfig::default()
    });
    let silent = TcpStream::connect(addr).expect("connect");
    let mut pinger = Client::connect(addr).expect("connect");
    for token in 0..8u64 {
        pinger.ping(token).expect("ping");
        assert!(matches!(
            pinger.recv_timeout(RECV_TIMEOUT).expect("transport"),
            Some(ServerFrame::Pong { token: t }) if t == token
        ));
        std::thread::sleep(Duration::from_millis(100));
    }
    // Eight 100 ms windows have passed — four full deadlines. The silent
    // socket must be gone; the pinger just proved it is not.
    await_hangup(&silent, "silent connection");
    let snap = epilogue("frameless_idle", addr, metrics);
    assert_eq!(snap.connections_expired, 1, "only the silent conn expires");
    handle.shutdown();
}

/// Scenario 3 — RST storm: six victims open streams, push a seeded number
/// of complete frames, then abort with a TCP RST mid-frame. Two survivor
/// connections stream through the storm and must stay bit-exact; every
/// victim's slots are reclaimed.
#[test]
fn mid_push_rst_storm_leaves_survivors_bit_exact() {
    const VICTIMS: usize = 6;
    let (addr, metrics, handle) = boot(ServerConfig {
        shards: 2,
        ..ServerConfig::default()
    });

    let victims: Vec<_> = (0..VICTIMS)
        .map(|v| {
            std::thread::spawn(move || {
                let mut rng = ChaosRng::new(0xC4A0_5003 ^ v as u64);
                let mut raw = TcpStream::connect(addr).expect("victim connects");
                for sid in 0..2u32 {
                    raw.write_all(&frame_bytes(&ClientFrame::Open {
                        stream_id: sid,
                        model: None,
                    }))
                    .expect("open");
                }
                let input = stream_input(100 + v as u64, 8);
                for _ in 0..rng.below(3) {
                    raw.write_all(&frame_bytes(&ClientFrame::Push {
                        stream_id: 0,
                        channels: C as u32,
                        samples: input.clone(),
                    }))
                    .expect("push");
                }
                // Cut the last PUSH mid-frame, then abort with an RST.
                let push = frame_bytes(&ClientFrame::Push {
                    stream_id: 1,
                    channels: C as u32,
                    samples: input,
                });
                let cut = 1 + rng.below(push.len() as u64 - 1) as usize;
                raw.write_all(&push[..cut]).expect("partial push");
                raw.flush().expect("flush");
                std::thread::sleep(Duration::from_millis(rng.below(20)));
                chaos::rst_close(raw);
            })
        })
        .collect();

    let survivors: Vec<_> = (0..2)
        .map(|conn| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("survivor connects");
                for sid in 0..2u32 {
                    client.open(sid).expect("open");
                }
                let inputs: Vec<Vec<f32>> = (0..2)
                    .map(|sid| stream_input(200 + conn * 2 + sid, 16))
                    .collect();
                for round in 0..2 {
                    for (sid, input) in inputs.iter().enumerate() {
                        client
                            .push(
                                sid as u32,
                                C as u32,
                                &input[round * 8 * C..(round + 1) * 8 * C],
                            )
                            .expect("push");
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                let got = collect_tally(&mut client, 4);
                for (sid, input) in inputs.iter().enumerate() {
                    assert_eq!(
                        got[&(sid as u32)],
                        solo(input),
                        "survivor {conn} stream {sid} must be bit-exact through the storm"
                    );
                }
                for sid in 0..2u32 {
                    client.close(sid).expect("close");
                }
            })
        })
        .collect();

    for t in victims {
        t.join().expect("victim thread");
    }
    for t in survivors {
        t.join().expect("survivor thread");
    }

    let snap = epilogue("mid_push_rst_storm", addr, metrics);
    assert!(
        snap.connections_errored >= VICTIMS as u64,
        "every RST counts as an errored connection: {snap:?}"
    );
    handle.shutdown();
}

/// Scenario 4 — non-draining reader: with waves artificially stalled, a
/// client fills its pending cap without reading a single EMIT, and the
/// overflow PUSH bounces with `Backpressure`. Once it finally drains, the
/// admitted 64 steps (and nothing else) come back bit-exact.
#[test]
fn non_draining_reader_hits_backpressure_then_drains_bit_exact() {
    let faults = FaultPlan {
        wave_stall: Some(Duration::from_millis(100)),
        ..FaultPlan::default()
    }
    .build();
    let (addr, metrics, handle) = boot(ServerConfig {
        shards: 1,
        max_pending_per_conn: 64,
        faults: Some(Arc::clone(&faults)),
        ..ServerConfig::default()
    });

    let mut client = Client::connect(addr).expect("connect");
    client.open(0).expect("open");
    let input = stream_input(4, 64);
    client
        .push(0, C as u32, &input)
        .expect("push fills the cap");
    client
        .push(0, C as u32, &stream_input(5, 8))
        .expect("overflow push sends");
    match client
        .recv_timeout(RECV_TIMEOUT)
        .expect("transport")
        .expect("opened ack")
    {
        ServerFrame::Opened { stream_id: 0 } => {}
        other => panic!("expected OPENED, got {other:?}"),
    }
    expect_error(&mut client, ErrorCode::Backpressure);

    let got = collect_emissions(&mut client, 0, 8);
    assert_eq!(
        got,
        solo(&input),
        "only the admitted 64 steps flow; the refused burst never enqueues"
    );
    assert!(
        faults.injected_faults() > 0,
        "the wave stall must actually fire"
    );
    client.close(0).expect("close");

    let snap = epilogue("non_draining_reader_backpressure", addr, metrics);
    assert!(snap.frames_rejected >= 1, "the bounce is counted: {snap:?}");
    handle.shutdown();
}

/// Scenario 5 — the eviction/CLOSE race, pinned: the shard evicts an idle
/// stream and tells the client straight away, but the fault plan holds the
/// shard→edge accounting note for 400 ms. Inside that window the client
/// CLOSEs the dead stream and reopens the same id. When the stale note
/// finally lands it must NOT tear down the reincarnated stream: before
/// generation tags, the gauge double-decremented and the reopened stream's
/// next PUSH bounced with `UnknownStream`.
#[test]
fn close_reopen_races_a_delayed_eviction_note() {
    let faults = FaultPlan {
        note_delay: Some(Duration::from_millis(400)),
        ..FaultPlan::default()
    }
    .build();
    let (addr, metrics, handle) = boot(ServerConfig {
        shards: 1,
        idle_timeout: Some(Duration::from_millis(150)),
        faults: Some(faults),
        ..ServerConfig::default()
    });

    let mut client = Client::connect(addr).expect("connect");
    client.open(5).expect("open");
    let first = stream_input(50, 8);
    client.push(5, C as u32, &first).expect("push");
    let got = collect_emissions(&mut client, 5, 1);
    assert_eq!(got, solo(&first));

    // Go idle until the shard evicts. The CLOSED frame reaches us on the
    // data path; the accounting note to the edge is in the delay queue.
    match client
        .recv_timeout(RECV_TIMEOUT)
        .expect("transport")
        .expect("eviction notice")
    {
        ServerFrame::Closed {
            stream_id: 5,
            reason: CloseReason::IdleEvicted,
        } => {}
        other => panic!("expected idle eviction, got {other:?}"),
    }

    // Race the held note: CLOSE the already-evicted stream (the edge still
    // holds the entry, the shard no longer does)...
    client.close(5).expect("close");
    expect_error(&mut client, ErrorCode::UnknownStream);
    // ...and reincarnate the id under a fresh generation.
    client.open(5).expect("reopen");
    match client
        .recv_timeout(RECV_TIMEOUT)
        .expect("transport")
        .expect("reopen ack")
    {
        ServerFrame::Opened { stream_id: 5 } => {}
        other => panic!("expected OPENED, got {other:?}"),
    }

    // Keep the reincarnation busy across the note's arrival (~400 ms in).
    let second = stream_input(51, 80);
    for round in 0..10 {
        client
            .push(5, C as u32, &second[round * 8 * C..(round + 1) * 8 * C])
            .expect("push");
        std::thread::sleep(Duration::from_millis(60));
    }
    let got = collect_emissions(&mut client, 5, 10);
    assert_eq!(
        got,
        solo(&second),
        "the stale note must not tear down the reincarnated stream"
    );

    // The edge-authoritative gauge still counts exactly one open stream —
    // the double-decrement zeroed it here before the generation tag.
    client.stats().expect("stats");
    let json = loop {
        match client
            .recv_timeout(RECV_TIMEOUT)
            .expect("transport")
            .expect("stats reply")
        {
            ServerFrame::StatsJson { json } => break json,
            ServerFrame::Emit { .. } => continue,
            other => panic!("unexpected frame {other:?}"),
        }
    };
    let snap = StatsSnapshot::from_json_str(&json).expect("stats parse");
    assert_eq!(
        snap.models.iter().map(|m| m.streams_open).sum::<u64>(),
        1,
        "exactly the reincarnated stream is on the books: {json}"
    );

    client.close(5).expect("close");
    match client
        .recv_timeout(RECV_TIMEOUT)
        .expect("transport")
        .expect("close ack")
    {
        ServerFrame::Closed {
            stream_id: 5,
            reason: CloseReason::ByClient,
        } => {}
        other => panic!("expected CLOSED, got {other:?}"),
    }

    epilogue("close_reopen_vs_delayed_note", addr, metrics);
    handle.shutdown();
}

/// Scenario 6 — seeded lifecycle fuzz: three workers per seed run rounds
/// of open → push → verify, then a seeded choice of clean CLOSE, abrupt
/// disconnect with the stream open, or going idle and absorbing the
/// eviction — under light I/O faults, across two committed seeds.
#[test]
fn seeded_lifecycle_fuzz_settles_clean() {
    for &seed in &[0xC4A0_5006u64, 0xFACE_FEED] {
        let faults = FaultPlan {
            read_wouldblock_every: 5,
            write_skip_every: 3,
            ..FaultPlan::default()
        }
        .build();
        let (addr, metrics, handle) = boot(ServerConfig {
            shards: 3,
            idle_timeout: Some(Duration::from_millis(300)),
            faults: Some(Arc::clone(&faults)),
            ..ServerConfig::default()
        });

        let workers: Vec<_> = (0..3u64)
            .map(|w| std::thread::spawn(move || fuzz_worker(addr, seed ^ (w << 32) ^ w)))
            .collect();
        for t in workers {
            t.join().expect("fuzz worker");
        }

        assert!(
            faults.injected_faults() > 0,
            "seed {seed:#x}: the fault cadences must actually fire"
        );
        epilogue(&format!("lifecycle_fuzz_{seed:x}"), addr, metrics);
        handle.shutdown();
    }
}

fn fuzz_worker(addr: SocketAddr, seed: u64) {
    let mut rng = ChaosRng::new(seed);
    let mut client = Client::connect(addr).expect("connect");
    for round in 0..6u32 {
        let sid = round;
        client.open(sid).expect("open");
        let input = stream_input(seed.wrapping_mul(31).wrapping_add(round as u64), 8);
        client.push(sid, C as u32, &input).expect("push");
        let got = collect_emissions(&mut client, sid, 1);
        assert_eq!(got, solo(&input), "seed {seed:#x} round {round}");
        match rng.below(3) {
            0 => {
                client.close(sid).expect("close");
                match client
                    .recv_timeout(RECV_TIMEOUT)
                    .expect("transport")
                    .expect("close ack")
                {
                    ServerFrame::Closed {
                        stream_id,
                        reason: CloseReason::ByClient,
                    } => assert_eq!(stream_id, sid),
                    other => panic!("expected CLOSED, got {other:?}"),
                }
            }
            1 => {
                // Abandon the connection with the stream still open; the
                // disconnect teardown must release its slot.
                let replacement = Client::connect(addr).expect("reconnect");
                drop(std::mem::replace(&mut client, replacement));
            }
            _ => {
                // Go idle and absorb the eviction.
                match client
                    .recv_timeout(RECV_TIMEOUT)
                    .expect("transport")
                    .expect("eviction notice")
                {
                    ServerFrame::Closed {
                        stream_id,
                        reason: CloseReason::IdleEvicted,
                    } => assert_eq!(stream_id, sid),
                    other => panic!("expected eviction, got {other:?}"),
                }
            }
        }
    }
}

/// Scenario 7 — forced I/O faults: every 3rd edge read fakes
/// `WouldBlock`, every 7th fakes `Interrupted`, every 2nd flush
/// opportunity is skipped. Frame reassembly and the POLLOUT re-arm path
/// must keep eight concurrent streams bit-exact.
#[test]
fn forced_read_write_faults_stay_bit_exact() {
    let faults = FaultPlan {
        read_wouldblock_every: 3,
        read_interrupt_every: 7,
        write_skip_every: 2,
        ..FaultPlan::default()
    }
    .build();
    let (addr, metrics, handle) = boot(ServerConfig {
        shards: 2,
        faults: Some(Arc::clone(&faults)),
        ..ServerConfig::default()
    });
    run_bit_exact_sweep(addr, 4, 300);
    assert!(
        faults.injected_faults() > 0,
        "the I/O fault cadences must actually fire"
    );
    epilogue("forced_io_faults", addr, metrics);
    handle.shutdown();
}

/// Scenario 8 — slow shard: every wave flush stalls 2 ms and every shard
/// wakeup is delayed 500 µs, widening every edge/shard race window while
/// load flows. Streams must still be bit-exact and the books settle.
#[test]
fn wave_stall_and_slow_shard_stay_bit_exact_under_load() {
    let faults = FaultPlan {
        wave_stall: Some(Duration::from_millis(2)),
        shard_wakeup_delay: Some(Duration::from_micros(500)),
        ..FaultPlan::default()
    }
    .build();
    let (addr, metrics, handle) = boot(ServerConfig {
        shards: 2,
        faults: Some(Arc::clone(&faults)),
        ..ServerConfig::default()
    });
    run_bit_exact_sweep(addr, 2, 400);
    assert!(
        faults.injected_faults() > 0,
        "the stall faults must actually fire"
    );
    epilogue("wave_stall_slow_shard", addr, metrics);
    handle.shutdown();
}

/// Shared load shape for the fault-seam scenarios: `conns` connections ×
/// 2 streams × 16 steps in 2 ragged rounds, every stream checked
/// bit-exact against a solo session.
fn run_bit_exact_sweep(addr: SocketAddr, conns: u64, seed_base: u64) {
    let workers: Vec<_> = (0..conns)
        .map(|conn| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for sid in 0..2u32 {
                    client.open(sid).expect("open");
                }
                let inputs: Vec<Vec<f32>> = (0..2)
                    .map(|sid| stream_input(seed_base + conn * 2 + sid, 16))
                    .collect();
                for round in 0..2 {
                    for (sid, input) in inputs.iter().enumerate() {
                        client
                            .push(
                                sid as u32,
                                C as u32,
                                &input[round * 8 * C..(round + 1) * 8 * C],
                            )
                            .expect("push");
                    }
                }
                let got = collect_tally(&mut client, 4);
                for (sid, input) in inputs.iter().enumerate() {
                    assert_eq!(
                        got[&(sid as u32)],
                        solo(input),
                        "conn {conn} stream {sid} must be bit-exact under faults"
                    );
                }
                for sid in 0..2u32 {
                    client.close(sid).expect("close");
                }
            })
        })
        .collect();
    for t in workers {
        t.join().expect("sweep worker");
    }
}

/// Scenario 9 — glacial but honest: a client that drips whole frames one
/// byte at a time, always completing each frame inside the deadline,
/// survives the reaper and gets bit-exact emissions — while a loris on
/// the same daemon (never completing its frame) is expired.
#[test]
fn drip_fed_valid_frames_survive_the_reaper() {
    let (addr, metrics, handle) = boot(ServerConfig {
        read_progress_timeout: Some(Duration::from_millis(500)),
        ..ServerConfig::default()
    });
    let loris = chaos::partial_frame_header(addr, 2).expect("loris");

    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.set_read_timeout(Some(RECV_TIMEOUT)).expect("timeout");
    let mut reply = FrameReader::new(raw.try_clone().expect("clone"));
    for token in 0..2u64 {
        chaos::drip(
            &mut raw,
            &frame_bytes(&ClientFrame::Ping { token }),
            Duration::from_millis(15),
        )
        .expect("drip ping");
        match read_frame(&mut reply) {
            ServerFrame::Pong { token: t } => assert_eq!(t, token),
            other => panic!("expected PONG, got {other:?}"),
        }
    }
    chaos::drip(
        &mut raw,
        &frame_bytes(&ClientFrame::Open {
            stream_id: 0,
            model: None,
        }),
        Duration::from_millis(15),
    )
    .expect("drip open");
    let input = stream_input(9, 8);
    chaos::drip(
        &mut raw,
        &frame_bytes(&ClientFrame::Push {
            stream_id: 0,
            channels: C as u32,
            samples: input.clone(),
        }),
        Duration::from_millis(2),
    )
    .expect("drip push");

    let want = solo(&input);
    let got = loop {
        match read_frame(&mut reply) {
            ServerFrame::Opened { .. } => continue,
            ServerFrame::Emit { dim, outputs, .. } => {
                break outputs
                    .chunks_exact(dim as usize)
                    .map(<[f32]>::to_vec)
                    .collect::<Vec<_>>()
            }
            other => panic!("expected EMIT, got {other:?}"),
        }
    };
    assert_eq!(got, want, "dripped stream must be bit-exact");

    await_hangup(&loris, "loris connection");
    raw.write_all(&frame_bytes(&ClientFrame::Close { stream_id: 0 }))
        .expect("close");
    match read_frame(&mut reply) {
        ServerFrame::Closed {
            stream_id: 0,
            reason: CloseReason::ByClient,
        } => {}
        other => panic!("expected CLOSED, got {other:?}"),
    }
    drop(raw);

    let snap = epilogue("drip_fed_survivor", addr, metrics);
    assert_eq!(
        snap.connections_expired, 1,
        "the loris expires, the dripper does not: {snap:?}"
    );
    handle.shutdown();
}
