//! Serving counters and the snapshot the STATS frame returns.
//!
//! The daemon's counters live in three places, mirroring its thread and
//! registry layout: the edge thread owns connection-level counters as plain
//! integers (`EdgeCounters`), each wave-batcher shard owns a `ShardStats`
//! block of atomics it updates lock-free from its own thread, and each
//! *registry model* owns a `ModelStats` block all shards share — serving a
//! zoo means one model's streams spread across every shard, so its traffic
//! is accounted where the model is, not where the thread is. A STATS
//! request aggregates all of them into one [`StatsSnapshot`] at the edge —
//! per-shard latency windows are merged before computing percentiles, so
//! p50/p99 describe the whole daemon, not one shard — with one
//! [`ModelSnapshot`] per registry entry (`pit-serve-stats/3`; v1/v2
//! documents still parse, they simply carry no model breakdown).

use pit_tensor::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A point-in-time view of the daemon's counters, as returned by the STATS
/// frame (rendered to JSON) and by [`crate::ServerHandle::shutdown`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsSnapshot {
    /// Name of the served plan.
    pub model: String,
    /// `"f32"` or `"i8"`.
    pub kind: String,
    /// Number of wave-batcher shards serving the pool.
    pub shards: u64,
    /// Connections accepted since boot.
    pub connections_total: u64,
    /// Connections currently open.
    pub connections_open: u64,
    /// Streams currently open.
    pub streams_open: u64,
    /// Streams opened since boot.
    pub streams_opened: u64,
    /// Streams evicted for idleness.
    pub streams_evicted: u64,
    /// Timesteps accepted into pool queues since boot.
    pub timesteps_in: u64,
    /// Head outputs sent back since boot.
    pub emissions_out: u64,
    /// Frames refused with an ERROR reply (malformed, backpressure, …).
    pub frames_rejected: u64,
    /// Reply frames dropped because a client's outbound queue was full.
    pub replies_dropped: u64,
    /// Pool waves (flush calls that served at least one stream).
    pub waves: u64,
    /// Mean number of streams served per wave.
    pub wave_occupancy: f64,
    /// Median wave (flush) latency in nanoseconds, over the recent window.
    pub wave_p50_ns: u64,
    /// 99th-percentile wave latency in nanoseconds, over the recent window.
    pub wave_p99_ns: u64,
    /// Per-model breakdown, one entry per registry model (v3; empty when
    /// parsed from a v1/v2 document).
    pub models: Vec<ModelSnapshot>,
}

/// One registry model's share of the daemon's traffic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ModelSnapshot {
    /// Registry name the model serves under.
    pub name: String,
    /// `"f32"` or `"i8"`.
    pub kind: String,
    /// Streams currently open on this model.
    pub streams_open: u64,
    /// Streams opened on this model since boot.
    pub streams_opened: u64,
    /// Timesteps accepted for this model since boot.
    pub timesteps_in: u64,
    /// Head outputs this model sent back since boot.
    pub emissions_out: u64,
    /// Pool waves that served this model.
    pub waves: u64,
    /// Mean streams served per wave of this model.
    pub wave_occupancy: f64,
    /// Median wave latency (ns) of this model, over the recent window.
    pub wave_p50_ns: u64,
    /// 99th-percentile wave latency (ns) of this model.
    pub wave_p99_ns: u64,
}

impl ModelSnapshot {
    /// Renders one model's breakdown object.
    pub fn to_json(&self) -> Json {
        let n = |v: u64| Json::Num(v as f64);
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("kind".into(), Json::Str(self.kind.clone())),
            ("streams_open".into(), n(self.streams_open)),
            ("streams_opened".into(), n(self.streams_opened)),
            ("timesteps_in".into(), n(self.timesteps_in)),
            ("emissions_out".into(), n(self.emissions_out)),
            ("waves".into(), n(self.waves)),
            ("wave_occupancy".into(), Json::Num(self.wave_occupancy)),
            ("wave_p50_ns".into(), n(self.wave_p50_ns)),
            ("wave_p99_ns".into(), n(self.wave_p99_ns)),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        let num = |name: &str| -> Result<f64, String> {
            doc.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("model breakdown: missing number field '{name}'"))
        };
        let int = |name: &str| -> Result<u64, String> { Ok(num(name)? as u64) };
        let text = |name: &str| -> Result<String, String> {
            doc.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("model breakdown: missing string field '{name}'"))
        };
        Ok(Self {
            name: text("name")?,
            kind: text("kind")?,
            streams_open: int("streams_open")?,
            streams_opened: int("streams_opened")?,
            timesteps_in: int("timesteps_in")?,
            emissions_out: int("emissions_out")?,
            waves: int("waves")?,
            wave_occupancy: num("wave_occupancy")?,
            wave_p50_ns: int("wave_p50_ns")?,
            wave_p99_ns: int("wave_p99_ns")?,
        })
    }
}

impl StatsSnapshot {
    /// Renders the snapshot as the JSON document the STATS frame carries.
    pub fn to_json(&self) -> Json {
        let n = |v: u64| Json::Num(v as f64);
        Json::Obj(vec![
            ("schema".into(), Json::Str("pit-serve-stats/3".into())),
            ("model".into(), Json::Str(self.model.clone())),
            ("kind".into(), Json::Str(self.kind.clone())),
            ("shards".into(), n(self.shards)),
            ("connections_total".into(), n(self.connections_total)),
            ("connections_open".into(), n(self.connections_open)),
            ("streams_open".into(), n(self.streams_open)),
            ("streams_opened".into(), n(self.streams_opened)),
            ("streams_evicted".into(), n(self.streams_evicted)),
            ("timesteps_in".into(), n(self.timesteps_in)),
            ("emissions_out".into(), n(self.emissions_out)),
            ("frames_rejected".into(), n(self.frames_rejected)),
            ("replies_dropped".into(), n(self.replies_dropped)),
            ("waves".into(), n(self.waves)),
            ("wave_occupancy".into(), Json::Num(self.wave_occupancy)),
            ("wave_p50_ns".into(), n(self.wave_p50_ns)),
            ("wave_p99_ns".into(), n(self.wave_p99_ns)),
            (
                "models".into(),
                Json::Arr(self.models.iter().map(ModelSnapshot::to_json).collect()),
            ),
        ])
    }

    /// Parses a snapshot back from STATS-frame JSON.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or ill-typed field.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text)?;
        let num = |name: &str| -> Result<f64, String> {
            doc.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing number field '{name}'"))
        };
        let int = |name: &str| -> Result<u64, String> { Ok(num(name)? as u64) };
        let text_field = |name: &str| -> Result<String, String> {
            doc.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field '{name}'"))
        };
        Ok(Self {
            model: text_field("model")?,
            kind: text_field("kind")?,
            // Absent in pit-serve-stats/1 documents: default to one shard.
            shards: doc.get("shards").and_then(Json::as_f64).unwrap_or(1.0) as u64,
            connections_total: int("connections_total")?,
            connections_open: int("connections_open")?,
            streams_open: int("streams_open")?,
            streams_opened: int("streams_opened")?,
            streams_evicted: int("streams_evicted")?,
            timesteps_in: int("timesteps_in")?,
            emissions_out: int("emissions_out")?,
            frames_rejected: int("frames_rejected")?,
            replies_dropped: int("replies_dropped")?,
            waves: int("waves")?,
            wave_occupancy: num("wave_occupancy")?,
            wave_p50_ns: int("wave_p50_ns")?,
            wave_p99_ns: int("wave_p99_ns")?,
            // Absent in pit-serve-stats/1 and /2 documents: no breakdown.
            models: doc
                .get("models")
                .and_then(Json::as_array)
                .map(|arr| arr.iter().map(ModelSnapshot::from_json).collect())
                .transpose()?
                .unwrap_or_default(),
        })
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({}, {} shards): {} conns ({} open), {} streams open ({} opened, {} evicted), \
             {} timesteps in, {} emissions out, {} rejected, {} waves \
             (occupancy {:.1}, p50 {} ns, p99 {} ns)",
            self.model,
            self.kind,
            self.shards,
            self.connections_total,
            self.connections_open,
            self.streams_open,
            self.streams_opened,
            self.streams_evicted,
            self.timesteps_in,
            self.emissions_out,
            self.frames_rejected,
            self.waves,
            self.wave_occupancy,
            self.wave_p50_ns,
            self.wave_p99_ns,
        )
    }
}

/// Size of each shard's rolling wave-latency window. Percentiles are
/// computed over the merged windows of every shard.
const LATENCY_WINDOW: usize = 4096;

/// Rolling window of recent wave latencies (ns), overwritten oldest-first.
#[derive(Debug, Default)]
struct LatencyWindow {
    wave_ns: Vec<u64>,
    next: usize,
}

impl LatencyWindow {
    fn record(&mut self, ns: u64) {
        if self.wave_ns.len() < LATENCY_WINDOW {
            self.wave_ns.push(ns);
        } else {
            self.wave_ns[self.next] = ns;
            self.next = (self.next + 1) % LATENCY_WINDOW;
        }
    }
}

/// One wave-batcher shard's counter block. The owning shard thread updates
/// the atomics lock-free; the edge thread reads them (and briefly locks the
/// latency window) only when a STATS request or shutdown aggregates a
/// snapshot.
#[derive(Debug, Default)]
pub(crate) struct ShardStats {
    pub(crate) streams_open: AtomicU64,
    pub(crate) streams_opened: AtomicU64,
    pub(crate) streams_evicted: AtomicU64,
    pub(crate) timesteps_in: AtomicU64,
    pub(crate) emissions_out: AtomicU64,
    pub(crate) frames_rejected: AtomicU64,
    pub(crate) waves: AtomicU64,
    occupancy_sum: AtomicU64,
    window: Mutex<LatencyWindow>,
}

impl ShardStats {
    /// Records one flushed wave: how many streams it served and how long the
    /// flush took.
    pub(crate) fn record_wave(&self, occupancy: usize, elapsed: std::time::Duration) {
        self.waves.fetch_add(1, Ordering::Relaxed);
        self.occupancy_sum
            .fetch_add(occupancy as u64, Ordering::Relaxed);
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.window.lock().expect("window lock").record(ns);
    }
}

/// One registry model's counter block, shared by every shard (a model's
/// streams spread across all of them). All fields are atomics updated from
/// shard threads; the latency window's mutex is touched once per wave of
/// that model.
#[derive(Debug, Default)]
pub(crate) struct ModelStats {
    pub(crate) streams_opened: AtomicU64,
    pub(crate) timesteps_in: AtomicU64,
    pub(crate) emissions_out: AtomicU64,
    waves: AtomicU64,
    occupancy_sum: AtomicU64,
    window: Mutex<LatencyWindow>,
}

impl ModelStats {
    /// Records one flushed wave of this model's pool on some shard.
    pub(crate) fn record_wave(&self, occupancy: usize, elapsed: std::time::Duration) {
        self.waves.fetch_add(1, Ordering::Relaxed);
        self.occupancy_sum
            .fetch_add(occupancy as u64, Ordering::Relaxed);
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.window.lock().expect("window lock").record(ns);
    }

    /// The model's breakdown entry. `streams_open` is supplied by the edge
    /// registry, the authoritative open-stream gauge.
    pub(crate) fn snapshot(&self, name: &str, kind: &str, streams_open: u64) -> ModelSnapshot {
        let waves = self.waves.load(Ordering::Relaxed);
        let occupancy_sum = self.occupancy_sum.load(Ordering::Relaxed);
        let mut window = self.window.lock().expect("window lock").wave_ns.clone();
        window.sort_unstable();
        ModelSnapshot {
            name: name.to_string(),
            kind: kind.to_string(),
            streams_open,
            streams_opened: self.streams_opened.load(Ordering::Relaxed),
            timesteps_in: self.timesteps_in.load(Ordering::Relaxed),
            emissions_out: self.emissions_out.load(Ordering::Relaxed),
            waves,
            wave_occupancy: if waves == 0 {
                0.0
            } else {
                occupancy_sum as f64 / waves as f64
            },
            wave_p50_ns: percentile(&window, 0.50),
            wave_p99_ns: percentile(&window, 0.99),
        }
    }
}

/// Edge-thread-owned counters: plain integers, since every connection event
/// funnels through the single edge thread. `replies_dropped` is the one
/// shared counter — shard threads drop replies too, when a connection's
/// write buffer is full — so it is an atomic the edge and all shards share.
#[derive(Debug, Default)]
pub(crate) struct EdgeCounters {
    pub(crate) connections_total: u64,
    pub(crate) connections_open: u64,
    pub(crate) frames_rejected: u64,
    pub(crate) replies_dropped: std::sync::Arc<AtomicU64>,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Aggregates the edge's counters and every shard's counters into one
/// daemon-wide snapshot. `model`/`kind` describe the default registry
/// entry (so pre-v3 consumers keep seeing the fields they expect);
/// `models` is the per-model breakdown built from the registry.
pub(crate) fn aggregate_snapshot(
    model: &str,
    kind: &str,
    edge: &EdgeCounters,
    shards: &[std::sync::Arc<ShardStats>],
    models: Vec<ModelSnapshot>,
) -> StatsSnapshot {
    let sum = |f: &dyn Fn(&ShardStats) -> &AtomicU64| -> u64 {
        shards.iter().map(|s| f(s).load(Ordering::Relaxed)).sum()
    };
    let waves = sum(&|s| &s.waves);
    let occupancy_sum = sum(&|s| &s.occupancy_sum);
    let mut window: Vec<u64> = Vec::new();
    for shard in shards {
        window.extend_from_slice(&shard.window.lock().expect("window lock").wave_ns);
    }
    window.sort_unstable();
    StatsSnapshot {
        model: model.to_string(),
        kind: kind.to_string(),
        shards: shards.len() as u64,
        connections_total: edge.connections_total,
        connections_open: edge.connections_open,
        streams_open: sum(&|s| &s.streams_open),
        streams_opened: sum(&|s| &s.streams_opened),
        streams_evicted: sum(&|s| &s.streams_evicted),
        timesteps_in: sum(&|s| &s.timesteps_in),
        emissions_out: sum(&|s| &s.emissions_out),
        frames_rejected: edge.frames_rejected + sum(&|s| &s.frames_rejected),
        replies_dropped: edge.replies_dropped.load(Ordering::Relaxed),
        waves,
        wave_occupancy: if waves == 0 {
            0.0
        } else {
            occupancy_sum as f64 / waves as f64
        },
        wave_p50_ns: percentile(&window, 0.50),
        wave_p99_ns: percentile(&window, 0.99),
        models,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn snapshot_aggregates_shards_and_roundtrips_through_json() {
        let edge = EdgeCounters {
            connections_total: 3,
            connections_open: 2,
            frames_rejected: 1,
            ..EdgeCounters::default()
        };
        edge.replies_dropped.store(7, Ordering::Relaxed);
        let shards: Vec<Arc<ShardStats>> =
            (0..2).map(|_| Arc::new(ShardStats::default())).collect();
        for (i, shard) in shards.iter().enumerate() {
            shard.streams_open.store(2, Ordering::Relaxed);
            shard.streams_opened.store(5, Ordering::Relaxed);
            shard.timesteps_in.store(500, Ordering::Relaxed);
            shard.emissions_out.store(60 + i as u64, Ordering::Relaxed);
            shard.frames_rejected.store(1, Ordering::Relaxed);
            for j in 0..50u64 {
                shard.record_wave(4, Duration::from_nanos(1000 + j));
            }
        }
        let model_stats = ModelStats::default();
        model_stats.streams_opened.store(5, Ordering::Relaxed);
        model_stats.timesteps_in.store(400, Ordering::Relaxed);
        model_stats.emissions_out.store(40, Ordering::Relaxed);
        model_stats.record_wave(3, Duration::from_nanos(2000));
        let breakdown = vec![model_stats.snapshot("TEMPONet-plan", "f32", 4)];
        let snap = aggregate_snapshot("TEMPONet-plan", "f32", &edge, &shards, breakdown);
        assert_eq!(snap.shards, 2);
        assert_eq!(snap.models.len(), 1);
        assert_eq!(snap.models[0].streams_open, 4);
        assert_eq!(snap.models[0].timesteps_in, 400);
        assert_eq!(snap.models[0].waves, 1);
        assert_eq!(snap.models[0].wave_p50_ns, 2000);
        assert_eq!(snap.streams_open, 4);
        assert_eq!(snap.streams_opened, 10);
        assert_eq!(snap.timesteps_in, 1000);
        assert_eq!(snap.emissions_out, 121);
        assert_eq!(snap.frames_rejected, 3, "edge + shard rejections");
        assert_eq!(snap.replies_dropped, 7);
        assert_eq!(snap.waves, 100);
        assert!((snap.wave_occupancy - 4.0).abs() < 1e-9);
        assert!(snap.wave_p50_ns >= 1000 && snap.wave_p99_ns >= snap.wave_p50_ns);
        let text = snap.to_json().render();
        let back = StatsSnapshot::from_json_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn v1_documents_without_a_shard_count_parse_as_one_shard() {
        let snap = aggregate_snapshot(
            "m",
            "i8",
            &EdgeCounters::default(),
            &[Arc::new(ShardStats::default())],
            vec![],
        );
        let text = snap.to_json().render().replace("\"shards\": 1, ", "");
        let back = StatsSnapshot::from_json_str(&text).unwrap();
        assert_eq!(back.shards, 1);
    }

    #[test]
    fn v2_documents_without_a_models_array_parse_with_an_empty_breakdown() {
        let snap = aggregate_snapshot(
            "m",
            "f32",
            &EdgeCounters::default(),
            &[Arc::new(ShardStats::default())],
            vec![ModelSnapshot {
                name: "m".into(),
                kind: "f32".into(),
                ..ModelSnapshot::default()
            }],
        );
        let text = snap.to_json().render();
        // Strip the v3 models array the way a v2 document simply lacks it:
        // cut from the comma that precedes the "models" key to end-of-doc.
        let key = text.find("\"models\":").expect("models field rendered");
        let comma = text[..key].rfind(',').expect("comma before models key");
        let stripped = format!("{}\n}}", &text[..comma]);
        let back = StatsSnapshot::from_json_str(&stripped).unwrap();
        assert!(back.models.is_empty());
        assert_eq!(back.model, "m");
    }

    #[test]
    fn latency_window_rolls_over() {
        let stats = ShardStats::default();
        for _ in 0..LATENCY_WINDOW {
            stats.record_wave(1, Duration::from_nanos(10));
        }
        // A second full window of slower waves displaces the fast ones.
        for _ in 0..LATENCY_WINDOW {
            stats.record_wave(1, Duration::from_nanos(1_000_000));
        }
        let snap = aggregate_snapshot(
            "m",
            "f32",
            &EdgeCounters::default(),
            &[Arc::new(stats)],
            vec![],
        );
        assert_eq!(snap.wave_p50_ns, 1_000_000);
    }
}
