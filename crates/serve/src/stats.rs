//! Serving counters and the snapshot the STATS frame returns.

use pit_tensor::json::Json;

/// A point-in-time view of the daemon's counters, as returned by the STATS
/// frame (rendered to JSON) and by [`crate::ServerHandle::shutdown`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsSnapshot {
    /// Name of the served plan.
    pub model: String,
    /// `"f32"` or `"i8"`.
    pub kind: String,
    /// Connections accepted since boot.
    pub connections_total: u64,
    /// Connections currently open.
    pub connections_open: u64,
    /// Streams currently open.
    pub streams_open: u64,
    /// Streams opened since boot.
    pub streams_opened: u64,
    /// Streams evicted for idleness.
    pub streams_evicted: u64,
    /// Timesteps accepted into pool queues since boot.
    pub timesteps_in: u64,
    /// Head outputs sent back since boot.
    pub emissions_out: u64,
    /// Frames refused with an ERROR reply (malformed, backpressure, …).
    pub frames_rejected: u64,
    /// Reply frames dropped because a client's outbound queue was full.
    pub replies_dropped: u64,
    /// Pool waves (flush calls that served at least one stream).
    pub waves: u64,
    /// Mean number of streams served per wave.
    pub wave_occupancy: f64,
    /// Median wave (flush) latency in nanoseconds, over the recent window.
    pub wave_p50_ns: u64,
    /// 99th-percentile wave latency in nanoseconds, over the recent window.
    pub wave_p99_ns: u64,
}

impl StatsSnapshot {
    /// Renders the snapshot as the JSON document the STATS frame carries.
    pub fn to_json(&self) -> Json {
        let n = |v: u64| Json::Num(v as f64);
        Json::Obj(vec![
            ("schema".into(), Json::Str("pit-serve-stats/1".into())),
            ("model".into(), Json::Str(self.model.clone())),
            ("kind".into(), Json::Str(self.kind.clone())),
            ("connections_total".into(), n(self.connections_total)),
            ("connections_open".into(), n(self.connections_open)),
            ("streams_open".into(), n(self.streams_open)),
            ("streams_opened".into(), n(self.streams_opened)),
            ("streams_evicted".into(), n(self.streams_evicted)),
            ("timesteps_in".into(), n(self.timesteps_in)),
            ("emissions_out".into(), n(self.emissions_out)),
            ("frames_rejected".into(), n(self.frames_rejected)),
            ("replies_dropped".into(), n(self.replies_dropped)),
            ("waves".into(), n(self.waves)),
            ("wave_occupancy".into(), Json::Num(self.wave_occupancy)),
            ("wave_p50_ns".into(), n(self.wave_p50_ns)),
            ("wave_p99_ns".into(), n(self.wave_p99_ns)),
        ])
    }

    /// Parses a snapshot back from STATS-frame JSON.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or ill-typed field.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text)?;
        let num = |name: &str| -> Result<f64, String> {
            doc.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing number field '{name}'"))
        };
        let int = |name: &str| -> Result<u64, String> { Ok(num(name)? as u64) };
        let text_field = |name: &str| -> Result<String, String> {
            doc.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field '{name}'"))
        };
        Ok(Self {
            model: text_field("model")?,
            kind: text_field("kind")?,
            connections_total: int("connections_total")?,
            connections_open: int("connections_open")?,
            streams_open: int("streams_open")?,
            streams_opened: int("streams_opened")?,
            streams_evicted: int("streams_evicted")?,
            timesteps_in: int("timesteps_in")?,
            emissions_out: int("emissions_out")?,
            frames_rejected: int("frames_rejected")?,
            replies_dropped: int("replies_dropped")?,
            waves: int("waves")?,
            wave_occupancy: num("wave_occupancy")?,
            wave_p50_ns: int("wave_p50_ns")?,
            wave_p99_ns: int("wave_p99_ns")?,
        })
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({}): {} conns ({} open), {} streams open ({} opened, {} evicted), \
             {} timesteps in, {} emissions out, {} rejected, {} waves \
             (occupancy {:.1}, p50 {} ns, p99 {} ns)",
            self.model,
            self.kind,
            self.connections_total,
            self.connections_open,
            self.streams_open,
            self.streams_opened,
            self.streams_evicted,
            self.timesteps_in,
            self.emissions_out,
            self.frames_rejected,
            self.waves,
            self.wave_occupancy,
            self.wave_p50_ns,
            self.wave_p99_ns,
        )
    }
}

/// Size of the rolling wave-latency window percentiles are computed over.
const LATENCY_WINDOW: usize = 4096;

/// The batcher-owned counter block. Single-threaded by design: every event
/// funnels through the wave-batcher thread, so counters are plain integers,
/// not atomics.
#[derive(Debug, Default)]
pub(crate) struct ServerStats {
    pub(crate) connections_total: u64,
    pub(crate) connections_open: u64,
    pub(crate) streams_opened: u64,
    pub(crate) streams_evicted: u64,
    pub(crate) timesteps_in: u64,
    pub(crate) emissions_out: u64,
    pub(crate) frames_rejected: u64,
    pub(crate) replies_dropped: u64,
    pub(crate) waves: u64,
    occupancy_sum: u64,
    /// Rolling window of recent wave latencies (ns).
    wave_ns: Vec<u64>,
    wave_ns_next: usize,
}

impl ServerStats {
    /// Records one flushed wave: how many streams it served and how long the
    /// flush took.
    pub(crate) fn record_wave(&mut self, occupancy: usize, elapsed: std::time::Duration) {
        self.waves += 1;
        self.occupancy_sum += occupancy as u64;
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        if self.wave_ns.len() < LATENCY_WINDOW {
            self.wave_ns.push(ns);
        } else {
            self.wave_ns[self.wave_ns_next] = ns;
            self.wave_ns_next = (self.wave_ns_next + 1) % LATENCY_WINDOW;
        }
    }

    fn percentile(sorted: &[u64], p: f64) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    }

    pub(crate) fn snapshot(&self, model: &str, kind: &str, streams_open: u64) -> StatsSnapshot {
        let mut window = self.wave_ns.clone();
        window.sort_unstable();
        StatsSnapshot {
            model: model.to_string(),
            kind: kind.to_string(),
            connections_total: self.connections_total,
            connections_open: self.connections_open,
            streams_open,
            streams_opened: self.streams_opened,
            streams_evicted: self.streams_evicted,
            timesteps_in: self.timesteps_in,
            emissions_out: self.emissions_out,
            frames_rejected: self.frames_rejected,
            replies_dropped: self.replies_dropped,
            waves: self.waves,
            wave_occupancy: if self.waves == 0 {
                0.0
            } else {
                self.occupancy_sum as f64 / self.waves as f64
            },
            wave_p50_ns: Self::percentile(&window, 0.50),
            wave_p99_ns: Self::percentile(&window, 0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut stats = ServerStats {
            connections_total: 3,
            connections_open: 2,
            streams_opened: 5,
            timesteps_in: 1000,
            emissions_out: 125,
            ..ServerStats::default()
        };
        for i in 0..100u64 {
            stats.record_wave(4, Duration::from_nanos(1000 + i));
        }
        let snap = stats.snapshot("TEMPONet-plan", "f32", 4);
        assert_eq!(snap.waves, 100);
        assert!((snap.wave_occupancy - 4.0).abs() < 1e-9);
        assert!(snap.wave_p50_ns >= 1000 && snap.wave_p99_ns >= snap.wave_p50_ns);
        let text = snap.to_json().render();
        let back = StatsSnapshot::from_json_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn latency_window_rolls_over() {
        let mut stats = ServerStats::default();
        for _ in 0..LATENCY_WINDOW {
            stats.record_wave(1, Duration::from_nanos(10));
        }
        // A second full window of slower waves displaces the fast ones.
        for _ in 0..LATENCY_WINDOW {
            stats.record_wave(1, Duration::from_nanos(1_000_000));
        }
        let snap = stats.snapshot("m", "f32", 0);
        assert_eq!(snap.wave_p50_ns, 1_000_000);
    }
}
