//! Serving counters and the snapshot the STATS frame returns.
//!
//! The daemon's counters live in three places, mirroring its thread and
//! registry layout: the edge thread owns connection-lifecycle counters
//! (`EdgeCounters` — atomics, so the HTTP sidecar can scrape them from its
//! own thread), each wave-batcher shard owns a `ShardStats` block of
//! atomics it updates lock-free from its own thread, and each *registry
//! model* owns a `ModelStats` block all shards share — serving a zoo means
//! one model's streams spread across every shard, so its traffic is
//! accounted where the model is, not where the thread is. A STATS request
//! aggregates all of them into one [`StatsSnapshot`] — per-shard latency
//! histograms are merged before computing percentiles, so p50/p99 describe
//! the whole daemon, not one shard — with one [`ModelSnapshot`] per
//! registry entry (`pit-serve-stats/6`; v1–v5 documents still parse, they
//! simply lack the newer fields).
//!
//! Latency percentiles come from the lock-free log-scale `Histogram`s of
//! `pit_tensor::hist` (exact counts, ≤ ~25% value quantization) and cover
//! the whole run — the old 4096-entry rolling windows and their mutexes
//! are gone.
//!
//! ## Snapshot settling
//!
//! Counters are written by shard threads *after* the edge routed the
//! triggering event, so a snapshot taken immediately after a PUSH can be
//! mid-flight. [`StatsSnapshot::settled`] makes that race observable: the
//! edge increments a per-shard `inflight` counter before every routed
//! event, the shard decrements it only after fully handling the event
//! (including any due wave), and `settled` is true exactly when no shard
//! has routed-but-unhandled events or queued-but-unflushed timesteps.
//! Pollers (tests, scrapers) wait for `settled` instead of sleeping.

use pit_tensor::hist::{Histogram, HistogramSnapshot};
use pit_tensor::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point-in-time view of the daemon's counters, as returned by the STATS
/// frame (rendered to JSON), by `GET /stats` on the metrics sidecar, and
/// by [`crate::ServerHandle::shutdown`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsSnapshot {
    /// Name of the served plan.
    pub model: String,
    /// `"f32"` or `"i8"`.
    pub kind: String,
    /// Number of wave-batcher shards serving the pool.
    pub shards: u64,
    /// Connections accepted since boot.
    pub connections_total: u64,
    /// Connections currently open.
    pub connections_open: u64,
    /// Connections that ended with a clean client disconnect.
    pub connections_closed: u64,
    /// Connections dropped on a transport or framing error.
    pub connections_errored: u64,
    /// Connections killed by the read-progress deadline
    /// ([`crate::ServerConfig::read_progress_timeout`]) — a partial frame
    /// that never completed, or a streamless connection that went silent.
    /// A sub-category of `connections_errored` (expired connections count
    /// in both), so `closed + errored + drained + open == total` holds.
    pub connections_expired: u64,
    /// Connections still open when a graceful drain completed.
    pub connections_drained: u64,
    /// Streams currently open.
    pub streams_open: u64,
    /// Streams opened since boot.
    pub streams_opened: u64,
    /// Streams evicted for idleness.
    pub streams_evicted: u64,
    /// Timesteps accepted into pool queues since boot.
    pub timesteps_in: u64,
    /// Head outputs sent back since boot.
    pub emissions_out: u64,
    /// Frames refused with an ERROR reply (malformed, backpressure, …).
    pub frames_rejected: u64,
    /// Reply frames dropped because a client's outbound queue was full.
    pub replies_dropped: u64,
    /// Highest number of bytes ever queued toward one connection.
    pub outbuf_hwm_bytes: u64,
    /// Pool waves (flush calls that served at least one stream).
    pub waves: u64,
    /// Mean number of streams served per wave.
    pub wave_occupancy: f64,
    /// Median wave (flush) latency in nanoseconds since boot.
    pub wave_p50_ns: u64,
    /// 99th-percentile wave latency in nanoseconds since boot.
    pub wave_p99_ns: u64,
    /// 99.9th-percentile wave latency in nanoseconds since boot (v6+;
    /// zero when parsed from an older document).
    pub wave_p999_ns: u64,
    /// Total shard loop iterations: a monotone sequence number that keeps
    /// advancing while shards are alive, so two equal-`seq` snapshots were
    /// taken between the same pair of shard ticks.
    pub seq: u64,
    /// True when no routed-but-unhandled events or queued-but-unflushed
    /// timesteps were pending at snapshot time — every counter has caught
    /// up with the traffic the edge accepted before this snapshot.
    pub settled: bool,
    /// Per-model breakdown, one entry per registry model (v3+; empty when
    /// parsed from a v1/v2 document).
    pub models: Vec<ModelSnapshot>,
}

/// One registry model's share of the daemon's traffic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ModelSnapshot {
    /// Registry name the model serves under.
    pub name: String,
    /// `"f32"` or `"i8"`.
    pub kind: String,
    /// Streams currently open on this model.
    pub streams_open: u64,
    /// Streams opened on this model since boot.
    pub streams_opened: u64,
    /// Timesteps accepted for this model since boot.
    pub timesteps_in: u64,
    /// Head outputs this model sent back since boot.
    pub emissions_out: u64,
    /// Pool waves that served this model.
    pub waves: u64,
    /// Mean streams served per wave of this model.
    pub wave_occupancy: f64,
    /// Median wave latency (ns) of this model since boot.
    pub wave_p50_ns: u64,
    /// 99th-percentile wave latency (ns) of this model.
    pub wave_p99_ns: u64,
    /// 99.9th-percentile wave latency (ns) of this model (v6+; zero when
    /// parsed from an older document).
    pub wave_p999_ns: u64,
}

impl ModelSnapshot {
    /// Renders one model's breakdown object.
    pub fn to_json(&self) -> Json {
        let n = |v: u64| Json::Num(v as f64);
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("kind".into(), Json::Str(self.kind.clone())),
            ("streams_open".into(), n(self.streams_open)),
            ("streams_opened".into(), n(self.streams_opened)),
            ("timesteps_in".into(), n(self.timesteps_in)),
            ("emissions_out".into(), n(self.emissions_out)),
            ("waves".into(), n(self.waves)),
            ("wave_occupancy".into(), Json::Num(self.wave_occupancy)),
            ("wave_p50_ns".into(), n(self.wave_p50_ns)),
            ("wave_p99_ns".into(), n(self.wave_p99_ns)),
            ("wave_p999_ns".into(), n(self.wave_p999_ns)),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        let num = |name: &str| -> Result<f64, String> {
            doc.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("model breakdown: missing number field '{name}'"))
        };
        let int = |name: &str| -> Result<u64, String> { Ok(num(name)? as u64) };
        let text = |name: &str| -> Result<String, String> {
            doc.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("model breakdown: missing string field '{name}'"))
        };
        Ok(Self {
            name: text("name")?,
            kind: text("kind")?,
            streams_open: int("streams_open")?,
            streams_opened: int("streams_opened")?,
            timesteps_in: int("timesteps_in")?,
            emissions_out: int("emissions_out")?,
            waves: int("waves")?,
            wave_occupancy: num("wave_occupancy")?,
            wave_p50_ns: int("wave_p50_ns")?,
            wave_p99_ns: int("wave_p99_ns")?,
            // Absent before pit-serve-stats/6: default to zero.
            wave_p999_ns: doc
                .get("wave_p999_ns")
                .and_then(Json::as_f64)
                .unwrap_or(0.0) as u64,
        })
    }
}

impl StatsSnapshot {
    /// Renders the snapshot as the JSON document the STATS frame carries.
    pub fn to_json(&self) -> Json {
        let n = |v: u64| Json::Num(v as f64);
        Json::Obj(vec![
            ("schema".into(), Json::Str("pit-serve-stats/6".into())),
            ("model".into(), Json::Str(self.model.clone())),
            ("kind".into(), Json::Str(self.kind.clone())),
            ("shards".into(), n(self.shards)),
            ("connections_total".into(), n(self.connections_total)),
            ("connections_open".into(), n(self.connections_open)),
            ("connections_closed".into(), n(self.connections_closed)),
            ("connections_errored".into(), n(self.connections_errored)),
            ("connections_expired".into(), n(self.connections_expired)),
            ("connections_drained".into(), n(self.connections_drained)),
            ("streams_open".into(), n(self.streams_open)),
            ("streams_opened".into(), n(self.streams_opened)),
            ("streams_evicted".into(), n(self.streams_evicted)),
            ("timesteps_in".into(), n(self.timesteps_in)),
            ("emissions_out".into(), n(self.emissions_out)),
            ("frames_rejected".into(), n(self.frames_rejected)),
            ("replies_dropped".into(), n(self.replies_dropped)),
            ("outbuf_hwm_bytes".into(), n(self.outbuf_hwm_bytes)),
            ("waves".into(), n(self.waves)),
            ("wave_occupancy".into(), Json::Num(self.wave_occupancy)),
            ("wave_p50_ns".into(), n(self.wave_p50_ns)),
            ("wave_p99_ns".into(), n(self.wave_p99_ns)),
            ("wave_p999_ns".into(), n(self.wave_p999_ns)),
            ("seq".into(), n(self.seq)),
            ("settled".into(), Json::Bool(self.settled)),
            (
                "models".into(),
                Json::Arr(self.models.iter().map(ModelSnapshot::to_json).collect()),
            ),
        ])
    }

    /// Parses a snapshot back from STATS-frame JSON.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or ill-typed field.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text)?;
        let num = |name: &str| -> Result<f64, String> {
            doc.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing number field '{name}'"))
        };
        let int = |name: &str| -> Result<u64, String> { Ok(num(name)? as u64) };
        // Absent before pit-serve-stats/4 (or /5 for `connections_expired`,
        // /6 for `wave_p999_ns`): default to zero.
        let opt_int =
            |name: &str| -> u64 { doc.get(name).and_then(Json::as_f64).unwrap_or(0.0) as u64 };
        let text_field = |name: &str| -> Result<String, String> {
            doc.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field '{name}'"))
        };
        Ok(Self {
            model: text_field("model")?,
            kind: text_field("kind")?,
            // Absent in pit-serve-stats/1 documents: default to one shard.
            shards: doc.get("shards").and_then(Json::as_f64).unwrap_or(1.0) as u64,
            connections_total: int("connections_total")?,
            connections_open: int("connections_open")?,
            connections_closed: opt_int("connections_closed"),
            connections_errored: opt_int("connections_errored"),
            connections_expired: opt_int("connections_expired"),
            connections_drained: opt_int("connections_drained"),
            streams_open: int("streams_open")?,
            streams_opened: int("streams_opened")?,
            streams_evicted: int("streams_evicted")?,
            timesteps_in: int("timesteps_in")?,
            emissions_out: int("emissions_out")?,
            frames_rejected: int("frames_rejected")?,
            replies_dropped: int("replies_dropped")?,
            outbuf_hwm_bytes: opt_int("outbuf_hwm_bytes"),
            waves: int("waves")?,
            wave_occupancy: num("wave_occupancy")?,
            wave_p50_ns: int("wave_p50_ns")?,
            wave_p99_ns: int("wave_p99_ns")?,
            wave_p999_ns: opt_int("wave_p999_ns"),
            seq: opt_int("seq"),
            // Pre-v4 documents carry no settling signal; treat them as
            // settled so old pollers keep their previous behavior.
            settled: match doc.get("settled") {
                Some(Json::Bool(b)) => *b,
                _ => true,
            },
            // Absent in pit-serve-stats/1 and /2 documents: no breakdown.
            models: doc
                .get("models")
                .and_then(Json::as_array)
                .map(|arr| arr.iter().map(ModelSnapshot::from_json).collect())
                .transpose()?
                .unwrap_or_default(),
        })
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({}, {} shards): {} conns ({} open), {} streams open ({} opened, {} evicted), \
             {} timesteps in, {} emissions out, {} rejected, {} waves \
             (occupancy {:.1}, p50 {} ns, p99 {} ns, p99.9 {} ns)",
            self.model,
            self.kind,
            self.shards,
            self.connections_total,
            self.connections_open,
            self.streams_open,
            self.streams_opened,
            self.streams_evicted,
            self.timesteps_in,
            self.emissions_out,
            self.frames_rejected,
            self.waves,
            self.wave_occupancy,
            self.wave_p50_ns,
            self.wave_p99_ns,
            self.wave_p999_ns,
        )
    }
}

/// One wave-batcher shard's counter block. The owning shard thread updates
/// the atomics lock-free; the edge thread and the HTTP sidecar read them
/// whenever a STATS request, scrape or shutdown aggregates a snapshot.
#[derive(Debug, Default)]
pub(crate) struct ShardStats {
    pub(crate) streams_open: AtomicU64,
    pub(crate) streams_opened: AtomicU64,
    pub(crate) streams_evicted: AtomicU64,
    pub(crate) timesteps_in: AtomicU64,
    pub(crate) emissions_out: AtomicU64,
    pub(crate) frames_rejected: AtomicU64,
    pub(crate) waves: AtomicU64,
    /// Events the edge routed to this shard but the shard has not fully
    /// handled yet (edge increments *before* sending, shard decrements
    /// with `Release` *after* handling — including any due wave — so a
    /// reader seeing zero also sees every counter update the events made).
    pub(crate) inflight: AtomicU64,
    /// Timesteps queued in this shard's pools at the end of its last loop
    /// iteration (nonzero = a wave is still owed).
    pub(crate) queued_steps: AtomicU64,
    /// Loop iterations since boot (the snapshot sequence contribution).
    pub(crate) ticks: AtomicU64,
    occupancy_sum: AtomicU64,
    wave_ns: Histogram,
}

impl ShardStats {
    /// Records one flushed wave: how many streams it served and how long the
    /// flush took.
    pub(crate) fn record_wave(&self, occupancy: usize, elapsed: std::time::Duration) {
        self.waves.fetch_add(1, Ordering::Relaxed);
        self.occupancy_sum
            .fetch_add(occupancy as u64, Ordering::Relaxed);
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.wave_ns.record(ns);
    }

    /// A copy of this shard's wave-latency histogram (Prometheus export).
    pub(crate) fn wave_ns_snapshot(&self) -> HistogramSnapshot {
        self.wave_ns.snapshot()
    }
}

/// One registry model's counter block, shared by every shard (a model's
/// streams spread across all of them). All fields are atomics; recording a
/// wave is lock-free.
#[derive(Debug, Default)]
pub(crate) struct ModelStats {
    /// Streams currently open on this model — the edge is the only writer
    /// (it owns admission), shards and the sidecar only read.
    pub(crate) streams_open: AtomicU64,
    pub(crate) streams_opened: AtomicU64,
    pub(crate) timesteps_in: AtomicU64,
    pub(crate) emissions_out: AtomicU64,
    waves: AtomicU64,
    occupancy_sum: AtomicU64,
    wave_ns: Histogram,
}

impl ModelStats {
    /// Records one flushed wave of this model's pool on some shard.
    pub(crate) fn record_wave(&self, occupancy: usize, elapsed: std::time::Duration) {
        self.waves.fetch_add(1, Ordering::Relaxed);
        self.occupancy_sum
            .fetch_add(occupancy as u64, Ordering::Relaxed);
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.wave_ns.record(ns);
    }

    /// The model's breakdown entry.
    pub(crate) fn snapshot(&self, name: &str, kind: &str) -> ModelSnapshot {
        let waves = self.waves.load(Ordering::Relaxed);
        let occupancy_sum = self.occupancy_sum.load(Ordering::Relaxed);
        let hist = self.wave_ns.snapshot();
        ModelSnapshot {
            name: name.to_string(),
            kind: kind.to_string(),
            streams_open: self.streams_open.load(Ordering::Relaxed),
            streams_opened: self.streams_opened.load(Ordering::Relaxed),
            timesteps_in: self.timesteps_in.load(Ordering::Relaxed),
            emissions_out: self.emissions_out.load(Ordering::Relaxed),
            waves,
            wave_occupancy: if waves == 0 {
                0.0
            } else {
                occupancy_sum as f64 / waves as f64
            },
            wave_p50_ns: hist.percentile(0.50),
            wave_p99_ns: hist.percentile(0.99),
            wave_p999_ns: hist.percentile(0.999),
        }
    }
}

/// Connection-lifecycle counters. The edge thread is the only writer of
/// most fields, but they are atomics so the HTTP sidecar can scrape them
/// from its own thread without a lock. `replies_dropped` and `outbuf_hwm`
/// are `Arc`s because shard threads update them too, through each
/// connection's [`crate::edge::OutBuf`].
#[derive(Debug, Default)]
pub(crate) struct EdgeCounters {
    pub(crate) connections_total: AtomicU64,
    pub(crate) connections_open: AtomicU64,
    pub(crate) connections_closed: AtomicU64,
    pub(crate) connections_errored: AtomicU64,
    /// Read-progress-deadline kills; also counted in `connections_errored`.
    pub(crate) connections_expired: AtomicU64,
    pub(crate) connections_drained: AtomicU64,
    pub(crate) frames_rejected: AtomicU64,
    pub(crate) replies_dropped: Arc<AtomicU64>,
    /// High-water mark of bytes queued toward any single connection.
    pub(crate) outbuf_hwm: Arc<AtomicU64>,
}

/// Aggregates the edge's counters and every shard's counters into one
/// daemon-wide snapshot. `model`/`kind` describe the default registry
/// entry (so pre-v3 consumers keep seeing the fields they expect);
/// `models` is the per-model breakdown built from the registry.
pub(crate) fn aggregate_snapshot(
    model: &str,
    kind: &str,
    edge: &EdgeCounters,
    shards: &[Arc<ShardStats>],
    models: Vec<ModelSnapshot>,
) -> StatsSnapshot {
    let sum = |f: &dyn Fn(&ShardStats) -> &AtomicU64| -> u64 {
        shards.iter().map(|s| f(s).load(Ordering::Relaxed)).sum()
    };
    let waves = sum(&|s| &s.waves);
    let occupancy_sum = sum(&|s| &s.occupancy_sum);
    let mut hist = HistogramSnapshot::empty();
    for shard in shards {
        hist.merge(&shard.wave_ns.snapshot());
    }
    // Acquire pairs with the shards' Release decrements/stores: a settled
    // observation implies every counter those events touched is visible.
    let settled = shards.iter().all(|s| {
        s.inflight.load(Ordering::Acquire) == 0 && s.queued_steps.load(Ordering::Acquire) == 0
    });
    let seq = shards.iter().map(|s| s.ticks.load(Ordering::Acquire)).sum();
    StatsSnapshot {
        model: model.to_string(),
        kind: kind.to_string(),
        shards: shards.len() as u64,
        connections_total: edge.connections_total.load(Ordering::Relaxed),
        connections_open: edge.connections_open.load(Ordering::Relaxed),
        connections_closed: edge.connections_closed.load(Ordering::Relaxed),
        connections_errored: edge.connections_errored.load(Ordering::Relaxed),
        connections_expired: edge.connections_expired.load(Ordering::Relaxed),
        connections_drained: edge.connections_drained.load(Ordering::Relaxed),
        streams_open: sum(&|s| &s.streams_open),
        streams_opened: sum(&|s| &s.streams_opened),
        streams_evicted: sum(&|s| &s.streams_evicted),
        timesteps_in: sum(&|s| &s.timesteps_in),
        emissions_out: sum(&|s| &s.emissions_out),
        frames_rejected: edge.frames_rejected.load(Ordering::Relaxed)
            + sum(&|s| &s.frames_rejected),
        replies_dropped: edge.replies_dropped.load(Ordering::Relaxed),
        outbuf_hwm_bytes: edge.outbuf_hwm.load(Ordering::Relaxed),
        waves,
        wave_occupancy: if waves == 0 {
            0.0
        } else {
            occupancy_sum as f64 / waves as f64
        },
        wave_p50_ns: hist.percentile(0.50),
        wave_p99_ns: hist.percentile(0.99),
        wave_p999_ns: hist.percentile(0.999),
        seq,
        settled,
        models,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn snapshot_aggregates_shards_and_roundtrips_through_json() {
        let edge = EdgeCounters::default();
        edge.connections_total.store(3, Ordering::Relaxed);
        edge.connections_open.store(2, Ordering::Relaxed);
        edge.connections_closed.store(1, Ordering::Relaxed);
        edge.frames_rejected.store(1, Ordering::Relaxed);
        edge.replies_dropped.store(7, Ordering::Relaxed);
        edge.outbuf_hwm.store(12_345, Ordering::Relaxed);
        let shards: Vec<Arc<ShardStats>> =
            (0..2).map(|_| Arc::new(ShardStats::default())).collect();
        for (i, shard) in shards.iter().enumerate() {
            shard.streams_open.store(2, Ordering::Relaxed);
            shard.streams_opened.store(5, Ordering::Relaxed);
            shard.timesteps_in.store(500, Ordering::Relaxed);
            shard.emissions_out.store(60 + i as u64, Ordering::Relaxed);
            shard.frames_rejected.store(1, Ordering::Relaxed);
            shard.ticks.store(10, Ordering::Relaxed);
            for j in 0..50u64 {
                shard.record_wave(4, Duration::from_nanos(1000 + j));
            }
        }
        let model_stats = ModelStats::default();
        model_stats.streams_open.store(4, Ordering::Relaxed);
        model_stats.streams_opened.store(5, Ordering::Relaxed);
        model_stats.timesteps_in.store(400, Ordering::Relaxed);
        model_stats.emissions_out.store(40, Ordering::Relaxed);
        model_stats.record_wave(3, Duration::from_nanos(2000));
        let breakdown = vec![model_stats.snapshot("TEMPONet-plan", "f32")];
        let snap = aggregate_snapshot("TEMPONet-plan", "f32", &edge, &shards, breakdown);
        assert_eq!(snap.shards, 2);
        assert_eq!(snap.models.len(), 1);
        assert_eq!(snap.models[0].streams_open, 4);
        assert_eq!(snap.models[0].timesteps_in, 400);
        assert_eq!(snap.models[0].waves, 1);
        // Histogram percentiles report the containing bucket's upper
        // bound: exact count, value within a quarter above the sample.
        assert!(
            (2000..=2500).contains(&snap.models[0].wave_p50_ns),
            "p50={}",
            snap.models[0].wave_p50_ns
        );
        assert_eq!(snap.streams_open, 4);
        assert_eq!(snap.streams_opened, 10);
        assert_eq!(snap.timesteps_in, 1000);
        assert_eq!(snap.emissions_out, 121);
        assert_eq!(snap.frames_rejected, 3, "edge + shard rejections");
        assert_eq!(snap.replies_dropped, 7);
        assert_eq!(snap.connections_closed, 1);
        assert_eq!(snap.outbuf_hwm_bytes, 12_345);
        assert_eq!(snap.waves, 100);
        assert_eq!(snap.seq, 20);
        assert!(snap.settled, "no in-flight events were registered");
        assert!((snap.wave_occupancy - 4.0).abs() < 1e-9);
        assert!(snap.wave_p50_ns >= 1000 && snap.wave_p99_ns >= snap.wave_p50_ns);
        let text = snap.to_json().render();
        let back = StatsSnapshot::from_json_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn inflight_events_or_queued_steps_unsettle_the_snapshot() {
        let shards: Vec<Arc<ShardStats>> =
            (0..2).map(|_| Arc::new(ShardStats::default())).collect();
        let snap = aggregate_snapshot("m", "f32", &EdgeCounters::default(), &shards, vec![]);
        assert!(snap.settled);
        shards[1].inflight.store(1, Ordering::Relaxed);
        let snap = aggregate_snapshot("m", "f32", &EdgeCounters::default(), &shards, vec![]);
        assert!(!snap.settled, "a routed event keeps the snapshot unsettled");
        shards[1].inflight.store(0, Ordering::Relaxed);
        shards[0].queued_steps.store(8, Ordering::Relaxed);
        let snap = aggregate_snapshot("m", "f32", &EdgeCounters::default(), &shards, vec![]);
        assert!(!snap.settled, "queued timesteps owe a wave");
    }

    #[test]
    fn v1_documents_without_a_shard_count_parse_as_one_shard() {
        let snap = aggregate_snapshot(
            "m",
            "i8",
            &EdgeCounters::default(),
            &[Arc::new(ShardStats::default())],
            vec![],
        );
        let text = snap.to_json().render().replace("\"shards\": 1, ", "");
        let back = StatsSnapshot::from_json_str(&text).unwrap();
        assert_eq!(back.shards, 1);
    }

    #[test]
    fn v2_documents_without_a_models_array_parse_with_an_empty_breakdown() {
        let snap = aggregate_snapshot(
            "m",
            "f32",
            &EdgeCounters::default(),
            &[Arc::new(ShardStats::default())],
            vec![ModelSnapshot {
                name: "m".into(),
                kind: "f32".into(),
                ..ModelSnapshot::default()
            }],
        );
        let text = snap.to_json().render();
        // Strip the v3 models array the way a v2 document simply lacks it:
        // cut from the comma that precedes the "models" key to end-of-doc.
        let key = text.find("\"models\":").expect("models field rendered");
        let comma = text[..key].rfind(',').expect("comma before models key");
        let stripped = format!("{}\n}}", &text[..comma]);
        let back = StatsSnapshot::from_json_str(&stripped).unwrap();
        assert!(back.models.is_empty());
        assert_eq!(back.model, "m");
    }

    #[test]
    fn pre_v4_documents_parse_with_settled_defaults() {
        // A v3-shaped document: no lifecycle counters, no seq/settled.
        let text = r#"{
            "schema": "pit-serve-stats/3", "model": "m", "kind": "f32",
            "shards": 2, "connections_total": 1, "connections_open": 1,
            "streams_open": 0, "streams_opened": 3, "streams_evicted": 0,
            "timesteps_in": 10, "emissions_out": 10, "frames_rejected": 0,
            "replies_dropped": 0, "waves": 2, "wave_occupancy": 1.5,
            "wave_p50_ns": 100, "wave_p99_ns": 200, "models": []
        }"#;
        let snap = StatsSnapshot::from_json_str(text).unwrap();
        assert_eq!(snap.connections_closed, 0);
        assert_eq!(snap.outbuf_hwm_bytes, 0);
        assert_eq!(snap.seq, 0);
        assert!(snap.settled, "pre-v4 documents read as settled");
        assert_eq!(snap.wave_p999_ns, 0, "pre-v6 documents lack p99.9");
    }

    #[test]
    fn v5_model_breakdowns_without_p999_parse_with_zero() {
        let text = r#"{
            "name": "m", "kind": "i8", "streams_open": 1,
            "streams_opened": 2, "timesteps_in": 30, "emissions_out": 3,
            "waves": 4, "wave_occupancy": 1.0,
            "wave_p50_ns": 100, "wave_p99_ns": 200
        }"#;
        let doc = Json::parse(text).unwrap();
        let m = ModelSnapshot::from_json(&doc).unwrap();
        assert_eq!(m.wave_p99_ns, 200);
        assert_eq!(m.wave_p999_ns, 0);
    }

    #[test]
    fn latency_percentiles_span_the_whole_run() {
        let stats = ShardStats::default();
        for _ in 0..1000 {
            stats.record_wave(1, Duration::from_nanos(10));
        }
        for _ in 0..1000 {
            stats.record_wave(1, Duration::from_nanos(1_000_000));
        }
        let snap = aggregate_snapshot(
            "m",
            "f32",
            &EdgeCounters::default(),
            &[Arc::new(stats)],
            vec![],
        );
        // Half fast, half slow: the rank convention puts the p50 on the
        // first slow observation, and unlike the old rolling window the
        // histogram never forgets the early fast waves (p0 stays fast).
        assert!(
            (1_000_000..=1_250_000).contains(&snap.wave_p50_ns),
            "p50={}",
            snap.wave_p50_ns
        );
        assert!(snap.wave_p99_ns >= 1_000_000, "p99={}", snap.wave_p99_ns);
        assert!(
            snap.wave_p999_ns >= snap.wave_p99_ns,
            "p99.9={} p99={}",
            snap.wave_p999_ns,
            snap.wave_p99_ns
        );
        assert_eq!(snap.waves, 2000);
    }
}
