//! The HTTP telemetry sidecar: a hand-rolled HTTP/1.1 server on the same
//! nonblocking-socket/`poll(2)` machinery as the edge ([`crate::edge`]),
//! serving scrapes without adding a dependency or touching the edge
//! loop's latency.
//!
//! The sidecar is deliberately minimal: `GET` only, one request per
//! connection (`Connection: close`), bounded request size, bounded client
//! lifetime. Four routes:
//!
//! | Route | Body |
//! |---|---|
//! | `GET /metrics` | Prometheus text exposition (format 0.0.4) |
//! | `GET /stats` | The same `pit-serve-stats` JSON as the STATS frame |
//! | `GET /healthz` | `{"state":...}` — `200` serving, `503` booting/draining |
//! | `GET /trace?conn=N&stream=M` | `pit-serve-trace/1` JSON (filters optional) |
//!
//! Everything renders from the shared [`Telemetry`] hub — the same
//! atomics the binary-protocol STATS frame aggregates, so the HTTP and
//! binary views can never disagree about totals.

use crate::edge::{poll_fds, pollfd, PollFd, WakePipe, POLLERR, POLLHUP, POLLIN, POLLOUT};
use crate::telemetry::{ServeState, Telemetry};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Longest request (line plus headers) the sidecar accepts; anything
/// larger is answered `400` and hung up on.
const MAX_REQUEST_BYTES: usize = 8 * 1024;
/// A client gets this long to deliver its request and accept the
/// response; slow or stalled clients are dropped at the deadline so they
/// can never pin sidecar resources.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(5);
/// Sidecar poll timeout: the latency floor for noticing the stop flag
/// when the waker pipe is not rung.
const SIDECAR_POLL_MS: i32 = 100;

/// One sidecar connection: request bytes accumulate in `buf` until the
/// header terminator, then the response accumulates in `out` until
/// flushed. One request per connection.
struct HttpConn {
    stream: TcpStream,
    buf: Vec<u8>,
    out: Vec<u8>,
    written: usize,
    responded: bool,
    /// Response fully flushed and the write side shut down; the
    /// connection lingers, draining reads, until the client EOFs (so a
    /// client mid-send never takes an RST that could clip the response).
    lingering: bool,
    /// Client closed its write side.
    eof: bool,
    deadline: Instant,
}

impl HttpConn {
    /// Reads whatever the socket has; returns `false` on a transport
    /// error (the connection is finished).
    fn read_some(&mut self, telemetry: &Telemetry) -> bool {
        use std::io::Read;
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    return true;
                }
                Ok(n) => {
                    if self.responded {
                        // Bytes after the one allowed request (an
                        // oversized body, pipelining) are discarded; the
                        // response is already queued.
                        continue;
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                    if self.buf.len() > MAX_REQUEST_BYTES {
                        self.respond(simple_response(
                            400,
                            "Bad Request",
                            "text/plain; charset=utf-8",
                            "request too large\n",
                            None,
                        ));
                        continue;
                    }
                    if let Some(end) = find_header_end(&self.buf) {
                        let head = String::from_utf8_lossy(&self.buf[..end]).into_owned();
                        let line = head.lines().next().unwrap_or_default().to_string();
                        self.respond(handle_request(telemetry, &line));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    fn respond(&mut self, response: Vec<u8>) {
        self.out = response;
        self.written = 0;
        self.responded = true;
    }

    /// Flushes queued response bytes; returns `false` on a transport
    /// error. Once the response is fully delivered the write side shuts
    /// down and the connection lingers until the client EOFs.
    fn write_some(&mut self) -> bool {
        use std::io::Write;
        while self.written < self.out.len() {
            match self.stream.write(&self.out[self.written..]) {
                Ok(0) => return false,
                Ok(n) => self.written += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if !self.lingering {
            self.lingering = true;
            let _ = self.stream.shutdown(std::net::Shutdown::Write);
        }
        true
    }
}

/// Index one past the `\r\n\r\n` header terminator, if present.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Renders a complete HTTP/1.1 response with the standard sidecar
/// headers. `extra` smuggles route-specific headers (e.g. `Allow`).
fn simple_response(
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    extra: Option<&str>,
) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    if let Some(extra) = extra {
        head.push_str(extra);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// Parses a `/trace` query string (`conn=N&stream=M`, both optional).
fn parse_trace_query(query: &str) -> Result<(Option<u64>, Option<u32>), String> {
    let mut conn = None;
    let mut stream = None;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "conn" => {
                conn = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("bad conn '{value}'"))?,
                );
            }
            "stream" => {
                stream = Some(
                    value
                        .parse::<u32>()
                        .map_err(|_| format!("bad stream '{value}'"))?,
                );
            }
            _ => {}
        }
    }
    Ok((conn, stream))
}

/// Routes one request line to its response.
fn handle_request(telemetry: &Telemetry, request_line: &str) -> Vec<u8> {
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return simple_response(
            400,
            "Bad Request",
            "text/plain; charset=utf-8",
            "malformed request line\n",
            None,
        );
    };
    if method != "GET" {
        return simple_response(
            405,
            "Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n",
            Some("Allow: GET"),
        );
    }
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    match path {
        "/metrics" => simple_response(
            200,
            "OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &telemetry.render_prometheus(),
            None,
        ),
        "/stats" => simple_response(
            200,
            "OK",
            "application/json",
            &telemetry.snapshot().to_json().render(),
            None,
        ),
        "/healthz" => {
            let state = telemetry.state();
            let body = format!("{{\"state\":\"{}\"}}\n", state.as_str());
            if state == ServeState::Serving {
                simple_response(200, "OK", "application/json", &body, None)
            } else {
                simple_response(503, "Service Unavailable", "application/json", &body, None)
            }
        }
        "/trace" => match parse_trace_query(query) {
            Ok((conn, stream)) => simple_response(
                200,
                "OK",
                "application/json",
                &telemetry.trace_json(conn, stream),
                None,
            ),
            Err(e) => simple_response(
                400,
                "Bad Request",
                "text/plain; charset=utf-8",
                &format!("{e}\n"),
                None,
            ),
        },
        _ => simple_response(
            404,
            "Not Found",
            "text/plain; charset=utf-8",
            "unknown path\n",
            None,
        ),
    }
}

/// The sidecar's thread body: accepts, reads, routes and flushes until
/// `stop` is raised (the edge rings `pipe`'s waker on shutdown).
pub(crate) fn serve(
    listener: TcpListener,
    pipe: WakePipe,
    stop: Arc<AtomicBool>,
    telemetry: Arc<Telemetry>,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let mut conns: Vec<HttpConn> = Vec::new();
    let mut fds: Vec<PollFd> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        fds.clear();
        fds.push(pollfd(pipe.fd(), POLLIN));
        fds.push(pollfd(listener.as_raw_fd(), POLLIN));
        for conn in &conns {
            // Always readable: before the response to assemble the
            // request, after it to drain and detect the client's EOF.
            let mut events = POLLIN;
            if conn.written < conn.out.len() {
                events |= POLLOUT;
            }
            fds.push(pollfd(conn.stream.as_raw_fd(), events));
        }
        let _ = poll_fds(&mut fds, SIDECAR_POLL_MS);
        pipe.drain();
        if stop.load(Ordering::SeqCst) {
            return;
        }
        if fds[1].revents & (POLLIN | POLLERR) != 0 {
            while let Ok((stream, _peer)) = listener.accept() {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                conns.push(HttpConn {
                    stream,
                    buf: Vec::new(),
                    out: Vec::new(),
                    written: 0,
                    responded: false,
                    lingering: false,
                    eof: false,
                    deadline: Instant::now() + CLIENT_TIMEOUT,
                });
            }
        }
        // fds[2..] was built from the conns present before this
        // iteration's accepts; fresh connections poll next time around.
        let polled = fds.len() - 2;
        let now = Instant::now();
        let mut index = 0usize;
        conns.retain_mut(|conn| {
            let revents = if index < polled {
                fds[2 + index].revents
            } else {
                0
            };
            index += 1;
            if now >= conn.deadline {
                return false;
            }
            if revents & (POLLIN | POLLHUP | POLLERR) != 0 && !conn.read_some(&telemetry) {
                return false;
            }
            if conn.responded && !conn.write_some() {
                return false;
            }
            // Fully served and the client is done talking: close.
            !(conn.lingering && conn.eof)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ModelStats;
    use crate::telemetry::ModelMeta;

    fn test_telemetry() -> Telemetry {
        let telemetry = Telemetry::new();
        telemetry.install_models(
            vec![ModelMeta {
                name: "m".into(),
                kind: "f32",
                stats: Arc::new(ModelStats::default()),
            }],
            0,
        );
        telemetry
    }

    fn response_text(bytes: Vec<u8>) -> String {
        String::from_utf8(bytes).expect("sidecar responses are UTF-8")
    }

    #[test]
    fn routes_resolve_and_unknowns_get_404() {
        let t = test_telemetry();
        let metrics = response_text(handle_request(&t, "GET /metrics HTTP/1.1"));
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.contains("pit_serve_connections_total"));
        let stats = response_text(handle_request(&t, "GET /stats HTTP/1.1"));
        assert!(stats.contains("application/json"));
        assert!(stats.contains("pit-serve-stats"));
        let missing = response_text(handle_request(&t, "GET /nope HTTP/1.1"));
        assert!(missing.starts_with("HTTP/1.1 404 "));
    }

    #[test]
    fn healthz_reflects_lifecycle_state() {
        let t = test_telemetry();
        // Booting: bound but not serving yet.
        let booting = response_text(handle_request(&t, "GET /healthz HTTP/1.1"));
        assert!(booting.starts_with("HTTP/1.1 503 "), "{booting}");
        assert!(booting.contains("\"booting\""));
        t.set_state(ServeState::Serving);
        let serving = response_text(handle_request(&t, "GET /healthz HTTP/1.1"));
        assert!(serving.starts_with("HTTP/1.1 200 "), "{serving}");
        assert!(serving.contains("\"serving\""));
        t.set_state(ServeState::Draining);
        let draining = response_text(handle_request(&t, "GET /healthz HTTP/1.1"));
        assert!(draining.starts_with("HTTP/1.1 503 "), "{draining}");
        assert!(draining.contains("\"draining\""));
    }

    #[test]
    fn non_get_methods_are_refused_with_allow() {
        let t = test_telemetry();
        let post = response_text(handle_request(&t, "POST /metrics HTTP/1.1"));
        assert!(post.starts_with("HTTP/1.1 405 "));
        assert!(post.contains("Allow: GET\r\n"));
        let bad = response_text(handle_request(&t, "GARBAGE"));
        assert!(bad.starts_with("HTTP/1.1 400 "));
    }

    #[test]
    fn trace_query_filters_parse_and_reject_bad_numbers() {
        assert_eq!(parse_trace_query(""), Ok((None, None)));
        assert_eq!(parse_trace_query("conn=3"), Ok((Some(3), None)));
        assert_eq!(parse_trace_query("conn=3&stream=7"), Ok((Some(3), Some(7))));
        assert_eq!(parse_trace_query("stream=7&other=x"), Ok((None, Some(7))));
        assert!(parse_trace_query("conn=abc").is_err());
        assert!(parse_trace_query("stream=-1").is_err());
        let t = test_telemetry();
        let bad = response_text(handle_request(&t, "GET /trace?conn=zzz HTTP/1.1"));
        assert!(bad.starts_with("HTTP/1.1 400 "));
        let ok = response_text(handle_request(&t, "GET /trace?conn=1 HTTP/1.1"));
        assert!(ok.contains("pit-serve-trace/1"));
    }

    #[test]
    fn content_length_matches_the_body() {
        let t = test_telemetry();
        let raw = handle_request(&t, "GET /metrics HTTP/1.1");
        let end = find_header_end(&raw).expect("header terminator");
        let head = String::from_utf8_lossy(&raw[..end]);
        let length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length header")
            .trim()
            .parse()
            .unwrap();
        assert_eq!(length, raw.len() - end);
    }

    #[test]
    fn header_end_detection_needs_the_full_terminator() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\n"), Some(18));
        assert_eq!(find_header_end(b"partial"), None);
    }
}
