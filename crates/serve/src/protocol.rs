//! The `pit-serve` wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame is `u32` little-endian *body length* followed by the body:
//! one opcode byte plus an opcode-specific payload. All integers are
//! little-endian; samples and emissions are `f32` little-endian. One
//! connection multiplexes many streams — the client names each stream with
//! its own `u32` id, scoped to the connection.
//!
//! | dir | opcode | frame        | payload                                            |
//! |-----|--------|--------------|----------------------------------------------------|
//! | →   | `0x01` | OPEN         | `u32` stream id \[, `u16` name len, UTF-8 model name\] |
//! | →   | `0x02` | PUSH         | `u32` stream, `u32` count, `u32` channels, samples |
//! | →   | `0x03` | CLOSE        | `u32` stream id                                    |
//! | →   | `0x04` | PING         | `u64` token                                        |
//! | →   | `0x05` | STATS        | —                                                  |
//! | →   | `0x06` | LOAD_MODEL   | UTF-8 artifact path                                |
//! | →   | `0x07` | PUSH_N       | `u32` channels, `u32` n, n×(`u32` stream, `u32` count), samples |
//! | →   | `0x08` | LIST_MODELS  | —                                                  |
//! | →   | `0x09` | TRACE        | `u32` stream id                                    |
//! | ←   | `0x81` | OPENED       | `u32` stream id                                    |
//! | ←   | `0x82` | EMIT         | `u32` stream, `u32` count, `u32` dim, outputs      |
//! | ←   | `0x83` | CLOSED       | `u32` stream id, `u8` reason                       |
//! | ←   | `0x84` | PONG         | `u64` token                                        |
//! | ←   | `0x85` | STATS_JSON   | UTF-8 JSON (a [`crate::StatsSnapshot`])            |
//! | ←   | `0x86` | MODEL_LOADED | UTF-8 plan name                                    |
//! | ←   | `0x87` | EMIT_N       | `u32` dim, `u32` n, n×(`u32` stream, `u32` count), outputs |
//! | ←   | `0x88` | MODELS_JSON  | UTF-8 JSON (model registry metadata)               |
//! | ←   | `0x89` | TRACE_JSON   | UTF-8 JSON (a `pit-serve-trace/1` document)        |
//! | ←   | `0xFF` | ERROR        | `u8` code, UTF-8 message                           |
//!
//! ## Protocol v2: batched frames
//!
//! `PUSH_N`/`EMIT_N` are the v2 additions: one frame carries timesteps for
//! *many streams at once*, amortizing the length prefix, opcode dispatch and
//! — far more importantly — the per-frame syscalls across a whole fleet of
//! streams on the connection. Samples/outputs are concatenated in entry
//! order, each entry contributing `count × channels` (resp. `count × dim`)
//! values, timestep-major. v1 single-stream frames keep working unchanged: a
//! connection opts into v2 replies simply by sending any `PUSH_N` — from
//! then on the server coalesces each wave's emissions into `EMIT_N` frames
//! (v1 connections keep receiving per-stream `EMIT`).
//!
//! ## Protocol v3: the model zoo
//!
//! v3 makes the daemon multi-model. `OPEN` grows an *optional* trailing
//! model-name field — `u16` LE length then that many UTF-8 bytes, selecting
//! which registry entry serves the stream. A 5-byte v1/v2 OPEN body means
//! "the default model", so old clients are bit-for-bit unchanged; a name the
//! registry does not hold is refused with [`ErrorCode::UnknownModel`]. A
//! zero-length or length-mismatched name field is malformed
//! ([`ErrorCode::BadFrame`]). `LIST_MODELS` (`0x08`, empty payload) asks for
//! the registry: the `MODELS_JSON` (`0x88`) reply carries one JSON object
//! per model (name, kind, channels/dim, receptive field, open-stream gauge,
//! default flag).
//!
//! `LOAD_MODEL` is re-specified as **add-or-replace-by-name**: loading an
//! artifact whose plan name is new *adds* it to the registry (even while
//! other models serve streams); loading one whose name already exists
//! atomically *replaces* that entry — refused with
//! [`ErrorCode::StreamsActive`] while the named model itself has open
//! streams, so no stream ever hops pools mid-life. Pre-v3 daemons served
//! exactly one model, for which these semantics degenerate to the old
//! whole-daemon swap.
//!
//! Decoding is defensive by construction: bodies are bounded by
//! [`MAX_FRAME_BODY`] before any allocation, every multi-byte field checks
//! the remaining length, and a malformed body yields a [`FrameError`] — the
//! daemon replies with an ERROR frame instead of dying. Only a length
//! prefix beyond the bound is fatal to the connection (framing can no
//! longer be trusted), and even that never takes the daemon down.

use std::io::Read;

/// Upper bound on one frame body. Large enough for a burst PUSH of
/// thousands of wide timesteps; small enough that a hostile length prefix
/// cannot make the daemon allocate unbounded memory.
pub const MAX_FRAME_BODY: usize = 1 << 20;

/// Upper bound on an OPEN model name in bytes — the field carries a `u16`
/// length prefix, so this is the longest name the wire can represent. The
/// client API refuses longer (or empty) names with a protocol error
/// instead of truncating the length and emitting a malformed frame.
pub const MAX_MODEL_NAME: usize = u16::MAX as usize;

/// Why the server closed a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// The client asked (CLOSE frame).
    ByClient = 0,
    /// Evicted after the configured idle timeout.
    IdleEvicted = 1,
    /// Server drained the stream during graceful shutdown.
    Drained = 2,
}

impl CloseReason {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(CloseReason::ByClient),
            1 => Some(CloseReason::IdleEvicted),
            2 => Some(CloseReason::Drained),
            _ => None,
        }
    }
}

/// Error codes carried by ERROR frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed frame body (truncated fields, bad counts, bad UTF-8).
    BadFrame = 1,
    /// Opcode the server does not understand.
    UnknownOpcode = 2,
    /// PUSH/CLOSE for a stream id that was never opened (or already closed).
    UnknownStream = 3,
    /// OPEN for a stream id already open on this connection.
    DuplicateStream = 4,
    /// The connection's pending-timestep backpressure cap was hit; the PUSH
    /// was dropped — flush emissions before pushing more.
    Backpressure = 5,
    /// The server-wide stream limit was hit.
    ServerFull = 6,
    /// LOAD_MODEL failed (unreadable file, corrupt artifact).
    LoadFailed = 7,
    /// LOAD_MODEL replace rejected because the named model has open streams.
    StreamsActive = 8,
    /// The server is draining; no new work accepted.
    ShuttingDown = 9,
    /// OPEN named a model the registry does not hold.
    UnknownModel = 10,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(ErrorCode::BadFrame),
            2 => Some(ErrorCode::UnknownOpcode),
            3 => Some(ErrorCode::UnknownStream),
            4 => Some(ErrorCode::DuplicateStream),
            5 => Some(ErrorCode::Backpressure),
            6 => Some(ErrorCode::ServerFull),
            7 => Some(ErrorCode::LoadFailed),
            8 => Some(ErrorCode::StreamsActive),
            9 => Some(ErrorCode::ShuttingDown),
            10 => Some(ErrorCode::UnknownModel),
            _ => None,
        }
    }
}

/// A frame the client sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// Open a stream under a connection-scoped id of the client's choosing.
    Open {
        /// Connection-scoped stream id.
        stream_id: u32,
        /// Protocol v3: which registry model serves the stream. `None`
        /// encodes the 5-byte v1 body and means the server's default model.
        model: Option<String>,
    },
    /// Push `samples.len() / channels` timesteps onto an open stream.
    Push {
        /// Connection-scoped stream id.
        stream_id: u32,
        /// Channels per timestep (must match the served plan).
        channels: u32,
        /// `count × channels` values, timestep-major.
        samples: Vec<f32>,
    },
    /// Close a stream in an orderly way: timesteps already pushed are
    /// flushed and their emissions delivered before the CLOSED reply, then
    /// the pool slot is recycled.
    Close {
        /// Connection-scoped stream id.
        stream_id: u32,
    },
    /// Liveness / latency probe; the server echoes the token.
    Ping {
        /// Echo token.
        token: u64,
    },
    /// Request a [`crate::StatsSnapshot`] as JSON.
    Stats,
    /// Load a `pit-arch/2` artifact into the registry under its plan name:
    /// a new name is added beside the existing models, an existing name is
    /// atomically replaced (refused while that model has open streams).
    LoadModel {
        /// Path to a `pit-arch/2` artifact on the server host.
        path: String,
    },
    /// Protocol v2: push timesteps for many streams in one frame. Sending
    /// this opts the connection into coalesced [`ServerFrame::EmitN`]
    /// replies.
    PushN {
        /// Channels per timestep (must match the served plan).
        channels: u32,
        /// `(stream_id, timestep count)` per stream, in payload order.
        entries: Vec<(u32, u32)>,
        /// Concatenated samples: `Σ countᵢ × channels` values, entry-major
        /// then timestep-major.
        samples: Vec<f32>,
    },
    /// Protocol v3: request the model registry as a
    /// [`ServerFrame::ModelsJson`] reply.
    ListModels,
    /// Protocol v4: request the daemon's per-stream event trace, filtered
    /// to this connection's given stream id, as a
    /// [`ServerFrame::TraceJson`] reply.
    Trace {
        /// Connection-scoped stream id to filter the trace to.
        stream_id: u32,
    },
}

/// A frame the server sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// OPEN accepted.
    Opened {
        /// The stream id from the OPEN frame.
        stream_id: u32,
    },
    /// `count` head outputs of `dim` values each, chronological.
    Emit {
        /// Connection-scoped stream id.
        stream_id: u32,
        /// Number of output vectors.
        count: u32,
        /// Values per output vector.
        dim: u32,
        /// `count × dim` values.
        outputs: Vec<f32>,
    },
    /// A stream ended (client request, idle eviction or server drain).
    Closed {
        /// Connection-scoped stream id.
        stream_id: u32,
        /// Why the stream ended.
        reason: CloseReason,
    },
    /// PING reply.
    Pong {
        /// The token from the PING frame.
        token: u64,
    },
    /// STATS reply.
    StatsJson {
        /// A rendered [`crate::StatsSnapshot`].
        json: String,
    },
    /// LOAD_MODEL succeeded.
    ModelLoaded {
        /// Name of the now-served plan.
        name: String,
    },
    /// Protocol v2: one wave's emissions for many streams in one frame (sent
    /// to connections that have pushed with [`ClientFrame::PushN`]).
    EmitN {
        /// Values per output vector.
        dim: u32,
        /// `(stream_id, output-vector count)` per stream, in payload order.
        entries: Vec<(u32, u32)>,
        /// Concatenated outputs: `Σ countᵢ × dim` values, entry-major then
        /// chronological per stream.
        outputs: Vec<f32>,
    },
    /// Protocol v3: LIST_MODELS reply — a JSON array of registry entries
    /// (the wire form behind [`crate::ModelInfo`]).
    ModelsJson {
        /// Rendered JSON array, one object per model.
        json: String,
    },
    /// Protocol v4: TRACE reply — a `pit-serve-trace/1` JSON document (the
    /// wire form behind [`crate::TraceEvent`]).
    TraceJson {
        /// Rendered trace document.
        json: String,
    },
    /// A request failed; the connection stays usable unless the transport
    /// itself broke.
    Error {
        /// Machine-readable cause.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Why a frame body failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Empty body (no opcode byte).
    Empty,
    /// Opcode outside the protocol.
    UnknownOpcode(u8),
    /// Body shorter/longer than its opcode's payload demands, or field
    /// values that contradict the body length.
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Empty => write!(f, "empty frame body"),
            FrameError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            FrameError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn frame(body: Vec<u8>) -> Vec<u8> {
    debug_assert!(body.len() <= MAX_FRAME_BODY);
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

fn put_f32s(body: &mut Vec<u8>, values: &[f32]) {
    body.reserve(values.len() * 4);
    for v in values {
        body.extend_from_slice(&v.to_le_bytes());
    }
}

/// Encodes a client frame, length prefix included.
///
/// # Panics
///
/// Panics if an [`ClientFrame::Open`] carries an empty or
/// longer-than-[`MAX_MODEL_NAME`] model name; the [`crate::Client`] API
/// rejects such names with a [`crate::ServeError::Protocol`] before they
/// can reach the encoder.
pub fn encode_client(f: &ClientFrame) -> Vec<u8> {
    let mut body = Vec::new();
    match f {
        ClientFrame::Open { stream_id, model } => {
            body.push(0x01);
            body.extend_from_slice(&stream_id.to_le_bytes());
            if let Some(name) = model {
                // `Client::send` refuses these with a proper error before
                // encoding; the raw encoder still hard-guards so a release
                // build can never length-truncate into a malformed frame.
                assert!(
                    !name.is_empty() && name.len() <= MAX_MODEL_NAME,
                    "OPEN model name must be 1..={MAX_MODEL_NAME} bytes, got {}",
                    name.len()
                );
                body.extend_from_slice(&(name.len() as u16).to_le_bytes());
                body.extend_from_slice(name.as_bytes());
            }
        }
        ClientFrame::Push {
            stream_id,
            channels,
            samples,
        } => {
            body.push(0x02);
            body.extend_from_slice(&stream_id.to_le_bytes());
            let count = if *channels == 0 {
                0
            } else {
                (samples.len() / *channels as usize) as u32
            };
            body.extend_from_slice(&count.to_le_bytes());
            body.extend_from_slice(&channels.to_le_bytes());
            put_f32s(&mut body, samples);
        }
        ClientFrame::Close { stream_id } => {
            body.push(0x03);
            body.extend_from_slice(&stream_id.to_le_bytes());
        }
        ClientFrame::Ping { token } => {
            body.push(0x04);
            body.extend_from_slice(&token.to_le_bytes());
        }
        ClientFrame::Stats => body.push(0x05),
        ClientFrame::LoadModel { path } => {
            body.push(0x06);
            body.extend_from_slice(path.as_bytes());
        }
        ClientFrame::PushN {
            channels,
            entries,
            samples,
        } => {
            body.push(0x07);
            body.extend_from_slice(&channels.to_le_bytes());
            put_entries(&mut body, entries);
            put_f32s(&mut body, samples);
        }
        ClientFrame::ListModels => body.push(0x08),
        ClientFrame::Trace { stream_id } => {
            body.push(0x09);
            body.extend_from_slice(&stream_id.to_le_bytes());
        }
    }
    frame(body)
}

fn put_entries(body: &mut Vec<u8>, entries: &[(u32, u32)]) {
    body.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (stream_id, count) in entries {
        body.extend_from_slice(&stream_id.to_le_bytes());
        body.extend_from_slice(&count.to_le_bytes());
    }
}

/// Encodes a server frame, length prefix included.
pub fn encode_server(f: &ServerFrame) -> Vec<u8> {
    let mut body = Vec::new();
    match f {
        ServerFrame::Opened { stream_id } => {
            body.push(0x81);
            body.extend_from_slice(&stream_id.to_le_bytes());
        }
        ServerFrame::Emit {
            stream_id,
            count,
            dim,
            outputs,
        } => {
            body.push(0x82);
            body.extend_from_slice(&stream_id.to_le_bytes());
            body.extend_from_slice(&count.to_le_bytes());
            body.extend_from_slice(&dim.to_le_bytes());
            put_f32s(&mut body, outputs);
        }
        ServerFrame::Closed { stream_id, reason } => {
            body.push(0x83);
            body.extend_from_slice(&stream_id.to_le_bytes());
            body.push(*reason as u8);
        }
        ServerFrame::Pong { token } => {
            body.push(0x84);
            body.extend_from_slice(&token.to_le_bytes());
        }
        ServerFrame::StatsJson { json } => {
            body.push(0x85);
            body.extend_from_slice(json.as_bytes());
        }
        ServerFrame::ModelLoaded { name } => {
            body.push(0x86);
            body.extend_from_slice(name.as_bytes());
        }
        ServerFrame::EmitN {
            dim,
            entries,
            outputs,
        } => {
            body.push(0x87);
            body.extend_from_slice(&dim.to_le_bytes());
            put_entries(&mut body, entries);
            put_f32s(&mut body, outputs);
        }
        ServerFrame::ModelsJson { json } => {
            body.push(0x88);
            body.extend_from_slice(json.as_bytes());
        }
        ServerFrame::TraceJson { json } => {
            body.push(0x89);
            body.extend_from_slice(json.as_bytes());
        }
        ServerFrame::Error { code, message } => {
            body.push(0xFF);
            body.push(*code as u8);
            body.extend_from_slice(message.as_bytes());
        }
    }
    frame(body)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], FrameError> {
        if self.body.len() - self.pos < n {
            return Err(FrameError::Malformed(format!(
                "truncated before {what} ({} of {n} bytes left)",
                self.body.len() - self.pos
            )));
        }
        let slice = &self.body[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, FrameError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, FrameError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &str) -> Result<u32, FrameError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, FrameError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("eight bytes")))
    }

    fn f32s(&mut self, n: usize, what: &str) -> Result<Vec<f32>, FrameError> {
        let bytes = self.take(n * 4, what)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn rest_utf8(&mut self, what: &str) -> Result<String, FrameError> {
        let bytes = &self.body[self.pos..];
        self.pos = self.body.len();
        String::from_utf8(bytes.to_vec())
            .map_err(|_| FrameError::Malformed(format!("{what} is not valid UTF-8")))
    }

    fn remaining(&self) -> usize {
        self.body.len() - self.pos
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.pos != self.body.len() {
            return Err(FrameError::Malformed(format!(
                "{} trailing bytes",
                self.body.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Checked `count × channels` for a PUSH/EMIT payload: both fields are
/// attacker-controlled u32s whose product must match the remaining bytes.
fn checked_grid(count: u32, dim: u32, what: &str) -> Result<usize, FrameError> {
    let total = u128::from(count) * u128::from(dim);
    if total * 4 > MAX_FRAME_BODY as u128 {
        return Err(FrameError::Malformed(format!(
            "{what} claims {total} values, beyond the frame bound"
        )));
    }
    Ok(total as usize)
}

/// Decodes a v2 `(stream, count)` entry list. The entry count is
/// attacker-controlled: it is bounded against the remaining bytes *before*
/// any allocation, each entry must carry at least one timestep, and the
/// checked sum `Σ countᵢ × width` is returned for the payload read.
fn take_entries(
    c: &mut Cursor,
    width: u32,
    what: &str,
) -> Result<(Vec<(u32, u32)>, usize), FrameError> {
    let n = c.u32("entry count")?;
    if n == 0 {
        return Err(FrameError::Malformed(format!("{what} with zero entries")));
    }
    if u64::from(n) * 8 > c.remaining() as u64 {
        return Err(FrameError::Malformed(format!(
            "{what} claims {n} entries, beyond the body length"
        )));
    }
    let mut entries = Vec::with_capacity(n as usize);
    let mut total: u128 = 0;
    for _ in 0..n {
        let stream_id = c.u32("entry stream id")?;
        let count = c.u32("entry count field")?;
        if count == 0 {
            return Err(FrameError::Malformed(format!(
                "{what} entry for stream {stream_id} has zero timesteps"
            )));
        }
        total += u128::from(count) * u128::from(width);
        entries.push((stream_id, count));
    }
    if total * 4 > MAX_FRAME_BODY as u128 {
        return Err(FrameError::Malformed(format!(
            "{what} claims {total} values, beyond the frame bound"
        )));
    }
    Ok((entries, total as usize))
}

/// Decodes one client frame body (without the length prefix).
///
/// # Errors
///
/// Returns a [`FrameError`] on unknown opcodes or payloads that do not
/// match their opcode's layout; the connection remains usable.
pub fn decode_client(body: &[u8]) -> Result<ClientFrame, FrameError> {
    let mut c = Cursor { body, pos: 0 };
    let op = c.u8("opcode").map_err(|_| FrameError::Empty)?;
    let frame = match op {
        0x01 => {
            let stream_id = c.u32("stream id")?;
            // v3: an optional trailing length-prefixed model name; a bare
            // 5-byte body is the v1 form and selects the default model.
            let model =
                if c.remaining() == 0 {
                    None
                } else {
                    let len = c.u16("model name length")? as usize;
                    if len == 0 {
                        return Err(FrameError::Malformed("OPEN with empty model name".into()));
                    }
                    let bytes = c.take(len, "model name")?;
                    Some(String::from_utf8(bytes.to_vec()).map_err(|_| {
                        FrameError::Malformed("model name is not valid UTF-8".into())
                    })?)
                };
            ClientFrame::Open { stream_id, model }
        }
        0x02 => {
            let stream_id = c.u32("stream id")?;
            let count = c.u32("count")?;
            let channels = c.u32("channels")?;
            if channels == 0 {
                return Err(FrameError::Malformed("PUSH with zero channels".into()));
            }
            if count == 0 {
                return Err(FrameError::Malformed("PUSH with zero timesteps".into()));
            }
            let total = checked_grid(count, channels, "PUSH")?;
            ClientFrame::Push {
                stream_id,
                channels,
                samples: c.f32s(total, "samples")?,
            }
        }
        0x03 => ClientFrame::Close {
            stream_id: c.u32("stream id")?,
        },
        0x04 => ClientFrame::Ping {
            token: c.u64("token")?,
        },
        0x05 => ClientFrame::Stats,
        0x06 => ClientFrame::LoadModel {
            path: c.rest_utf8("path")?,
        },
        0x07 => {
            let channels = c.u32("channels")?;
            if channels == 0 {
                return Err(FrameError::Malformed("PUSH_N with zero channels".into()));
            }
            let (entries, total) = take_entries(&mut c, channels, "PUSH_N")?;
            ClientFrame::PushN {
                channels,
                entries,
                samples: c.f32s(total, "samples")?,
            }
        }
        0x08 => ClientFrame::ListModels,
        0x09 => ClientFrame::Trace {
            stream_id: c.u32("stream id")?,
        },
        other => return Err(FrameError::UnknownOpcode(other)),
    };
    c.finish()?;
    Ok(frame)
}

/// Decodes one server frame body (without the length prefix).
///
/// # Errors
///
/// As [`decode_client`].
pub fn decode_server(body: &[u8]) -> Result<ServerFrame, FrameError> {
    let mut c = Cursor { body, pos: 0 };
    let op = c.u8("opcode").map_err(|_| FrameError::Empty)?;
    let frame = match op {
        0x81 => ServerFrame::Opened {
            stream_id: c.u32("stream id")?,
        },
        0x82 => {
            let stream_id = c.u32("stream id")?;
            let count = c.u32("count")?;
            let dim = c.u32("dim")?;
            let total = checked_grid(count, dim, "EMIT")?;
            ServerFrame::Emit {
                stream_id,
                count,
                dim,
                outputs: c.f32s(total, "outputs")?,
            }
        }
        0x83 => {
            let stream_id = c.u32("stream id")?;
            let reason = c.u8("reason")?;
            ServerFrame::Closed {
                stream_id,
                reason: CloseReason::from_u8(reason)
                    .ok_or_else(|| FrameError::Malformed(format!("bad close reason {reason}")))?,
            }
        }
        0x84 => ServerFrame::Pong {
            token: c.u64("token")?,
        },
        0x85 => ServerFrame::StatsJson {
            json: c.rest_utf8("stats json")?,
        },
        0x86 => ServerFrame::ModelLoaded {
            name: c.rest_utf8("name")?,
        },
        0x87 => {
            let dim = c.u32("dim")?;
            if dim == 0 {
                return Err(FrameError::Malformed("EMIT_N with zero dim".into()));
            }
            let (entries, total) = take_entries(&mut c, dim, "EMIT_N")?;
            ServerFrame::EmitN {
                dim,
                entries,
                outputs: c.f32s(total, "outputs")?,
            }
        }
        0x88 => ServerFrame::ModelsJson {
            json: c.rest_utf8("models json")?,
        },
        0x89 => ServerFrame::TraceJson {
            json: c.rest_utf8("trace json")?,
        },
        0xFF => {
            let code = c.u8("error code")?;
            ServerFrame::Error {
                code: ErrorCode::from_u8(code)
                    .ok_or_else(|| FrameError::Malformed(format!("bad error code {code}")))?,
                message: c.rest_utf8("message")?,
            }
        }
        other => return Err(FrameError::UnknownOpcode(other)),
    };
    c.finish()?;
    Ok(frame)
}

// ---------------------------------------------------------------------------
// Frame reading
// ---------------------------------------------------------------------------

/// One `poll` result of a [`FrameReader`].
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete frame body.
    Frame(Vec<u8>),
    /// The read timed out (or would block) mid-frame; call again.
    WouldBlock,
    /// The peer closed the connection.
    Eof,
}

/// Errors a [`FrameReader`] can hit. Both are fatal to the connection —
/// framing can no longer be trusted.
#[derive(Debug)]
pub enum ReadError {
    /// The length prefix exceeds [`MAX_FRAME_BODY`].
    Oversized(usize),
    /// The transport failed.
    Io(std::io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Oversized(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_BODY} bound")
            }
            ReadError::Io(e) => write!(f, "read failed: {e}"),
        }
    }
}

/// Incremental frame reassembly decoupled from any transport: feed raw
/// bytes in with [`FrameAssembler::extend`], take complete frame bodies out
/// with [`FrameAssembler::next_frame`]. The event-driven edge feeds it from
/// nonblocking socket reads; [`FrameReader`] wraps it over a blocking
/// [`Read`] for clients. Partial frames simply stay buffered, so a short
/// read mid-frame never desynchronises the stream.
#[derive(Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
}

impl FrameAssembler {
    /// An assembler with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes off the wire.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (complete or partial frames).
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete frame body, if one is fully buffered.
    ///
    /// # Errors
    ///
    /// Returns [`ReadError::Oversized`] when the next length prefix exceeds
    /// [`MAX_FRAME_BODY`] — fatal, the byte stream can no longer be framed.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ReadError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME_BODY {
            return Err(ReadError::Oversized(len));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let body = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(body))
    }
}

/// Incremental, timeout-tolerant frame reader: a [`FrameAssembler`] over a
/// blocking byte stream, resuming exactly where a timed-out read stopped.
pub struct FrameReader<R> {
    inner: R,
    assembler: FrameAssembler,
    chunk: [u8; 4096],
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream (typically a `TcpStream` with a read timeout).
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            assembler: FrameAssembler::new(),
            chunk: [0; 4096],
        }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Reads until one complete frame body is available, the read would
    /// block / times out, or the peer hangs up.
    ///
    /// # Errors
    ///
    /// Returns [`ReadError`] on transport failures or an oversized length
    /// prefix — both fatal to the connection.
    pub fn poll(&mut self) -> Result<ReadOutcome, ReadError> {
        loop {
            if let Some(body) = self.assembler.next_frame()? {
                return Ok(ReadOutcome::Frame(body));
            }
            match self.inner.read(&mut self.chunk) {
                Ok(0) => return Ok(ReadOutcome::Eof),
                Ok(n) => self.assembler.extend(&self.chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(ReadOutcome::WouldBlock)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ReadError::Io(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client_roundtrip(f: ClientFrame) {
        let encoded = encode_client(&f);
        let body = &encoded[4..];
        assert_eq!(
            u32::from_le_bytes(encoded[..4].try_into().unwrap()) as usize,
            body.len()
        );
        assert_eq!(decode_client(body).unwrap(), f);
    }

    fn server_roundtrip(f: ServerFrame) {
        let encoded = encode_server(&f);
        assert_eq!(decode_server(&encoded[4..]).unwrap(), f);
    }

    #[test]
    fn frames_roundtrip() {
        client_roundtrip(ClientFrame::Open {
            stream_id: 7,
            model: None,
        });
        client_roundtrip(ClientFrame::Push {
            stream_id: 7,
            channels: 2,
            samples: vec![1.0, -2.5, 0.0, 3.25],
        });
        client_roundtrip(ClientFrame::Close { stream_id: 7 });
        client_roundtrip(ClientFrame::Ping { token: u64::MAX });
        client_roundtrip(ClientFrame::Stats);
        client_roundtrip(ClientFrame::LoadModel {
            path: "models/ppg.json".into(),
        });
        server_roundtrip(ServerFrame::Opened { stream_id: 3 });
        server_roundtrip(ServerFrame::Emit {
            stream_id: 3,
            count: 2,
            dim: 2,
            outputs: vec![0.5, -0.5, 1.0, 2.0],
        });
        server_roundtrip(ServerFrame::Closed {
            stream_id: 3,
            reason: CloseReason::IdleEvicted,
        });
        server_roundtrip(ServerFrame::Pong { token: 9 });
        server_roundtrip(ServerFrame::StatsJson {
            json: "{\"waves\": 1}".into(),
        });
        server_roundtrip(ServerFrame::ModelLoaded {
            name: "TEMPONet-plan".into(),
        });
        server_roundtrip(ServerFrame::Error {
            code: ErrorCode::Backpressure,
            message: "slow down".into(),
        });
        // v2 batched frames.
        client_roundtrip(ClientFrame::PushN {
            channels: 2,
            entries: vec![(7, 2), (9, 1)],
            samples: vec![1.0, -2.5, 0.0, 3.25, 0.5, 0.5],
        });
        server_roundtrip(ServerFrame::EmitN {
            dim: 2,
            entries: vec![(7, 1), (9, 2)],
            outputs: vec![0.5, -0.5, 1.0, 2.0, -1.0, 0.0],
        });
        // v3 zoo frames.
        client_roundtrip(ClientFrame::Open {
            stream_id: 11,
            model: Some("TEMPONet-plan-int8".into()),
        });
        client_roundtrip(ClientFrame::ListModels);
        server_roundtrip(ServerFrame::ModelsJson {
            json: "[{\"name\": \"a\"}]".into(),
        });
        // v4 trace frames.
        client_roundtrip(ClientFrame::Trace {
            stream_id: 0xDEAD_BEEF,
        });
        server_roundtrip(ServerFrame::TraceJson {
            json: "{\"schema\": \"pit-serve-trace/1\", \"events\": []}".into(),
        });
    }

    #[test]
    fn trace_frames_reject_malformed_bodies() {
        // Truncated stream id.
        assert!(matches!(
            decode_client(&[0x09, 1, 2]).unwrap_err(),
            FrameError::Malformed(_)
        ));
        // Trailing bytes after the stream id.
        assert!(matches!(
            decode_client(&[0x09, 1, 0, 0, 0, 9]).unwrap_err(),
            FrameError::Malformed(_)
        ));
        // TRACE_JSON must be UTF-8.
        assert!(matches!(
            decode_server(&[0x89, 0xFF, 0xFE]).unwrap_err(),
            FrameError::Malformed(_)
        ));
    }

    #[test]
    fn v1_open_body_is_bitwise_unchanged_and_model_field_is_checked() {
        // The v1 5-byte OPEN body must be exactly what pre-v3 clients sent.
        let encoded = encode_client(&ClientFrame::Open {
            stream_id: 0x0403_0201,
            model: None,
        });
        assert_eq!(&encoded[4..], &[0x01, 0x01, 0x02, 0x03, 0x04]);
        // Empty model name.
        assert!(matches!(
            decode_client(&[0x01, 1, 0, 0, 0, 0, 0]).unwrap_err(),
            FrameError::Malformed(_)
        ));
        // Name length claiming past the body.
        assert!(matches!(
            decode_client(&[0x01, 1, 0, 0, 0, 9, 0, b'a']).unwrap_err(),
            FrameError::Malformed(_)
        ));
        // Name shorter than the body (trailing bytes).
        assert!(matches!(
            decode_client(&[0x01, 1, 0, 0, 0, 1, 0, b'a', b'b']).unwrap_err(),
            FrameError::Malformed(_)
        ));
        // A lone length byte (truncated u16).
        assert!(matches!(
            decode_client(&[0x01, 1, 0, 0, 0, 2]).unwrap_err(),
            FrameError::Malformed(_)
        ));
        // Invalid UTF-8 in the name.
        assert!(matches!(
            decode_client(&[0x01, 1, 0, 0, 0, 2, 0, 0xFF, 0xFE]).unwrap_err(),
            FrameError::Malformed(_)
        ));
    }

    #[test]
    fn decode_rejects_malformed_push_n_counts() {
        let frame =
            |entries: &[(u32, u32)], channels: u32, n_override: Option<u32>, values: usize| {
                let mut body = vec![0x07];
                body.extend_from_slice(&channels.to_le_bytes());
                body.extend_from_slice(&n_override.unwrap_or(entries.len() as u32).to_le_bytes());
                for (sid, count) in entries {
                    body.extend_from_slice(&sid.to_le_bytes());
                    body.extend_from_slice(&count.to_le_bytes());
                }
                for _ in 0..values {
                    body.extend_from_slice(&0.0f32.to_le_bytes());
                }
                body
            };
        // Zero channels.
        assert!(matches!(
            decode_client(&frame(&[(1, 1)], 0, None, 1)).unwrap_err(),
            FrameError::Malformed(_)
        ));
        // Zero entries.
        assert!(matches!(
            decode_client(&frame(&[], 1, None, 0)).unwrap_err(),
            FrameError::Malformed(_)
        ));
        // Entry count far beyond the body: must be rejected before any
        // allocation, not by running off the end entry-by-entry.
        assert!(matches!(
            decode_client(&frame(&[(1, 1)], 1, Some(u32::MAX), 1)).unwrap_err(),
            FrameError::Malformed(_)
        ));
        // An entry with zero timesteps.
        assert!(matches!(
            decode_client(&frame(&[(1, 2), (2, 0)], 1, None, 2)).unwrap_err(),
            FrameError::Malformed(_)
        ));
        // Per-entry counts that sum past the frame bound.
        assert!(matches!(
            decode_client(&frame(&[(1, u32::MAX), (2, u32::MAX)], 64, None, 0)).unwrap_err(),
            FrameError::Malformed(_)
        ));
        // Payload shorter than Σ countᵢ × channels.
        assert!(matches!(
            decode_client(&frame(&[(1, 2), (2, 2)], 2, None, 3)).unwrap_err(),
            FrameError::Malformed(_)
        ));
        // Payload longer than claimed (trailing bytes).
        assert!(matches!(
            decode_client(&frame(&[(1, 1)], 1, None, 2)).unwrap_err(),
            FrameError::Malformed(_)
        ));
        // The well-formed version of the same frame decodes.
        assert!(decode_client(&frame(&[(1, 2), (2, 2)], 2, None, 8)).is_ok());
    }

    #[test]
    fn frame_assembler_pops_frames_from_raw_bytes() {
        let mut asm = FrameAssembler::new();
        let a = encode_client(&ClientFrame::Ping { token: 5 });
        let b = encode_client(&ClientFrame::Open {
            stream_id: 2,
            model: None,
        });
        // Feed a split mid-prefix: nothing pops until the body completes.
        asm.extend(&a[..2]);
        assert!(asm.next_frame().unwrap().is_none());
        asm.extend(&a[2..]);
        asm.extend(&b);
        let body = asm.next_frame().unwrap().expect("first frame complete");
        assert_eq!(
            decode_client(&body).unwrap(),
            ClientFrame::Ping { token: 5 }
        );
        let body = asm.next_frame().unwrap().expect("second frame complete");
        assert_eq!(
            decode_client(&body).unwrap(),
            ClientFrame::Open {
                stream_id: 2,
                model: None,
            }
        );
        assert!(asm.next_frame().unwrap().is_none());
        assert_eq!(asm.buffered_bytes(), 0);
    }

    #[test]
    fn decode_rejects_malformed_bodies() {
        assert_eq!(decode_client(&[]).unwrap_err(), FrameError::Empty);
        assert!(matches!(
            decode_client(&[0x42]).unwrap_err(),
            FrameError::UnknownOpcode(0x42)
        ));
        // OPEN truncated mid-field.
        assert!(matches!(
            decode_client(&[0x01, 1, 2]).unwrap_err(),
            FrameError::Malformed(_)
        ));
        // OPEN with trailing garbage.
        assert!(matches!(
            decode_client(&[0x01, 1, 0, 0, 0, 9]).unwrap_err(),
            FrameError::Malformed(_)
        ));
        // PUSH whose count does not match the payload.
        let mut push = vec![0x02];
        push.extend_from_slice(&1u32.to_le_bytes()); // stream
        push.extend_from_slice(&3u32.to_le_bytes()); // count 3
        push.extend_from_slice(&2u32.to_le_bytes()); // channels 2
        push.extend_from_slice(&1.0f32.to_le_bytes()); // only 1 value
        assert!(matches!(
            decode_client(&push).unwrap_err(),
            FrameError::Malformed(_)
        ));
        // PUSH claiming more values than any frame can hold.
        let mut huge = vec![0x02];
        huge.extend_from_slice(&1u32.to_le_bytes());
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_client(&huge).unwrap_err(),
            FrameError::Malformed(_)
        ));
        // Zero channels / zero count.
        let mut zc = vec![0x02];
        zc.extend_from_slice(&1u32.to_le_bytes());
        zc.extend_from_slice(&1u32.to_le_bytes());
        zc.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_client(&zc).unwrap_err(),
            FrameError::Malformed(_)
        ));
        // LOAD_MODEL with invalid UTF-8.
        assert!(matches!(
            decode_client(&[0x06, 0xFF, 0xFE]).unwrap_err(),
            FrameError::Malformed(_)
        ));
    }

    #[test]
    fn frame_reader_reassembles_split_and_batched_frames() {
        // Two frames delivered in awkward chunks: byte-by-byte, then both
        // tails at once.
        let a = encode_client(&ClientFrame::Ping { token: 1 });
        let b = encode_client(&ClientFrame::Stats);
        let mut wire = Vec::new();
        wire.extend_from_slice(&a);
        wire.extend_from_slice(&b);
        struct Dribble {
            data: Vec<u8>,
            pos: usize,
        }
        impl Read for Dribble {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.pos >= self.data.len() {
                    return Ok(0);
                }
                // First half dribbles one byte at a time, then the rest.
                let n = if self.pos < self.data.len() / 2 {
                    1
                } else {
                    self.data.len() - self.pos
                };
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }
        let mut reader = FrameReader::new(Dribble { data: wire, pos: 0 });
        let ReadOutcome::Frame(body) = reader.poll().unwrap() else {
            panic!("first frame")
        };
        assert_eq!(
            decode_client(&body).unwrap(),
            ClientFrame::Ping { token: 1 }
        );
        let ReadOutcome::Frame(body) = reader.poll().unwrap() else {
            panic!("second frame")
        };
        assert_eq!(decode_client(&body).unwrap(), ClientFrame::Stats);
        assert!(matches!(reader.poll().unwrap(), ReadOutcome::Eof));
    }

    #[test]
    fn frame_reader_rejects_oversized_length_prefixes() {
        let wire = (u32::MAX).to_le_bytes().to_vec();
        let mut reader = FrameReader::new(std::io::Cursor::new(wire));
        assert!(matches!(
            reader.poll().unwrap_err(),
            ReadError::Oversized(_)
        ));
    }
}
