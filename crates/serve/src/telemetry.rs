//! The daemon's telemetry hub: lock-free latency histograms, the always-on
//! per-stream event trace ring, and the Prometheus text renderer behind
//! `GET /metrics`.
//!
//! Everything here is designed for the serving hot path: recording a wave
//! latency or a trace event is a handful of relaxed atomic stores — no
//! locks, no allocation — so telemetry can stay on unconditionally. The
//! [`Telemetry`] struct is the one shared hub: the edge thread, every
//! shard thread and the HTTP sidecar all hold the same `Arc<Telemetry>`,
//! and a scrape aggregates the same counter blocks the binary-protocol
//! STATS frame reads, so the two views can never disagree about totals.
//!
//! ## Histogram layout
//!
//! Latency is recorded into the shared `pit_tensor::hist` log-scale
//! [`Histogram`] (252 HDR-style buckets, four sub-buckets per power of
//! two, exact integer boundaries, percentiles with at most ~25% relative
//! overestimate). The type lives in `pit-tensor` so the bench harness and
//! the `pit-replay` load driver share the daemon's exact bucket layout;
//! it is re-exported at the crate root as `pit_serve::hist`. Histograms
//! never roll over: p50/p99/p99.9 describe the whole run, not the recent
//! past.
//!
//! ## Trace ring
//!
//! [`TraceRing`] is one global fixed-size ring of per-stream lifecycle
//! events (`open`/`push`/`emit`/`close`/`evict`/`error`). Writers claim a
//! slot with one `fetch_add` and publish it with a per-slot sequence
//! (seqlock-style: odd while writing, `2·index + 2` when stable), so
//! readers detect and skip slots torn by a concurrent wrap. The ring is
//! served as JSON over `GET /trace` and the TRACE debug frame.

use crate::stats::{EdgeCounters, ModelStats, ShardStats, StatsSnapshot};
use pit_tensor::hist::{Histogram, HistogramSnapshot};
use pit_tensor::json::Json;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Trace ring
// ---------------------------------------------------------------------------

/// Slots in the global trace ring (power of two; ~4k events of history).
pub(crate) const TRACE_RING_SLOTS: usize = 4096;

/// Sentinel packed into a trace slot when the event has no stream.
const NO_STREAM: u32 = u32::MAX;
/// Sentinel for events recorded at the edge, outside any shard.
const NO_SHARD: u64 = 0xFF;
/// Sentinel for events not tied to a registry model.
const NO_MODEL: u64 = 0xFFFF;

/// What happened to a stream (or connection) at one instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TraceKind {
    /// Stream opened (shard allocated the pool slot).
    Open = 0,
    /// Timesteps accepted into the pool (count = timesteps).
    Push = 1,
    /// Head outputs routed back (count = emissions).
    Emit = 2,
    /// Stream closed (count = close reason code).
    Close = 3,
    /// Stream evicted for idleness.
    Evict = 4,
    /// An ERROR frame was sent (count = error code).
    Error = 5,
}

impl TraceKind {
    fn as_str(self) -> &'static str {
        match self {
            TraceKind::Open => "open",
            TraceKind::Push => "push",
            TraceKind::Emit => "emit",
            TraceKind::Close => "close",
            TraceKind::Evict => "evict",
            TraceKind::Error => "error",
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => TraceKind::Open,
            1 => TraceKind::Push,
            2 => TraceKind::Emit,
            3 => TraceKind::Close,
            4 => TraceKind::Evict,
            5 => TraceKind::Error,
            _ => return None,
        })
    }
}

/// One published ring slot. `seq` is the per-slot seqlock: `0` = never
/// written, odd = a writer is mid-store, `2·event_index + 2` = the other
/// fields belong to event `event_index` and are safe to read.
struct TraceSlot {
    seq: AtomicU64,
    /// `kind << 56 | shard << 48 | model << 32 | stream`.
    meta: AtomicU64,
    conn: AtomicU64,
    t_us: AtomicU64,
    count: AtomicU64,
}

/// The always-on global event ring. Fixed size, all atomics, no allocation
/// on the write path; concurrent writers each own a distinct slot (claimed
/// by `fetch_add` on `next`) so they never contend beyond the one counter.
/// A reader that laps a writer sees a torn slot's stale sequence and skips
/// it — the trace is best-effort by design.
pub(crate) struct TraceRing {
    next: AtomicU64,
    slots: Box<[TraceSlot]>,
}

impl Default for TraceRing {
    fn default() -> Self {
        Self {
            next: AtomicU64::new(0),
            slots: (0..TRACE_RING_SLOTS)
                .map(|_| TraceSlot {
                    seq: AtomicU64::new(0),
                    meta: AtomicU64::new(0),
                    conn: AtomicU64::new(0),
                    t_us: AtomicU64::new(0),
                    count: AtomicU64::new(0),
                })
                .collect(),
        }
    }
}

/// One decoded ring event, before model-index → name resolution.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RawTraceEvent {
    pub(crate) seq: u64,
    pub(crate) t_us: u64,
    pub(crate) kind: TraceKind,
    pub(crate) conn: u64,
    pub(crate) stream: Option<u32>,
    pub(crate) shard: Option<u32>,
    pub(crate) model: Option<usize>,
    pub(crate) count: u64,
}

impl TraceRing {
    /// Records one event. `shard`/`model`/`stream` are optional because
    /// edge-side errors are not tied to a shard, model or stream.
    pub(crate) fn record(
        &self,
        kind: TraceKind,
        conn: u64,
        stream: Option<u32>,
        shard: Option<usize>,
        model: Option<usize>,
        count: u64,
        t_us: u64,
    ) {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(n as usize) & (TRACE_RING_SLOTS - 1)];
        slot.seq.store(2 * n + 1, Ordering::Release);
        let shard = shard.map_or(NO_SHARD, |s| (s as u64).min(NO_SHARD - 1));
        let model = model.map_or(NO_MODEL, |m| (m as u64).min(NO_MODEL - 1));
        let stream = stream.unwrap_or(NO_STREAM);
        let meta = ((kind as u64) << 56) | (shard << 48) | (model << 32) | u64::from(stream);
        slot.meta.store(meta, Ordering::Relaxed);
        slot.conn.store(conn, Ordering::Relaxed);
        slot.t_us.store(t_us, Ordering::Relaxed);
        slot.count.store(count, Ordering::Relaxed);
        slot.seq.store(2 * n + 2, Ordering::Release);
    }

    /// Events recorded so far (monotone; also the next event's index).
    pub(crate) fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Collects the ring's stable events in order, optionally filtered by
    /// connection and/or stream id. Slots being overwritten concurrently
    /// are skipped (their sequence no longer matches their index).
    pub(crate) fn collect(&self, conn: Option<u64>, stream: Option<u32>) -> Vec<RawTraceEvent> {
        let end = self.next.load(Ordering::Acquire);
        let start = end.saturating_sub(TRACE_RING_SLOTS as u64);
        let mut out = Vec::new();
        for n in start..end {
            let slot = &self.slots[(n as usize) & (TRACE_RING_SLOTS - 1)];
            if slot.seq.load(Ordering::Acquire) != 2 * n + 2 {
                continue;
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            let c = slot.conn.load(Ordering::Relaxed);
            let t_us = slot.t_us.load(Ordering::Relaxed);
            let count = slot.count.load(Ordering::Relaxed);
            // Re-check: if a writer wrapped past us mid-read, the loads
            // above may be torn — the sequence will have moved on.
            if slot.seq.load(Ordering::Acquire) != 2 * n + 2 {
                continue;
            }
            let Some(kind) = TraceKind::from_u8((meta >> 56) as u8) else {
                continue;
            };
            let ev_stream = (meta & 0xFFFF_FFFF) as u32;
            let ev_stream = (ev_stream != NO_STREAM).then_some(ev_stream);
            let ev_shard = (meta >> 48) & 0xFF;
            let ev_model = (meta >> 32) & 0xFFFF;
            if let Some(want) = conn {
                if c != want {
                    continue;
                }
            }
            if let Some(want) = stream {
                if ev_stream != Some(want) {
                    continue;
                }
            }
            out.push(RawTraceEvent {
                seq: n,
                t_us,
                kind,
                conn: c,
                stream: ev_stream,
                shard: (ev_shard != NO_SHARD).then_some(ev_shard as u32),
                model: (ev_model != NO_MODEL).then_some(ev_model as usize),
                count,
            });
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Public trace event (client-side view)
// ---------------------------------------------------------------------------

/// One per-stream lifecycle event from the daemon's trace ring, as parsed
/// from a `pit-serve-trace/1` JSON document (the TRACE frame's payload and
/// the `GET /trace` body).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Monotone event index since boot (gaps mean overwritten slots).
    pub seq: u64,
    /// Microseconds since daemon boot.
    pub t_us: u64,
    /// `"open"`, `"push"`, `"emit"`, `"close"`, `"evict"` or `"error"`.
    pub event: String,
    /// Connection the event belongs to.
    pub conn: u64,
    /// Client stream id, when the event is tied to a stream.
    pub stream: Option<u32>,
    /// Shard that recorded the event (`None` for edge-side events).
    pub shard: Option<u32>,
    /// Registry model name (empty when the event has no model).
    pub model: String,
    /// Event payload: timesteps for `push`, emissions for `emit`, the
    /// close-reason code for `close`/`evict`, the error code for `error`.
    pub count: u64,
}

impl TraceEvent {
    /// Parses the event list out of a `pit-serve-trace/1` document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or ill-typed field.
    pub fn parse_list(text: &str) -> Result<Vec<TraceEvent>, String> {
        let doc = Json::parse(text)?;
        match doc.get("schema").and_then(Json::as_str) {
            Some("pit-serve-trace/1") => {}
            other => return Err(format!("unexpected trace schema {other:?}")),
        }
        let events = doc
            .get("events")
            .and_then(Json::as_array)
            .ok_or("trace document has no events array")?;
        events
            .iter()
            .map(|ev| {
                let int = |name: &str| -> Result<u64, String> {
                    ev.get(name)
                        .and_then(Json::as_f64)
                        .map(|v| v as u64)
                        .ok_or_else(|| format!("trace event: missing number field '{name}'"))
                };
                Ok(TraceEvent {
                    seq: int("seq")?,
                    t_us: int("t_us")?,
                    event: ev
                        .get("event")
                        .and_then(Json::as_str)
                        .ok_or("trace event: missing 'event'")?
                        .to_string(),
                    conn: int("conn")?,
                    stream: ev.get("stream").and_then(Json::as_f64).map(|v| v as u32),
                    shard: ev.get("shard").and_then(Json::as_f64).map(|v| v as u32),
                    model: ev
                        .get("model")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    count: int("count")?,
                })
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// The hub
// ---------------------------------------------------------------------------

/// Daemon lifecycle state, reflected by `GET /healthz`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ServeState {
    /// Bound but the edge loop has not started serving yet.
    Booting = 0,
    /// Accepting connections and serving streams.
    Serving = 1,
    /// Graceful drain in progress: no new streams, queued work flushing.
    Draining = 2,
}

impl ServeState {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            ServeState::Booting => "booting",
            ServeState::Serving => "serving",
            ServeState::Draining => "draining",
        }
    }
}

/// One registry model's telemetry identity: the name and kind labels plus
/// the shared counter block.
pub(crate) struct ModelMeta {
    pub(crate) name: String,
    pub(crate) kind: &'static str,
    pub(crate) stats: Arc<ModelStats>,
}

/// The shared telemetry hub: one `Arc<Telemetry>` is held by the edge
/// thread, every shard and the HTTP sidecar. Everything the sidecar serves
/// (`/metrics`, `/stats`, `/healthz`, `/trace`) reads through here, from
/// the *same* atomics the binary-protocol STATS frame aggregates.
pub(crate) struct Telemetry {
    boot: Instant,
    state: AtomicU8,
    /// Connection lifecycle counters (edge is the only writer).
    pub(crate) edge: EdgeCounters,
    /// The global per-stream event ring.
    pub(crate) trace: TraceRing,
    /// Edge loop: time spent blocked in `poll(2)` per iteration.
    pub(crate) edge_poll_ns: Histogram,
    /// Edge loop: time spent accepting/reading/dispatching per iteration.
    pub(crate) edge_dispatch_ns: Histogram,
    shards: Mutex<Vec<Arc<ShardStats>>>,
    models: Mutex<Vec<ModelMeta>>,
    default_model: AtomicUsize,
}

impl Telemetry {
    pub(crate) fn new() -> Self {
        Self {
            boot: Instant::now(),
            state: AtomicU8::new(ServeState::Booting as u8),
            edge: EdgeCounters::default(),
            trace: TraceRing::default(),
            edge_poll_ns: Histogram::default(),
            edge_dispatch_ns: Histogram::default(),
            shards: Mutex::new(Vec::new()),
            models: Mutex::new(Vec::new()),
            default_model: AtomicUsize::new(0),
        }
    }

    /// Microseconds since boot (trace-event timestamps).
    pub(crate) fn now_us(&self) -> u64 {
        self.boot.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }

    pub(crate) fn set_state(&self, state: ServeState) {
        self.state.store(state as u8, Ordering::Release);
    }

    pub(crate) fn state(&self) -> ServeState {
        match self.state.load(Ordering::Acquire) {
            0 => ServeState::Booting,
            1 => ServeState::Serving,
            _ => ServeState::Draining,
        }
    }

    /// Installs the boot-time registry mirror (called once at bind).
    pub(crate) fn install_models(&self, models: Vec<ModelMeta>, default_model: usize) {
        *self.models.lock().expect("telemetry models lock") = models;
        self.default_model.store(default_model, Ordering::Relaxed);
    }

    /// Mirrors a LOAD_MODEL addition.
    pub(crate) fn add_model(&self, meta: ModelMeta) {
        self.models
            .lock()
            .expect("telemetry models lock")
            .push(meta);
    }

    /// Mirrors a LOAD_MODEL in-place replacement (the kind may change).
    pub(crate) fn swap_model_kind(&self, model: usize, kind: &'static str) {
        if let Some(meta) = self
            .models
            .lock()
            .expect("telemetry models lock")
            .get_mut(model)
        {
            meta.kind = kind;
        }
    }

    /// Installs the per-shard counter blocks (called once by `run`).
    pub(crate) fn install_shards(&self, shards: Vec<Arc<ShardStats>>) {
        *self.shards.lock().expect("telemetry shards lock") = shards;
    }

    /// Resolves a trace event's model index to its registry name.
    fn model_name(&self, model: Option<usize>) -> String {
        let models = self.models.lock().expect("telemetry models lock");
        model
            .and_then(|m| models.get(m))
            .map(|m| m.name.clone())
            .unwrap_or_default()
    }

    /// Aggregates the same snapshot the STATS frame returns.
    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        let models = self.models.lock().expect("telemetry models lock");
        let shards = self.shards.lock().expect("telemetry shards lock");
        let default = self.default_model.load(Ordering::Relaxed);
        let (name, kind) = models
            .get(default)
            .map(|m| (m.name.clone(), m.kind))
            .unwrap_or_default();
        let breakdown = models
            .iter()
            .map(|m| m.stats.snapshot(&m.name, m.kind))
            .collect();
        crate::stats::aggregate_snapshot(&name, kind, &self.edge, &shards, breakdown)
    }

    /// Renders the trace ring (optionally filtered) as a
    /// `pit-serve-trace/1` JSON document.
    pub(crate) fn trace_json(&self, conn: Option<u64>, stream: Option<u32>) -> String {
        let events = self.trace.collect(conn, stream);
        let recorded = self.trace.recorded();
        let dropped = recorded.saturating_sub(TRACE_RING_SLOTS as u64);
        let n = |v: u64| Json::Num(v as f64);
        let events: Vec<Json> = events
            .iter()
            .map(|ev| {
                let mut fields = vec![
                    ("seq".into(), n(ev.seq)),
                    ("t_us".into(), n(ev.t_us)),
                    ("event".into(), Json::Str(ev.kind.as_str().into())),
                    ("conn".into(), n(ev.conn)),
                ];
                if let Some(stream) = ev.stream {
                    fields.push(("stream".into(), n(u64::from(stream))));
                }
                if let Some(shard) = ev.shard {
                    fields.push(("shard".into(), n(u64::from(shard))));
                }
                fields.push(("model".into(), Json::Str(self.model_name(ev.model))));
                fields.push(("count".into(), n(ev.count)));
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str("pit-serve-trace/1".into())),
            ("recorded".into(), n(recorded)),
            ("dropped".into(), n(dropped)),
            ("events".into(), Json::Arr(events)),
        ])
        .render()
    }

    /// Renders the Prometheus text exposition (`/metrics` body).
    pub(crate) fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(8 * 1024);
        let snap = self.snapshot();
        let shards = self.shards.lock().expect("telemetry shards lock").clone();
        let models = self.models.lock().expect("telemetry models lock");

        gauge(
            &mut out,
            "pit_serve_uptime_seconds",
            "Seconds since the daemon booted.",
            self.boot.elapsed().as_secs_f64(),
        );
        gauge(
            &mut out,
            "pit_serve_state",
            "Daemon lifecycle state: 0 booting, 1 serving, 2 draining.",
            f64::from(self.state() as u8),
        );
        gauge(
            &mut out,
            "pit_serve_shards",
            "Number of wave-batcher shards.",
            snap.shards as f64,
        );
        counter(
            &mut out,
            "pit_serve_connections_total",
            "Connections accepted since boot.",
            snap.connections_total,
        );
        gauge(
            &mut out,
            "pit_serve_connections_open",
            "Connections currently open.",
            snap.connections_open as f64,
        );
        counter(
            &mut out,
            "pit_serve_connections_closed_total",
            "Connections that ended with a clean disconnect.",
            snap.connections_closed,
        );
        counter(
            &mut out,
            "pit_serve_connections_errored_total",
            "Connections dropped on a transport or framing error.",
            snap.connections_errored,
        );
        counter(
            &mut out,
            "pit_serve_connections_expired_total",
            "Connections killed by the read-progress deadline (also counted in errored).",
            snap.connections_expired,
        );
        counter(
            &mut out,
            "pit_serve_connections_drained_total",
            "Connections still open when a graceful drain completed.",
            snap.connections_drained,
        );
        gauge(
            &mut out,
            "pit_serve_streams_open",
            "Streams currently open.",
            snap.streams_open as f64,
        );
        counter(
            &mut out,
            "pit_serve_streams_opened_total",
            "Streams opened since boot.",
            snap.streams_opened,
        );
        counter(
            &mut out,
            "pit_serve_streams_evicted_total",
            "Streams evicted for idleness.",
            snap.streams_evicted,
        );
        counter(
            &mut out,
            "pit_serve_timesteps_total",
            "Timesteps accepted into pool queues since boot.",
            snap.timesteps_in,
        );
        counter(
            &mut out,
            "pit_serve_emissions_total",
            "Head outputs sent back since boot.",
            snap.emissions_out,
        );
        counter(
            &mut out,
            "pit_serve_frames_rejected_total",
            "Frames refused with an ERROR reply.",
            snap.frames_rejected,
        );
        counter(
            &mut out,
            "pit_serve_replies_dropped_total",
            "Reply frames dropped because a connection's outbound queue was full.",
            snap.replies_dropped,
        );
        gauge(
            &mut out,
            "pit_serve_outbuf_high_water_bytes",
            "Highest number of bytes ever queued toward one connection.",
            snap.outbuf_hwm_bytes as f64,
        );
        counter(
            &mut out,
            "pit_serve_waves_total",
            "Pool waves (flushes that served at least one stream).",
            snap.waves,
        );
        gauge(
            &mut out,
            "pit_serve_wave_occupancy",
            "Mean number of streams served per wave.",
            snap.wave_occupancy,
        );
        // Daemon-wide wave-latency quantiles as a Prometheus summary: the
        // same shard-merged histogram the STATS frame's wave_p*_ns fields
        // are computed from, so the two views agree by construction.
        help_type(
            &mut out,
            "pit_serve_wave_latency_ns",
            "Wave (pool flush) latency quantiles over all shards, nanoseconds.",
            "summary",
        );
        for (q, v) in [
            ("0.5", snap.wave_p50_ns),
            ("0.99", snap.wave_p99_ns),
            ("0.999", snap.wave_p999_ns),
        ] {
            sample(
                &mut out,
                "pit_serve_wave_latency_ns",
                &format!("quantile=\"{q}\""),
                v as f64,
            );
        }
        counter(
            &mut out,
            "pit_serve_stats_seq",
            "Total shard loop iterations (the STATS snapshot sequence).",
            snap.seq,
        );
        gauge(
            &mut out,
            "pit_serve_stats_settled",
            "1 when no routed events or queued timesteps await a shard.",
            if snap.settled { 1.0 } else { 0.0 },
        );
        counter(
            &mut out,
            "pit_serve_trace_events_total",
            "Per-stream trace events recorded since boot.",
            self.trace.recorded(),
        );

        // Per-model families, labelled by registry name and kind.
        help_type(
            &mut out,
            "pit_serve_model_streams_open",
            "Streams currently open per registry model.",
            "gauge",
        );
        for m in snap.models.iter() {
            sample(
                &mut out,
                "pit_serve_model_streams_open",
                &model_labels(m),
                m.streams_open as f64,
            );
        }
        help_type(
            &mut out,
            "pit_serve_model_streams_opened_total",
            "Streams opened per registry model since boot.",
            "counter",
        );
        for m in snap.models.iter() {
            sample(
                &mut out,
                "pit_serve_model_streams_opened_total",
                &model_labels(m),
                m.streams_opened as f64,
            );
        }
        help_type(
            &mut out,
            "pit_serve_model_timesteps_total",
            "Timesteps accepted per registry model since boot.",
            "counter",
        );
        for m in snap.models.iter() {
            sample(
                &mut out,
                "pit_serve_model_timesteps_total",
                &model_labels(m),
                m.timesteps_in as f64,
            );
        }
        help_type(
            &mut out,
            "pit_serve_model_emissions_total",
            "Head outputs sent back per registry model since boot.",
            "counter",
        );
        for m in snap.models.iter() {
            sample(
                &mut out,
                "pit_serve_model_emissions_total",
                &model_labels(m),
                m.emissions_out as f64,
            );
        }
        help_type(
            &mut out,
            "pit_serve_model_waves_total",
            "Pool waves that served each registry model.",
            "counter",
        );
        for m in snap.models.iter() {
            sample(
                &mut out,
                "pit_serve_model_waves_total",
                &model_labels(m),
                m.waves as f64,
            );
        }
        drop(models);

        // Latency histograms. Boundaries are the histogram's own exact
        // integer bucket bounds (nanoseconds), not the seconds convention —
        // cumulative counts stay exact integers this way.
        help_type(
            &mut out,
            "pit_serve_wave_flush_ns",
            "Wave (pool flush) latency per shard, nanoseconds.",
            "histogram",
        );
        for (i, shard) in shards.iter().enumerate() {
            let label = format!("shard=\"{i}\"");
            histogram_series(
                &mut out,
                "pit_serve_wave_flush_ns",
                &label,
                &shard.wave_ns_snapshot(),
            );
        }
        help_type(
            &mut out,
            "pit_serve_edge_poll_ns",
            "Edge loop time blocked in poll(2) per iteration, nanoseconds.",
            "histogram",
        );
        histogram_series(
            &mut out,
            "pit_serve_edge_poll_ns",
            "",
            &self.edge_poll_ns.snapshot(),
        );
        help_type(
            &mut out,
            "pit_serve_edge_dispatch_ns",
            "Edge loop time accepting, reading and dispatching per iteration, nanoseconds.",
            "histogram",
        );
        histogram_series(
            &mut out,
            "pit_serve_edge_dispatch_ns",
            "",
            &self.edge_dispatch_ns.snapshot(),
        );
        out
    }
}

// ---------------------------------------------------------------------------
// Prometheus text helpers
// ---------------------------------------------------------------------------

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline.
pub(crate) fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a HELP text: backslash and newline.
fn escape_help(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn help_type(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(&escape_help(help));
    out.push('\n');
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Formats a sample value the way Prometheus expects: integers without a
/// fraction, everything else via the shortest roundtrip float.
fn format_value(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 9.0e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

fn sample(out: &mut String, name: &str, labels: &str, value: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        out.push_str(labels);
        out.push('}');
    }
    out.push(' ');
    out.push_str(&format_value(value));
    out.push('\n');
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    help_type(out, name, help, "counter");
    sample(out, name, "", value as f64);
}

fn gauge(out: &mut String, name: &str, help: &str, value: f64) {
    help_type(out, name, help, "gauge");
    sample(out, name, "", value);
}

fn model_labels(m: &crate::stats::ModelSnapshot) -> String {
    format!(
        "model=\"{}\",kind=\"{}\"",
        escape_label(&m.name),
        escape_label(&m.kind)
    )
}

/// The coarse `le` boundaries exposed per histogram: `4^k − 1` for
/// `k = 1..=16` (3 ns … ~4.3 s), each an exact upper bound of one of the
/// fine buckets, then `+Inf`.
fn prometheus_bounds() -> impl Iterator<Item = u64> {
    (1..=16u32).map(|k| (1u64 << (2 * k)) - 1)
}

/// Renders one histogram's `_bucket`/`_sum`/`_count` series under the
/// given extra labels (may be empty).
fn histogram_series(out: &mut String, name: &str, labels: &str, snap: &HistogramSnapshot) {
    let sep = if labels.is_empty() { "" } else { "," };
    for bound in prometheus_bounds() {
        let line_labels = format!("{labels}{sep}le=\"{bound}\"");
        sample(
            out,
            &format!("{name}_bucket"),
            &line_labels,
            snap.cumulative_le(bound) as f64,
        );
    }
    let inf_labels = format!("{labels}{sep}le=\"+Inf\"");
    sample(
        out,
        &format!("{name}_bucket"),
        &inf_labels,
        snap.count() as f64,
    );
    sample(out, &format!("{name}_sum"), labels, snap.sum() as f64);
    sample(out, &format!("{name}_count"), labels, snap.count() as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ring_records_filters_and_wraps() {
        let ring = TraceRing::default();
        ring.record(TraceKind::Open, 1, Some(7), Some(2), Some(0), 0, 10);
        ring.record(TraceKind::Push, 1, Some(7), Some(2), Some(0), 16, 20);
        ring.record(TraceKind::Push, 2, Some(7), Some(3), Some(1), 4, 30);
        ring.record(TraceKind::Error, 3, None, None, None, 4, 40);
        let all = ring.collect(None, None);
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].kind, TraceKind::Open);
        assert_eq!(all[3].stream, None);
        assert_eq!(all[3].shard, None);
        assert_eq!(all[3].model, None);
        let conn1 = ring.collect(Some(1), Some(7));
        assert_eq!(conn1.len(), 2);
        assert_eq!(conn1[1].count, 16);
        // Wrap: the ring keeps only the most recent TRACE_RING_SLOTS events.
        for i in 0..(TRACE_RING_SLOTS as u64 + 50) {
            ring.record(TraceKind::Emit, 9, Some(0), Some(0), Some(0), i, i);
        }
        let recent = ring.collect(Some(9), None);
        assert_eq!(recent.len(), TRACE_RING_SLOTS);
        assert_eq!(recent.last().unwrap().count, TRACE_RING_SLOTS as u64 + 49);
        // Events are in order and contiguous.
        for pair in recent.windows(2) {
            assert_eq!(pair[0].seq + 1, pair[1].seq);
        }
    }

    #[test]
    fn trace_json_roundtrips_through_the_public_parser() {
        let telemetry = Telemetry::new();
        telemetry.install_models(
            vec![ModelMeta {
                name: "fp".into(),
                kind: "f32",
                stats: Arc::new(ModelStats::default()),
            }],
            0,
        );
        telemetry
            .trace
            .record(TraceKind::Open, 5, Some(1), Some(0), Some(0), 0, 100);
        telemetry
            .trace
            .record(TraceKind::Push, 5, Some(1), Some(0), Some(0), 8, 150);
        telemetry
            .trace
            .record(TraceKind::Error, 5, None, None, None, 3, 160);
        let events = TraceEvent::parse_list(&telemetry.trace_json(Some(5), None)).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].event, "open");
        assert_eq!(events[0].model, "fp");
        assert_eq!(events[1].count, 8);
        assert_eq!(events[1].stream, Some(1));
        assert_eq!(events[2].event, "error");
        assert_eq!(events[2].stream, None);
        assert_eq!(events[2].model, "");
        let filtered = TraceEvent::parse_list(&telemetry.trace_json(Some(5), Some(1))).unwrap();
        assert_eq!(filtered.len(), 2);
    }

    #[test]
    fn label_escaping_covers_quotes_backslashes_and_newlines() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\"b"), "a\\\"b");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("a\nb"), "a\\nb");
    }

    #[test]
    fn prometheus_rendering_is_wellformed_for_an_idle_daemon() {
        let telemetry = Telemetry::new();
        telemetry.install_models(
            vec![ModelMeta {
                name: "m".into(),
                kind: "i8",
                stats: Arc::new(ModelStats::default()),
            }],
            0,
        );
        telemetry.install_shards(vec![Arc::new(ShardStats::default())]);
        let text = telemetry.render_prometheus();
        assert!(text.contains("# TYPE pit_serve_timesteps_total counter"));
        assert!(text.contains("# TYPE pit_serve_wave_flush_ns histogram"));
        assert!(text.contains("# TYPE pit_serve_wave_latency_ns summary"));
        assert!(text.contains("pit_serve_wave_latency_ns{quantile=\"0.999\"} 0"));
        assert!(text.contains("pit_serve_wave_flush_ns_bucket{shard=\"0\",le=\"+Inf\"} 0"));
        assert!(text.contains("pit_serve_model_timesteps_total{model=\"m\",kind=\"i8\"} 0"));
        assert!(text.ends_with('\n'));
    }
}
