//! A small blocking client for the `pit-serve` protocol — what the
//! integration tests, benchmarks and examples drive the daemon with, and a
//! reference implementation for clients in other languages.
//!
//! Construction goes through [`ClientBuilder`] (connect/read timeouts,
//! write batching) and errors are typed [`ServeError`]s;
//! [`Client::connect`] remains as a thin compatibility constructor with
//! the defaults and an `io::Result` signature.

use crate::protocol::{
    decode_server, encode_client, ClientFrame, FrameReader, ReadOutcome, ServerFrame,
};
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// What can go wrong talking to a daemon.
#[derive(Debug)]
pub enum ServeError {
    /// Transport-level failure (connect, read, write).
    Io(std::io::Error),
    /// The peer sent bytes that do not decode as a protocol frame.
    Protocol(String),
    /// The server closed the connection.
    Disconnected,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "transport error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<ServeError> for std::io::Error {
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::Io(io) => io,
            ServeError::Protocol(msg) => std::io::Error::new(std::io::ErrorKind::InvalidData, msg),
            ServeError::Disconnected => std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ),
        }
    }
}

/// Configures and connects a [`Client`].
///
/// ```no_run
/// use pit_serve::ClientBuilder;
/// use std::time::Duration;
///
/// let client = ClientBuilder::new()
///     .connect_timeout(Duration::from_secs(2))
///     .read_timeout(Duration::from_secs(10))
///     .write_batch(64)
///     .connect("127.0.0.1:7878")
///     .expect("daemon reachable");
/// # drop(client);
/// ```
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    connect_timeout: Option<Duration>,
    read_timeout: Option<Duration>,
    write_batch: usize,
}

impl Default for ClientBuilder {
    fn default() -> Self {
        Self {
            connect_timeout: None,
            read_timeout: None,
            write_batch: 1,
        }
    }
}

impl ClientBuilder {
    /// A builder with the defaults: block forever on connect and read,
    /// write every frame immediately (batch size 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// Gives up on `connect` after `timeout`. Requires the address to
    /// resolve to at least one socket address.
    #[must_use]
    pub fn connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = Some(timeout);
        self
    }

    /// Default budget for [`Client::recv`]: with a read timeout set,
    /// `recv` returns [`ServeError::Io`] (`TimedOut`) instead of blocking
    /// forever on a silent server. [`Client::recv_timeout`] overrides it
    /// per call.
    #[must_use]
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = Some(timeout);
        self
    }

    /// Stages up to `frames` outbound frames in a local buffer before
    /// writing them with one syscall. Any `recv*` call flushes first, so
    /// batching never deadlocks request/reply exchanges; call
    /// [`Client::flush`] to force bytes out early. `0` is treated as `1`.
    #[must_use]
    pub fn write_batch(mut self, frames: usize) -> Self {
        self.write_batch = frames.max(1);
        self
    }

    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on resolution, connect, or socket-option
    /// failures.
    pub fn connect(self, addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        let stream = match self.connect_timeout {
            None => TcpStream::connect(addr)?,
            Some(timeout) => {
                let mut last = None;
                let mut connected = None;
                for sock in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&sock, timeout) {
                        Ok(s) => {
                            connected = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                connected.ok_or_else(|| {
                    last.unwrap_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidInput,
                            "address resolved to no socket addresses",
                        )
                    })
                })?
            }
        };
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: FrameReader::new(stream),
            staged: Vec::new(),
            staged_frames: 0,
            write_batch: self.write_batch,
            read_timeout: self.read_timeout,
        })
    }
}

/// A blocking protocol client over one TCP connection. One connection can
/// multiplex any number of streams (client-chosen `u32` ids).
pub struct Client {
    writer: TcpStream,
    reader: FrameReader<TcpStream>,
    staged: Vec<u8>,
    staged_frames: usize,
    write_batch: usize,
    read_timeout: Option<Duration>,
}

impl Client {
    /// Connects with the default [`ClientBuilder`] settings — the
    /// compatibility constructor predating the builder.
    ///
    /// # Errors
    ///
    /// Returns connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        ClientBuilder::new().connect(addr).map_err(Into::into)
    }

    /// Sends one frame (staged until the write batch fills; see
    /// [`ClientBuilder::write_batch`]).
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn send(&mut self, frame: &ClientFrame) -> Result<(), ServeError> {
        self.staged.extend_from_slice(&encode_client(frame));
        self.staged_frames += 1;
        if self.staged_frames >= self.write_batch {
            self.flush()?;
        }
        Ok(())
    }

    /// Writes out any staged frames.
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn flush(&mut self) -> Result<(), ServeError> {
        if !self.staged.is_empty() {
            self.writer.write_all(&self.staged)?;
            self.staged.clear();
        }
        self.staged_frames = 0;
        Ok(())
    }

    /// Sends OPEN for a connection-scoped stream id.
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn open(&mut self, stream_id: u32) -> Result<(), ServeError> {
        self.send(&ClientFrame::Open { stream_id })
    }

    /// Sends PUSH with `samples.len() / channels` timesteps.
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn push(
        &mut self,
        stream_id: u32,
        channels: u32,
        samples: &[f32],
    ) -> Result<(), ServeError> {
        self.send(&ClientFrame::Push {
            stream_id,
            channels,
            samples: samples.to_vec(),
        })
    }

    /// Sends one protocol-v2 PUSH_N frame carrying timesteps for several
    /// streams: `entries` lists `(stream_id, timestep_count)` and
    /// `samples` concatenates the per-stream values in entry order. The
    /// server replies with coalesced EMIT_N frames on this connection from
    /// then on.
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn push_n(
        &mut self,
        channels: u32,
        entries: &[(u32, u32)],
        samples: &[f32],
    ) -> Result<(), ServeError> {
        self.send(&ClientFrame::PushN {
            channels,
            entries: entries.to_vec(),
            samples: samples.to_vec(),
        })
    }

    /// Sends CLOSE for a stream.
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn close(&mut self, stream_id: u32) -> Result<(), ServeError> {
        self.send(&ClientFrame::Close { stream_id })
    }

    /// Sends PING with a token the server echoes.
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn ping(&mut self, token: u64) -> Result<(), ServeError> {
        self.send(&ClientFrame::Ping { token })
    }

    /// Requests a stats snapshot.
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn stats(&mut self) -> Result<(), ServeError> {
        self.send(&ClientFrame::Stats)
    }

    /// Blocks until the next server frame arrives (bounded by the
    /// builder's [`ClientBuilder::read_timeout`], if one was set).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on transport errors (`TimedOut` when the read
    /// timeout lapses), [`ServeError::Disconnected`] when the server hung
    /// up, [`ServeError::Protocol`] when the body does not decode.
    pub fn recv(&mut self) -> Result<ServerFrame, ServeError> {
        self.flush()?;
        match self.read_timeout {
            None => loop {
                match self.recv_step()? {
                    Some(frame) => return Ok(frame),
                    None => continue,
                }
            },
            Some(timeout) => self.recv_timeout(timeout)?.ok_or_else(|| {
                ServeError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "no frame within the client read timeout",
                ))
            }),
        }
    }

    /// Waits up to `timeout` for the next server frame (`Ok(None)` on
    /// timeout).
    ///
    /// # Errors
    ///
    /// As [`Client::recv`].
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<ServerFrame>, ServeError> {
        self.flush()?;
        let deadline = std::time::Instant::now() + timeout;
        let result = loop {
            // Re-arm each read with the *remaining* budget, not the full
            // timeout: a peer dribbling partial frames must not restart the
            // clock on every byte.
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                break Ok(None);
            }
            self.reader
                .get_ref()
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
            match self.recv_step() {
                Ok(Some(frame)) => break Ok(Some(frame)),
                Ok(None) => {}
                Err(e) => break Err(e),
            }
        };
        self.reader.get_ref().set_read_timeout(None)?;
        result
    }

    /// One poll step: `Ok(Some)` on a frame, `Ok(None)` on a read timeout.
    fn recv_step(&mut self) -> Result<Option<ServerFrame>, ServeError> {
        match self.reader.poll() {
            Ok(ReadOutcome::Frame(body)) => decode_server(&body)
                .map(Some)
                .map_err(|e| ServeError::Protocol(e.to_string())),
            Ok(ReadOutcome::WouldBlock) => Ok(None),
            Ok(ReadOutcome::Eof) => Err(ServeError::Disconnected),
            Err(e) => Err(ServeError::Protocol(e.to_string())),
        }
    }
}
