//! A small blocking client for the `pit-serve` protocol — what the
//! integration tests, benchmarks and examples drive the daemon with, and a
//! reference implementation for clients in other languages.

use crate::protocol::{
    decode_server, encode_client, ClientFrame, FrameReader, ReadOutcome, ServerFrame,
};
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking protocol client over one TCP connection. One connection can
/// multiplex any number of streams (client-chosen `u32` ids).
pub struct Client {
    writer: TcpStream,
    reader: FrameReader<TcpStream>,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Returns connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            writer,
            reader: FrameReader::new(stream),
        })
    }

    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn send(&mut self, frame: &ClientFrame) -> std::io::Result<()> {
        self.writer.write_all(&encode_client(frame))
    }

    /// Sends OPEN for a connection-scoped stream id.
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn open(&mut self, stream_id: u32) -> std::io::Result<()> {
        self.send(&ClientFrame::Open { stream_id })
    }

    /// Sends PUSH with `samples.len() / channels` timesteps.
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn push(&mut self, stream_id: u32, channels: u32, samples: &[f32]) -> std::io::Result<()> {
        self.send(&ClientFrame::Push {
            stream_id,
            channels,
            samples: samples.to_vec(),
        })
    }

    /// Sends CLOSE for a stream.
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn close(&mut self, stream_id: u32) -> std::io::Result<()> {
        self.send(&ClientFrame::Close { stream_id })
    }

    /// Sends PING with a token the server echoes.
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn ping(&mut self, token: u64) -> std::io::Result<()> {
        self.send(&ClientFrame::Ping { token })
    }

    /// Requests a stats snapshot.
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn stats(&mut self) -> std::io::Result<()> {
        self.send(&ClientFrame::Stats)
    }

    /// Blocks until the next server frame arrives.
    ///
    /// # Errors
    ///
    /// Returns transport errors, `UnexpectedEof` when the server hung up,
    /// and `InvalidData` when the body does not decode.
    pub fn recv(&mut self) -> std::io::Result<ServerFrame> {
        loop {
            match self.recv_step()? {
                Some(frame) => return Ok(frame),
                None => continue,
            }
        }
    }

    /// Waits up to `timeout` for the next server frame (`Ok(None)` on
    /// timeout).
    ///
    /// # Errors
    ///
    /// As [`Client::recv`].
    pub fn recv_timeout(&mut self, timeout: Duration) -> std::io::Result<Option<ServerFrame>> {
        let deadline = std::time::Instant::now() + timeout;
        let result = loop {
            // Re-arm each read with the *remaining* budget, not the full
            // timeout: a peer dribbling partial frames must not restart the
            // clock on every byte.
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                break Ok(None);
            }
            self.reader
                .get_ref()
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
            match self.recv_step() {
                Ok(Some(frame)) => break Ok(Some(frame)),
                Ok(None) => {}
                Err(e) => break Err(e),
            }
        };
        self.reader.get_ref().set_read_timeout(None)?;
        result
    }

    /// One poll step: `Ok(Some)` on a frame, `Ok(None)` on a read timeout.
    fn recv_step(&mut self) -> std::io::Result<Option<ServerFrame>> {
        match self.reader.poll() {
            Ok(ReadOutcome::Frame(body)) => decode_server(&body)
                .map(Some)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())),
            Ok(ReadOutcome::WouldBlock) => Ok(None),
            Ok(ReadOutcome::Eof) => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            Err(e) => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                e.to_string(),
            )),
        }
    }
}
