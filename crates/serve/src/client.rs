//! A small blocking client for the `pit-serve` protocol — what the
//! integration tests, benchmarks and examples drive the daemon with, and a
//! reference implementation for clients in other languages.
//!
//! Construction goes through [`ClientBuilder`] (connect/read timeouts,
//! write batching, a default model for protocol-v3 stream opens) and
//! errors are typed [`ServeError`]s; [`Client::connect`] remains as a thin
//! compatibility constructor with the defaults and an `io::Result`
//! signature. Against a model-zoo daemon, pick a model per stream with
//! [`Client::open_with_model`] (or set [`ClientBuilder::default_model`])
//! and inspect the registry with [`Client::list_models`].

use crate::protocol::{
    decode_server, encode_client, ClientFrame, FrameReader, ReadOutcome, ServerFrame,
    MAX_MODEL_NAME,
};
use pit_tensor::json::Json;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// What can go wrong talking to a daemon.
#[derive(Debug)]
pub enum ServeError {
    /// Transport-level failure (connect, read, write).
    Io(std::io::Error),
    /// The peer sent bytes that do not decode as a protocol frame.
    Protocol(String),
    /// The server closed the connection.
    Disconnected,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "transport error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<ServeError> for std::io::Error {
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::Io(io) => io,
            ServeError::Protocol(msg) => std::io::Error::new(std::io::ErrorKind::InvalidData, msg),
            ServeError::Disconnected => std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ),
        }
    }
}

/// Configures and connects a [`Client`].
///
/// ```no_run
/// use pit_serve::ClientBuilder;
/// use std::time::Duration;
///
/// let client = ClientBuilder::new()
///     .connect_timeout(Duration::from_secs(2))
///     .read_timeout(Duration::from_secs(10))
///     .write_batch(64)
///     .connect("127.0.0.1:7878")
///     .expect("daemon reachable");
/// # drop(client);
/// ```
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    connect_timeout: Option<Duration>,
    read_timeout: Option<Duration>,
    write_batch: usize,
    default_model: Option<String>,
}

impl Default for ClientBuilder {
    fn default() -> Self {
        Self {
            connect_timeout: None,
            read_timeout: None,
            write_batch: 1,
            default_model: None,
        }
    }
}

impl ClientBuilder {
    /// A builder with the defaults: block forever on connect and read,
    /// write every frame immediately (batch size 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// Gives up on `connect` after `timeout`. Requires the address to
    /// resolve to at least one socket address.
    #[must_use]
    pub fn connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = Some(timeout);
        self
    }

    /// Default budget for [`Client::recv`]: with a read timeout set,
    /// `recv` returns [`ServeError::Io`] (`TimedOut`) instead of blocking
    /// forever on a silent server. [`Client::recv_timeout`] overrides it
    /// per call.
    #[must_use]
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = Some(timeout);
        self
    }

    /// Stages up to `frames` outbound frames in a local buffer before
    /// writing them with one syscall. Any `recv*` call flushes first, so
    /// batching never deadlocks request/reply exchanges; call
    /// [`Client::flush`] to force bytes out early. `0` is treated as `1`.
    #[must_use]
    pub fn write_batch(mut self, frames: usize) -> Self {
        self.write_batch = frames.max(1);
        self
    }

    /// Model every [`Client::open`] selects (protocol v3). Unset, `open`
    /// sends the v1 frame and gets the server's default model.
    #[must_use]
    pub fn default_model(mut self, name: impl Into<String>) -> Self {
        self.default_model = Some(name.into());
        self
    }

    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on resolution, connect, or socket-option
    /// failures.
    pub fn connect(self, addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        let stream = match self.connect_timeout {
            None => TcpStream::connect(addr)?,
            Some(timeout) => {
                let mut last = None;
                let mut connected = None;
                for sock in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&sock, timeout) {
                        Ok(s) => {
                            connected = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                connected.ok_or_else(|| {
                    last.unwrap_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidInput,
                            "address resolved to no socket addresses",
                        )
                    })
                })?
            }
        };
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: FrameReader::new(stream),
            staged: Vec::new(),
            staged_frames: 0,
            write_batch: self.write_batch,
            read_timeout: self.read_timeout,
            default_model: self.default_model,
        })
    }
}

/// One registry model's metadata, parsed from a MODELS_JSON reply (see
/// [`Client::list_models`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelInfo {
    /// Registry name — what OPEN's model field selects.
    pub name: String,
    /// `"f32"` or `"i8"`.
    pub kind: String,
    /// Input channels per timestep the model expects.
    pub input_channels: usize,
    /// Values per emitted head output.
    pub output_dim: usize,
    /// Receptive field of the served plan, in timesteps.
    pub receptive_field: usize,
    /// Streams currently open on this model.
    pub streams_open: u64,
    /// Whether a model-less OPEN gets this entry.
    pub default: bool,
}

impl ModelInfo {
    /// Parses a MODELS_JSON payload into the registry listing.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON or a missing/ill-typed field.
    pub fn parse_list(json: &str) -> Result<Vec<ModelInfo>, String> {
        let doc = Json::parse(json)?;
        let arr = doc
            .as_array()
            .ok_or("MODELS_JSON payload is not an array")?;
        arr.iter()
            .map(|entry| {
                let text = |key: &str| -> Result<String, String> {
                    entry
                        .get(key)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| format!("model entry: missing string field '{key}'"))
                };
                let num = |key: &str| -> Result<f64, String> {
                    entry
                        .get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("model entry: missing number field '{key}'"))
                };
                Ok(ModelInfo {
                    name: text("name")?,
                    kind: text("kind")?,
                    input_channels: num("input_channels")? as usize,
                    output_dim: num("output_dim")? as usize,
                    receptive_field: num("receptive_field")? as usize,
                    streams_open: num("streams_open")? as u64,
                    default: matches!(entry.get("default"), Some(Json::Bool(true))),
                })
            })
            .collect()
    }
}

/// A blocking protocol client over one TCP connection. One connection can
/// multiplex any number of streams (client-chosen `u32` ids).
pub struct Client {
    writer: TcpStream,
    reader: FrameReader<TcpStream>,
    staged: Vec<u8>,
    staged_frames: usize,
    write_batch: usize,
    read_timeout: Option<Duration>,
    default_model: Option<String>,
}

impl Client {
    /// Connects with the default [`ClientBuilder`] settings — the
    /// compatibility constructor predating the builder.
    ///
    /// # Errors
    ///
    /// Returns connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        ClientBuilder::new().connect(addr).map_err(Into::into)
    }

    /// Sends one frame (staged until the write batch fills; see
    /// [`ClientBuilder::write_batch`]).
    ///
    /// # Errors
    ///
    /// Returns transport errors, and [`ServeError::Protocol`] for an OPEN
    /// whose model name is empty or longer than the wire's
    /// [`MAX_MODEL_NAME`]-byte limit (the `u16` length prefix cannot
    /// represent it).
    pub fn send(&mut self, frame: &ClientFrame) -> Result<(), ServeError> {
        if let ClientFrame::Open {
            model: Some(name), ..
        } = frame
        {
            if name.is_empty() {
                return Err(ServeError::Protocol("model name must not be empty".into()));
            }
            if name.len() > MAX_MODEL_NAME {
                return Err(ServeError::Protocol(format!(
                    "model name is {} bytes; the OPEN name field holds at most {MAX_MODEL_NAME}",
                    name.len()
                )));
            }
        }
        self.staged.extend_from_slice(&encode_client(frame));
        self.staged_frames += 1;
        if self.staged_frames >= self.write_batch {
            self.flush()?;
        }
        Ok(())
    }

    /// Writes out any staged frames.
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn flush(&mut self) -> Result<(), ServeError> {
        if !self.staged.is_empty() {
            self.writer.write_all(&self.staged)?;
            self.staged.clear();
        }
        self.staged_frames = 0;
        Ok(())
    }

    /// Sends OPEN for a connection-scoped stream id, selecting the
    /// builder's [`ClientBuilder::default_model`] if one was set (else the
    /// plain v1 frame, which gets the server's default model).
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn open(&mut self, stream_id: u32) -> Result<(), ServeError> {
        let model = self.default_model.clone();
        self.send(&ClientFrame::Open { stream_id, model })
    }

    /// Sends a protocol-v3 OPEN selecting a registry model by name for
    /// this stream, regardless of any builder default.
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn open_with_model(
        &mut self,
        stream_id: u32,
        model: impl Into<String>,
    ) -> Result<(), ServeError> {
        self.send(&ClientFrame::Open {
            stream_id,
            model: Some(model.into()),
        })
    }

    /// Sends PUSH with `samples.len() / channels` timesteps.
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn push(
        &mut self,
        stream_id: u32,
        channels: u32,
        samples: &[f32],
    ) -> Result<(), ServeError> {
        self.send(&ClientFrame::Push {
            stream_id,
            channels,
            samples: samples.to_vec(),
        })
    }

    /// Sends one protocol-v2 PUSH_N frame carrying timesteps for several
    /// streams: `entries` lists `(stream_id, timestep_count)` and
    /// `samples` concatenates the per-stream values in entry order. The
    /// server replies with coalesced EMIT_N frames on this connection from
    /// then on.
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn push_n(
        &mut self,
        channels: u32,
        entries: &[(u32, u32)],
        samples: &[f32],
    ) -> Result<(), ServeError> {
        self.send(&ClientFrame::PushN {
            channels,
            entries: entries.to_vec(),
            samples: samples.to_vec(),
        })
    }

    /// Sends CLOSE for a stream.
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn close(&mut self, stream_id: u32) -> Result<(), ServeError> {
        self.send(&ClientFrame::Close { stream_id })
    }

    /// Sends PING with a token the server echoes.
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn ping(&mut self, token: u64) -> Result<(), ServeError> {
        self.send(&ClientFrame::Ping { token })
    }

    /// Requests a stats snapshot.
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn stats(&mut self) -> Result<(), ServeError> {
        self.send(&ClientFrame::Stats)
    }

    /// Requests the model registry and blocks for the reply: sends
    /// LIST_MODELS, then reads until the MODELS_JSON frame arrives
    /// (EMIT/EMIT_N/CLOSED frames arriving first are NOT buffered — use
    /// this between exchanges, not mid-burst).
    ///
    /// # Errors
    ///
    /// As [`Client::recv`], plus [`ServeError::Protocol`] when the payload
    /// does not parse.
    pub fn list_models(&mut self) -> Result<Vec<ModelInfo>, ServeError> {
        self.send(&ClientFrame::ListModels)?;
        loop {
            match self.recv()? {
                ServerFrame::ModelsJson { json } => {
                    return ModelInfo::parse_list(&json).map_err(ServeError::Protocol)
                }
                ServerFrame::Error { code, message } => {
                    return Err(ServeError::Protocol(format!(
                        "LIST_MODELS refused: {code:?}: {message}"
                    )))
                }
                _ => continue,
            }
        }
    }

    /// Requests the daemon's per-stream event trace for `stream_id` on
    /// this connection and blocks for the reply: sends TRACE (protocol
    /// v4), then reads until the TRACE_JSON frame arrives (frames arriving
    /// first are NOT buffered — use this between exchanges, not
    /// mid-burst).
    ///
    /// # Errors
    ///
    /// As [`Client::recv`], plus [`ServeError::Protocol`] when the payload
    /// does not parse.
    pub fn trace(&mut self, stream_id: u32) -> Result<Vec<crate::TraceEvent>, ServeError> {
        self.send(&ClientFrame::Trace { stream_id })?;
        loop {
            match self.recv()? {
                ServerFrame::TraceJson { json } => {
                    return crate::TraceEvent::parse_list(&json).map_err(ServeError::Protocol)
                }
                ServerFrame::Error { code, message } => {
                    return Err(ServeError::Protocol(format!(
                        "TRACE refused: {code:?}: {message}"
                    )))
                }
                _ => continue,
            }
        }
    }

    /// Blocks until the next server frame arrives (bounded by the
    /// builder's [`ClientBuilder::read_timeout`], if one was set).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on transport errors (`TimedOut` when the read
    /// timeout lapses), [`ServeError::Disconnected`] when the server hung
    /// up, [`ServeError::Protocol`] when the body does not decode.
    pub fn recv(&mut self) -> Result<ServerFrame, ServeError> {
        self.flush()?;
        match self.read_timeout {
            None => loop {
                match self.recv_step()? {
                    Some(frame) => return Ok(frame),
                    None => continue,
                }
            },
            Some(timeout) => self.recv_timeout(timeout)?.ok_or_else(|| {
                ServeError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "no frame within the client read timeout",
                ))
            }),
        }
    }

    /// Waits up to `timeout` for the next server frame (`Ok(None)` on
    /// timeout).
    ///
    /// # Errors
    ///
    /// As [`Client::recv`].
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<ServerFrame>, ServeError> {
        self.flush()?;
        let deadline = std::time::Instant::now() + timeout;
        let result = loop {
            // Re-arm each read with the *remaining* budget, not the full
            // timeout: a peer dribbling partial frames must not restart the
            // clock on every byte.
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                break Ok(None);
            }
            self.reader
                .get_ref()
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
            match self.recv_step() {
                Ok(Some(frame)) => break Ok(Some(frame)),
                Ok(None) => {}
                Err(e) => break Err(e),
            }
        };
        self.reader.get_ref().set_read_timeout(None)?;
        result
    }

    /// One poll step: `Ok(Some)` on a frame, `Ok(None)` on a read timeout.
    fn recv_step(&mut self) -> Result<Option<ServerFrame>, ServeError> {
        match self.reader.poll() {
            Ok(ReadOutcome::Frame(body)) => decode_server(&body)
                .map(Some)
                .map_err(|e| ServeError::Protocol(e.to_string())),
            Ok(ReadOutcome::WouldBlock) => Ok(None),
            Ok(ReadOutcome::Eof) => Err(ServeError::Disconnected),
            Err(e) => Err(ServeError::Protocol(e.to_string())),
        }
    }
}
