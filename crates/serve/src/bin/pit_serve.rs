//! The `pit-serve` daemon binary.
//!
//! ```text
//! pit-serve --artifact MODEL.json | --zoo ZOO.json
//!           [--default-model NAME] [--check]
//!           [--addr 127.0.0.1:7878] [--max-streams N]
//!           [--tick-us N] [--idle-ms N] [--max-pending N] [--shards N]
//!           [--metrics-addr HOST:PORT] [--drain-grace-ms N]
//!           [--read-progress-ms N]
//! ```
//!
//! Boots a serving daemon from a single `pit-arch/2` model artifact (f32 or
//! int8 — the file's `kind` field decides the engine) **or** from a whole
//! `pit-zoo/1` artifact library written by `pit-search`, registering every
//! listed model so clients pick one per stream at OPEN (protocol v3). The
//! daemon then serves the frame protocol of `pit_serve::protocol` until the
//! process is terminated. `--check` validates the boot source — manifest,
//! artifacts, registry — prints the model table and exits without serving.
//! `--metrics-addr` boots the HTTP telemetry sidecar beside the daemon:
//! Prometheus text on `GET /metrics`, stats JSON on `GET /stats`, liveness
//! on `GET /healthz` and the per-stream event trace on `GET /trace`.

use pit_serve::{Server, ServerConfig};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: pit-serve --artifact MODEL.json | --zoo ZOO.json\n\
         \u{20}               [--default-model NAME] [--check]\n\
         \u{20}               [--addr HOST:PORT] [--max-streams N]\n\
         \u{20}               [--tick-us N] [--idle-ms N] [--max-pending N] [--shards N]\n\
         \u{20}               [--metrics-addr HOST:PORT] [--drain-grace-ms N]\n\
         \u{20}               [--read-progress-ms N]\n\
         \n\
         \u{20} --artifact      pit-arch/2 model artifact to serve\n\
         \u{20} --zoo           pit-zoo/1 manifest — serve the whole library\n\
         \u{20} --default-model registry entry a model-less OPEN gets (zoo only;\n\
         \u{20}                 default: the manifest's default entry)\n\
         \u{20} --check         validate the boot source, print models, exit\n\
         \u{20} --addr          bind address (default 127.0.0.1:7878)\n\
         \u{20} --max-streams   concurrent stream cap (default 4096)\n\
         \u{20} --tick-us       wave-batching tick in microseconds (default 200)\n\
         \u{20} --idle-ms       evict streams idle this long; 0 = never (default 0)\n\
         \u{20} --max-pending   per-connection queued-timestep cap (default 4096)\n\
         \u{20} --shards        wave-batcher shard threads (default: CPU count, max 8)\n\
         \u{20} --metrics-addr  bind the HTTP telemetry sidecar here (GET /metrics,\n\
         \u{20}                 /stats, /healthz, /trace; default: disabled)\n\
         \u{20} --drain-grace-ms keep serving reads this long after a shutdown is\n\
         \u{20}                 requested, refusing new streams (default 0)\n\
         \u{20} --read-progress-ms drop connections whose partial frame stalls this\n\
         \u{20}                 long, or that hold no streams and complete no frame\n\
         \u{20}                 within it; 0 = never (default 30000)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut artifact: Option<String> = None;
    let mut zoo: Option<String> = None;
    let mut default_model: Option<String> = None;
    let mut check = false;
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".into(),
        ..ServerConfig::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Option<String> {
            let v = it.next().cloned();
            if v.is_none() {
                eprintln!("pit-serve: {name} needs a value");
            }
            v
        };
        match arg.as_str() {
            "--artifact" => match value("--artifact") {
                Some(v) => artifact = Some(v),
                None => return usage(),
            },
            "--zoo" => match value("--zoo") {
                Some(v) => zoo = Some(v),
                None => return usage(),
            },
            "--default-model" => match value("--default-model") {
                Some(v) => default_model = Some(v),
                None => return usage(),
            },
            "--check" => check = true,
            "--addr" => match value("--addr") {
                Some(v) => config.addr = v,
                None => return usage(),
            },
            "--max-streams" => match value("--max-streams").and_then(|v| v.parse().ok()) {
                Some(v) => config.max_streams = v,
                None => return usage(),
            },
            "--tick-us" => match value("--tick-us").and_then(|v| v.parse().ok()) {
                Some(v) => config.tick = Duration::from_micros(v),
                None => return usage(),
            },
            "--idle-ms" => match value("--idle-ms").and_then(|v| v.parse::<u64>().ok()) {
                Some(0) => config.idle_timeout = None,
                Some(v) => config.idle_timeout = Some(Duration::from_millis(v)),
                None => return usage(),
            },
            "--max-pending" => match value("--max-pending").and_then(|v| v.parse().ok()) {
                Some(v) => config.max_pending_per_conn = v,
                None => return usage(),
            },
            "--shards" => match value("--shards").and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => config.shards = v,
                _ => return usage(),
            },
            "--metrics-addr" => match value("--metrics-addr") {
                Some(v) => config.metrics_addr = Some(v),
                None => return usage(),
            },
            "--drain-grace-ms" => match value("--drain-grace-ms").and_then(|v| v.parse().ok()) {
                Some(v) => config.drain_grace = Duration::from_millis(v),
                None => return usage(),
            },
            "--read-progress-ms" => {
                match value("--read-progress-ms").and_then(|v| v.parse::<u64>().ok()) {
                    Some(0) => config.read_progress_timeout = None,
                    Some(v) => config.read_progress_timeout = Some(Duration::from_millis(v)),
                    None => return usage(),
                }
            }
            _ => return usage(),
        }
    }
    let (source, server) = match (&artifact, &zoo) {
        (Some(_), Some(_)) => {
            eprintln!("pit-serve: --artifact and --zoo are mutually exclusive");
            return usage();
        }
        (None, None) => {
            eprintln!("pit-serve: --artifact or --zoo is required");
            return usage();
        }
        (Some(path), None) => {
            if default_model.is_some() {
                eprintln!("pit-serve: --default-model needs --zoo");
                return usage();
            }
            (
                path.clone(),
                Server::bind_artifact(std::path::Path::new(path), config),
            )
        }
        (None, Some(path)) => (
            path.clone(),
            Server::bind_zoo_with_default(
                std::path::Path::new(path),
                default_model.as_deref(),
                config,
            ),
        ),
    };
    let server = match server {
        Ok(server) => server,
        Err(e) => {
            eprintln!("pit-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if check {
        println!("{source}: ok");
        for (name, kind) in server.model_names() {
            let default = if name == server.default_model_name() {
                "  (default)"
            } else {
                ""
            };
            println!("  {name} [{kind}]{default}");
        }
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "pit-serve: listening on {} ({} models from {source}, default {})",
        server.local_addr(),
        server.model_names().len(),
        server.default_model_name(),
    );
    if let Some(metrics) = server.metrics_addr() {
        eprintln!("pit-serve: telemetry sidecar on http://{metrics}");
    }
    let stats = server.run();
    eprintln!("pit-serve: drained — {stats}");
    ExitCode::SUCCESS
}
