//! The `pit-serve` daemon binary.
//!
//! ```text
//! pit-serve --artifact MODEL.json [--addr 127.0.0.1:7878] [--max-streams N]
//!           [--tick-us N] [--idle-ms N] [--max-pending N] [--shards N]
//! ```
//!
//! Boots a serving daemon from a `pit-arch/2` model artifact (f32 or int8 —
//! the file's `kind` field decides the engine) and serves the frame
//! protocol of `pit_serve::protocol` until the process is terminated.
//! Export an artifact with `InferencePlan::to_artifact_string()` /
//! `QuantizedPlan::to_artifact_string()`, or see
//! `examples/serving_daemon.rs` for the full compile → quantize → write →
//! boot → stream loop.

use pit_serve::{Server, ServerConfig};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: pit-serve --artifact MODEL.json [--addr HOST:PORT] [--max-streams N]\n\
         \u{20}               [--tick-us N] [--idle-ms N] [--max-pending N] [--shards N]\n\
         \n\
         \u{20} --artifact     pit-arch/2 model artifact to serve (required)\n\
         \u{20} --addr         bind address (default 127.0.0.1:7878)\n\
         \u{20} --max-streams  concurrent stream cap (default 4096)\n\
         \u{20} --tick-us      wave-batching tick in microseconds (default 200)\n\
         \u{20} --idle-ms      evict streams idle this long; 0 = never (default 0)\n\
         \u{20} --max-pending  per-connection queued-timestep cap (default 4096)\n\
         \u{20} --shards       wave-batcher shard threads (default: CPU count, max 8)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut artifact: Option<String> = None;
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".into(),
        ..ServerConfig::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Option<String> {
            let v = it.next().cloned();
            if v.is_none() {
                eprintln!("pit-serve: {name} needs a value");
            }
            v
        };
        match arg.as_str() {
            "--artifact" => match value("--artifact") {
                Some(v) => artifact = Some(v),
                None => return usage(),
            },
            "--addr" => match value("--addr") {
                Some(v) => config.addr = v,
                None => return usage(),
            },
            "--max-streams" => match value("--max-streams").and_then(|v| v.parse().ok()) {
                Some(v) => config.max_streams = v,
                None => return usage(),
            },
            "--tick-us" => match value("--tick-us").and_then(|v| v.parse().ok()) {
                Some(v) => config.tick = Duration::from_micros(v),
                None => return usage(),
            },
            "--idle-ms" => match value("--idle-ms").and_then(|v| v.parse::<u64>().ok()) {
                Some(0) => config.idle_timeout = None,
                Some(v) => config.idle_timeout = Some(Duration::from_millis(v)),
                None => return usage(),
            },
            "--max-pending" => match value("--max-pending").and_then(|v| v.parse().ok()) {
                Some(v) => config.max_pending_per_conn = v,
                None => return usage(),
            },
            "--shards" => match value("--shards").and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => config.shards = v,
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(artifact) = artifact else {
        eprintln!("pit-serve: --artifact is required");
        return usage();
    };
    let server = match Server::bind_artifact(std::path::Path::new(&artifact), config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("pit-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "pit-serve: listening on {} (artifact {artifact})",
        server.local_addr()
    );
    let stats = server.run();
    eprintln!("pit-serve: drained — {stats}");
    ExitCode::SUCCESS
}
