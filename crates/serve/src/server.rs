//! The serving daemon: an event-driven TCP edge in front of N sharded
//! wave-batcher threads.
//!
//! ## Thread model
//!
//! * **Edge** (the thread that calls [`Server::run`]): owns the listener,
//!   *every* client socket (nonblocking) and the self-pipe, multiplexed
//!   through one `poll(2)` readiness loop — no per-connection threads, so
//!   4096 streams cost 4096 sockets, not 8192 stacks. The edge reassembles
//!   and decodes frames, answers PING/STATS/LOAD_MODEL in place, validates
//!   OPEN/PUSH (duplicates, server capacity, channel count, backpressure)
//!   and routes stream work to shards. Outbound frames accumulate in
//!   bounded per-connection outbufs drained with vectored writes whenever
//!   the socket accepts them.
//! * **Shards** ([`ServerConfig::shards`] wave-batcher threads): each owns
//!   one session-pool shard behind the [`pit_infer::StreamPool`] trait —
//!   one generic batcher for both precisions. A stream is pinned to
//!   `shard_of(conn, stream_id)` at OPEN; every wave flushes the shard's
//!   pending timesteps as one batched GEMM per layer. Shards write replies
//!   into the outbufs and ring the edge's self-pipe to flush them.
//!
//! ## Lifecycle
//!
//! Streams are opened per connection (OPEN), served until CLOSE, idle
//! eviction ([`ServerConfig::idle_timeout`]) or disconnect, and their pool
//! slots are recycled shard-side. [`ServerHandle::shutdown`] drains
//! gracefully: the edge sweeps already-arrived bytes, shards flush queued
//! timesteps into final emissions, every stream gets a CLOSED frame, and
//! the aggregated [`crate::StatsSnapshot`] is returned.

#[cfg(feature = "chaos")]
use crate::chaos::{FaultInjector, IoFault};
use crate::edge::{
    poll_fds, pollfd, OutBuf, PollFd, WakePipe, Waker, POLLERR, POLLHUP, POLLIN, POLLOUT,
};
use crate::http;
use crate::protocol::{
    decode_client, encode_server, ClientFrame, ErrorCode, FrameAssembler, FrameError, ServerFrame,
};
use crate::shard::{Shard, ShardEvent, ShardNote};
use crate::stats::{ModelStats, ShardStats, StatsSnapshot};
use crate::telemetry::{ModelMeta, ServeState, Telemetry, TraceKind};
use pit_infer::{
    InferencePlan, PlanArtifact, QuantizedPlan, QuantizedSessionPool, SessionPool, StreamPool,
    ZooManifest,
};
use pit_tensor::json::Json;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7878` (`:0` for an ephemeral port).
    pub addr: String,
    /// Server-wide cap on concurrently open streams.
    pub max_streams: usize,
    /// Backpressure cap: maximum queued-but-unflushed timesteps per
    /// connection; a PUSH that would exceed it is rejected with an ERROR
    /// frame.
    pub max_pending_per_conn: usize,
    /// Wave cadence: each shard runs at most one pool flush per tick, so
    /// timesteps arriving within a tick batch into the same waves.
    pub tick: Duration,
    /// Evict streams with no client activity for this long (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// Wave-batcher shards (threads), each owning one pool shard per
    /// registry model. Defaults to the machine's available parallelism,
    /// clamped to `1..=8`.
    pub shards: usize,
    /// Cap on registry models (boot-time plus LOAD_MODEL additions): each
    /// model costs one pool per shard, so the registry must not grow
    /// unboundedly at a client's request.
    pub max_models: usize,
    /// Address for the HTTP telemetry sidecar (`GET /metrics`, `/stats`,
    /// `/healthz`, `/trace`), e.g. `127.0.0.1:9901` (`:0` for ephemeral).
    /// `None` (the default) disables the sidecar; the binary's
    /// `--metrics-addr` flag sets it.
    pub metrics_addr: Option<String>,
    /// How long a graceful drain keeps serving reads and flushing replies
    /// (refusing new streams) before tearing the shards down. The default
    /// `Duration::ZERO` drains immediately; a nonzero grace gives load
    /// balancers scraping `/healthz` time to observe the draining state
    /// and route traffic away.
    pub drain_grace: Duration,
    /// Read-progress deadline at the edge: a connection is dropped when a
    /// partial frame sits unfinished this long (a slow-loris drip never
    /// completing a frame does not count as progress), or when it holds no
    /// streams and completes no frame for this long. Guards the resources
    /// [`ServerConfig::idle_timeout`] cannot reach — idle eviction frees
    /// *streams*, but a frameless connection pins a socket, an outbuf and
    /// an edge slot forever without ever opening one. `None` disables the
    /// deadline; defaults to 30 s.
    pub read_progress_timeout: Option<Duration>,
    /// Deterministic fault injection (chaos testing): forced
    /// `WouldBlock`/`Interrupted` edge reads, skipped flushes, delayed
    /// shard wakeups, wave-flush stalls, delayed eviction notes. `None`
    /// (the default) injects nothing; see [`crate::chaos::FaultPlan`].
    #[cfg(feature = "chaos")]
    pub faults: Option<Arc<FaultInjector>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            max_streams: 4096,
            max_pending_per_conn: 4096,
            tick: Duration::from_micros(200),
            idle_timeout: None,
            shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, 8),
            max_models: 32,
            metrics_addr: None,
            drain_grace: Duration::ZERO,
            read_progress_timeout: Some(Duration::from_secs(30)),
            #[cfg(feature = "chaos")]
            faults: None,
        }
    }
}

/// The model a server serves: an f32 plan or an int8 quantized plan. This
/// enum is the *only* precision seam left in the daemon — everything past
/// its pool constructor runs generically over [`pit_infer::StreamPool`].
#[derive(Clone)]
pub enum ServeEngine {
    /// Serve through [`SessionPool`].
    F32(Arc<InferencePlan>),
    /// Serve through [`QuantizedSessionPool`].
    I8(Arc<QuantizedPlan>),
}

impl ServeEngine {
    /// Wraps a loaded artifact.
    pub fn from_artifact(artifact: PlanArtifact) -> Self {
        match artifact {
            PlanArtifact::F32(plan) => ServeEngine::F32(Arc::new(plan)),
            PlanArtifact::I8(plan) => ServeEngine::I8(Arc::new(plan)),
        }
    }

    /// A fresh zero-stream pool shard over this engine.
    pub(crate) fn new_pool(&self) -> Box<dyn StreamPool> {
        match self {
            ServeEngine::F32(plan) => Box::new(SessionPool::new(Arc::clone(plan), 0)),
            ServeEngine::I8(plan) => Box::new(QuantizedSessionPool::new(Arc::clone(plan), 0)),
        }
    }

    pub(crate) fn kind(&self) -> &'static str {
        match self {
            ServeEngine::F32(_) => "f32",
            ServeEngine::I8(_) => "i8",
        }
    }

    pub(crate) fn name(&self) -> String {
        match self {
            ServeEngine::F32(plan) => plan.name().to_string(),
            ServeEngine::I8(plan) => plan.name().to_string(),
        }
    }

    pub(crate) fn input_channels(&self) -> usize {
        match self {
            ServeEngine::F32(plan) => plan.input_channels(),
            ServeEngine::I8(plan) => plan.input_channels(),
        }
    }

    pub(crate) fn output_dim(&self) -> usize {
        match self {
            ServeEngine::F32(plan) => plan.output_dim(),
            ServeEngine::I8(plan) => plan.output_dim(),
        }
    }

    pub(crate) fn receptive_field(&self) -> usize {
        match self {
            ServeEngine::F32(plan) => plan.receptive_field(),
            ServeEngine::I8(plan) => plan.receptive_field(),
        }
    }
}

/// One registry entry at the edge: the engine and the per-model counter
/// block every shard shares. The open-stream gauge lives in the counter
/// block ([`ModelStats::streams_open`]) — the edge is its only writer,
/// but the HTTP sidecar reads it from another thread.
struct ModelEntry {
    /// Registry name: the zoo-manifest name at boot, or the artifact's plan
    /// name for single-artifact boots and LOAD_MODEL additions.
    name: String,
    engine: ServeEngine,
    stats: Arc<ModelStats>,
}

pub(crate) type ConnId = u64;

/// Stable `(connection, stream id) → shard` pinning, decided at OPEN time
/// and recomputed identically for every later PUSH/CLOSE (splitmix-style
/// mix so consecutive ids spread evenly).
fn shard_of(conn: ConnId, stream_id: u32, shards: usize) -> usize {
    let mut x = conn
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(stream_id).wrapping_mul(0xD1B5_4A32_D192_ED03));
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    (x % shards as u64) as usize
}

/// One open stream in the edge's table: its registry model plus the
/// generation stamped at OPEN. The generation disambiguates stream-id
/// reincarnation: a shard's eviction note names the generation it evicted,
/// so a note that arrives after the client already CLOSEd *and re-OPENed*
/// the same id cannot release the new stream's budget slot (the
/// double-decrement race this replaced — see [`Edge::handle_note`]).
#[derive(Clone, Copy)]
struct OpenStream {
    model: usize,
    gen: u64,
}

/// Edge-side per-connection state. The socket lives here (and only here);
/// shards reach the connection exclusively through the shared `out`
/// buffer and the counters.
struct EdgeConn {
    stream: TcpStream,
    assembler: FrameAssembler,
    out: Arc<OutBuf>,
    pending: Arc<AtomicUsize>,
    v2: Arc<AtomicBool>,
    /// Client stream ids opened (and not yet closed) on this connection,
    /// each mapped to its registry model index and open generation — the
    /// edge's authoritative view for duplicate/capacity checks, per-stream
    /// channel checks and budget accounting.
    streams: HashMap<u32, OpenStream>,
    /// Set when the last vectored write left bytes queued: poll for
    /// `POLLOUT` instead of busy-retrying.
    want_write: bool,
    /// When the last complete frame arrived (accept time until then).
    last_frame: Instant,
    /// Set while the assembler holds a partial frame: when the *current*
    /// partial started waiting for completion. Byte drips do not refresh
    /// it — only finishing a frame does, so a slow-loris drip cannot
    /// dodge the read-progress deadline by trickling one byte per tick.
    partial_since: Option<Instant>,
}

/// How long the post-drain flush keeps trying to hand final emissions and
/// CLOSED frames to slow clients before giving up.
const DRAIN_FLUSH_TIMEOUT: Duration = Duration::from_secs(5);
/// Edge poll timeout: the latency floor for noticing a shutdown requested
/// without a waker (e.g. a signal handler flipping the flag).
const EDGE_POLL_MS: i32 = 100;

struct Edge {
    config: ServerConfig,
    /// The model registry, index-aligned with every shard's pool vector.
    models: Vec<ModelEntry>,
    /// Registry index a model-less OPEN gets.
    default_model: usize,
    conns: HashMap<ConnId, EdgeConn>,
    shard_txs: Vec<Sender<ShardEvent>>,
    shard_stats: Vec<Arc<ShardStats>>,
    /// The shared telemetry hub (edge counters, trace ring, histograms) —
    /// the same `Arc` the shards and the HTTP sidecar hold.
    telemetry: Arc<Telemetry>,
    /// Server-wide open-stream budget (edge-authoritative: incremented on
    /// OPEN, decremented — only ever through [`Edge::release_stream`] — on
    /// CLOSE, disconnect, and shard eviction notes).
    total_open: usize,
    draining: bool,
    next_conn: ConnId,
    /// Generation stamped on each OPEN (see [`OpenStream::gen`]).
    next_gen: u64,
    read_buf: Vec<u8>,
    dead: Vec<ConnId>,
}

impl Edge {
    /// Routes one event to a shard, charging the shard's inflight counter
    /// *before* the send so a STATS snapshot taken between the send and the
    /// shard's handling reads as unsettled. Every event the edge sends must
    /// go through here (or [`Edge::broadcast`]) — the shard decrements the
    /// charge per handled event.
    fn route(&self, shard: usize, event: ShardEvent) {
        self.shard_stats[shard]
            .inflight
            .fetch_add(1, Ordering::Relaxed);
        let _ = self.shard_txs[shard].send(event);
    }

    /// Sends one event to every shard (connection lifecycle, model loads).
    fn broadcast(&self, mut make: impl FnMut() -> ShardEvent) {
        for shard in 0..self.shard_txs.len() {
            self.route(shard, make());
        }
    }

    fn shard_index(&self, conn: ConnId, stream_id: u32) -> usize {
        shard_of(conn, stream_id, self.shard_txs.len())
    }

    fn send(&mut self, conn: ConnId, frame: &ServerFrame) {
        if let Some(state) = self.conns.get(&conn) {
            state.out.push(encode_server(frame));
        }
    }

    fn send_error(&mut self, conn: ConnId, code: ErrorCode, message: impl Into<String>) {
        self.telemetry
            .edge
            .frames_rejected
            .fetch_add(1, Ordering::Relaxed);
        self.telemetry.trace.record(
            TraceKind::Error,
            conn,
            None,
            None,
            None,
            code as u64,
            self.telemetry.now_us(),
        );
        self.send(
            conn,
            &ServerFrame::Error {
                code,
                message: message.into(),
            },
        );
    }

    fn accept_loop(&mut self, listener: &TcpListener) {
        // WouldBlock ends the loop: everything queued has been accepted.
        // Other transient failures (fd exhaustion, aborted handshakes) must
        // not end the daemon either; the listener stays in the poll set and
        // the next readiness retries.
        while let Ok((stream, _peer)) = listener.accept() {
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            self.next_conn += 1;
            let conn = self.next_conn;
            let out = Arc::new(OutBuf::new(
                Arc::clone(&self.telemetry.edge.replies_dropped),
                Arc::clone(&self.telemetry.edge.outbuf_hwm),
            ));
            let pending = Arc::new(AtomicUsize::new(0));
            let v2 = Arc::new(AtomicBool::new(false));
            self.broadcast(|| ShardEvent::Connected {
                conn,
                out: Arc::clone(&out),
                pending: Arc::clone(&pending),
                v2: Arc::clone(&v2),
            });
            self.telemetry
                .edge
                .connections_total
                .fetch_add(1, Ordering::Relaxed);
            self.telemetry
                .edge
                .connections_open
                .fetch_add(1, Ordering::Relaxed);
            self.conns.insert(
                conn,
                EdgeConn {
                    stream,
                    assembler: FrameAssembler::new(),
                    out,
                    pending,
                    v2,
                    streams: HashMap::new(),
                    want_write: false,
                    last_frame: Instant::now(),
                    partial_since: None,
                },
            );
        }
    }

    /// Reads everything currently available on `conn`, decoding and
    /// dispatching complete frames. Marks the connection dead on EOF,
    /// transport errors, or unrecoverable framing. Tracks read progress
    /// (frames completed, partials outstanding) for the
    /// [`ServerConfig::read_progress_timeout`] reaper.
    fn read_conn(&mut self, conn: ConnId) {
        let mut frames_done = false;
        loop {
            let Some(state) = self.conns.get_mut(&conn) else {
                return;
            };
            #[cfg(feature = "chaos")]
            if let Some(fault) = self.config.faults.as_ref().and_then(|f| f.pre_read()) {
                match fault {
                    // Level-triggered poll re-signals the unread bytes on
                    // the next iteration, exactly like a real EAGAIN.
                    IoFault::WouldBlock => break,
                    IoFault::Interrupted => continue,
                }
            }
            use std::io::Read;
            let n = match (&state.stream).read(&mut self.read_buf) {
                Ok(0) => {
                    self.drop_conn(conn, true);
                    return;
                }
                Ok(n) => n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.drop_conn(conn, false);
                    return;
                }
            };
            state.assembler.extend(&self.read_buf[..n]);
            loop {
                let Some(state) = self.conns.get_mut(&conn) else {
                    return;
                };
                match state.assembler.next_frame() {
                    Ok(Some(body)) => {
                        frames_done = true;
                        match decode_client(&body) {
                            Ok(frame) => self.dispatch(conn, frame),
                            Err(e) => {
                                let code = match e {
                                    FrameError::UnknownOpcode(_) => ErrorCode::UnknownOpcode,
                                    _ => ErrorCode::BadFrame,
                                };
                                self.send_error(conn, code, e.to_string());
                            }
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        // Framing can no longer be trusted (oversized
                        // length prefix): report best-effort and hang up.
                        self.send_error(conn, ErrorCode::BadFrame, e.to_string());
                        self.drop_conn(conn, false);
                        return;
                    }
                }
            }
        }
        let now = Instant::now();
        if let Some(state) = self.conns.get_mut(&conn) {
            if frames_done {
                state.last_frame = now;
            }
            let buffered = state.assembler.buffered_bytes() > 0;
            state.partial_since = match (buffered, frames_done, state.partial_since) {
                // Clean frame boundary: nothing is waiting.
                (false, ..) => None,
                // A fresh partial behind completed frames starts its own
                // clock now.
                (true, true, _) => Some(now),
                // The same partial is still incomplete: keep its original
                // start so byte drips never refresh the deadline.
                (true, false, since) => since.or(Some(now)),
            };
        }
    }

    fn dispatch(&mut self, conn: ConnId, frame: ClientFrame) {
        match frame {
            ClientFrame::Ping { token } => self.send(conn, &ServerFrame::Pong { token }),
            ClientFrame::Stats => {
                let snapshot = self.snapshot();
                self.send(
                    conn,
                    &ServerFrame::StatsJson {
                        json: snapshot.to_json().render(),
                    },
                );
            }
            ClientFrame::Open { stream_id, model } => self.handle_open(conn, stream_id, model),
            ClientFrame::ListModels => {
                let json = self.models_json();
                self.send(conn, &ServerFrame::ModelsJson { json });
            }
            ClientFrame::Trace { stream_id } => {
                let json = self.telemetry.trace_json(Some(conn), Some(stream_id));
                self.send(conn, &ServerFrame::TraceJson { json });
            }
            ClientFrame::Close { stream_id } => {
                let Some(state) = self.conns.get_mut(&conn) else {
                    return;
                };
                let Some(open) = state.streams.remove(&stream_id) else {
                    self.send_error(
                        conn,
                        ErrorCode::UnknownStream,
                        format!("stream {stream_id} is not open"),
                    );
                    return;
                };
                self.release_stream(open.model);
                self.route(
                    self.shard_index(conn, stream_id),
                    ShardEvent::Close { conn, stream_id },
                );
            }
            ClientFrame::Push {
                stream_id,
                channels,
                samples,
            } => {
                let count = samples.len() / channels.max(1) as usize;
                if !self.admit_push(conn, &[stream_id], channels, count) {
                    return;
                }
                self.route(
                    self.shard_index(conn, stream_id),
                    ShardEvent::Push {
                        conn,
                        stream_id,
                        count,
                        samples,
                    },
                );
            }
            ClientFrame::PushN {
                channels,
                entries,
                samples,
            } => self.handle_push_n(conn, channels, &entries, samples),
            ClientFrame::LoadModel { path } => self.handle_load_model(conn, path),
        }
    }

    /// Resolves an OPEN's optional model name against the registry.
    fn resolve_model(&self, model: &Option<String>) -> Option<usize> {
        match model {
            None => Some(self.default_model),
            Some(name) => self.models.iter().position(|m| &m.name == name),
        }
    }

    fn handle_open(&mut self, conn: ConnId, stream_id: u32, model: Option<String>) {
        if self.draining {
            self.send_error(
                conn,
                ErrorCode::ShuttingDown,
                "server is draining; no new streams",
            );
            return;
        }
        let Some(model) = self.resolve_model(&model) else {
            let name = model.unwrap_or_default();
            self.send_error(
                conn,
                ErrorCode::UnknownModel,
                format!("no model named '{name}' in the registry"),
            );
            return;
        };
        let Some(state) = self.conns.get_mut(&conn) else {
            return;
        };
        if state.streams.contains_key(&stream_id) {
            self.send_error(
                conn,
                ErrorCode::DuplicateStream,
                format!("stream {stream_id} is already open"),
            );
            return;
        }
        if self.total_open >= self.config.max_streams {
            self.send_error(
                conn,
                ErrorCode::ServerFull,
                format!("server is at its {}-stream limit", self.config.max_streams),
            );
            return;
        }
        let gen = self.next_gen;
        self.next_gen += 1;
        state.streams.insert(stream_id, OpenStream { model, gen });
        self.total_open += 1;
        self.models[model]
            .stats
            .streams_open
            .fetch_add(1, Ordering::Relaxed);
        // The shard opens the pool slot and replies Opened, keeping reply
        // order consistent with the emissions that follow.
        self.route(
            self.shard_index(conn, stream_id),
            ShardEvent::Open {
                conn,
                stream_id,
                model,
                gen,
            },
        );
    }

    /// Shared admission for PUSH and each PUSH_N: the channel count must
    /// match *each named stream's own model* (streams of differently-shaped
    /// models cannot share one frame), every stream must be open on this
    /// connection, and the connection must be under its pending-timestep
    /// cap. On success charges `count` to the pending counter.
    fn admit_push(
        &mut self,
        conn: ConnId,
        stream_ids: &[u32],
        channels: u32,
        count: usize,
    ) -> bool {
        let Some(state) = self.conns.get(&conn) else {
            return false;
        };
        let mut unknown = None;
        let mut mismatch = None;
        for sid in stream_ids {
            match state.streams.get(sid) {
                None => {
                    unknown = Some(*sid);
                    break;
                }
                Some(open) => {
                    let c_in = self.models[open.model].engine.input_channels();
                    if channels as usize != c_in {
                        mismatch = Some((*sid, open.model, c_in));
                        break;
                    }
                }
            }
        }
        if let Some(unknown) = unknown {
            self.send_error(
                conn,
                ErrorCode::UnknownStream,
                format!("stream {unknown} is not open"),
            );
            return false;
        }
        if let Some((sid, model, c_in)) = mismatch {
            let name = &self.models[model].name;
            let msg = format!(
                "PUSH carries {channels} channels, stream {sid}'s model '{name}' takes {c_in}"
            );
            self.send_error(conn, ErrorCode::BadFrame, msg);
            return false;
        }
        let Some(state) = self.conns.get(&conn) else {
            return false;
        };
        let conn_pending = state.pending.load(Ordering::Relaxed);
        if conn_pending + count > self.config.max_pending_per_conn {
            self.send_error(
                conn,
                ErrorCode::Backpressure,
                format!(
                    "connection has {conn_pending} timesteps pending, cap is {}",
                    self.config.max_pending_per_conn
                ),
            );
            return false;
        }
        state.pending.fetch_add(count, Ordering::Relaxed);
        true
    }

    fn handle_push_n(
        &mut self,
        conn: ConnId,
        channels: u32,
        entries: &[(u32, u32)],
        samples: Vec<f32>,
    ) {
        let stream_ids: Vec<u32> = entries.iter().map(|&(sid, _)| sid).collect();
        let total: usize = entries.iter().map(|&(_, count)| count as usize).sum();
        // Admission is all-or-nothing: one unknown stream or a cap overrun
        // rejects the whole frame, so a v2 batch never half-applies.
        if !self.admit_push(conn, &stream_ids, channels, total) {
            return;
        }
        if let Some(state) = self.conns.get(&conn) {
            state.v2.store(true, Ordering::Relaxed);
        }
        let c_in = channels as usize;
        let mut offset = 0usize;
        for &(stream_id, count) in entries {
            let count = count as usize;
            let end = offset + count * c_in;
            self.route(
                self.shard_index(conn, stream_id),
                ShardEvent::Push {
                    conn,
                    stream_id,
                    count,
                    samples: samples[offset..end].to_vec(),
                },
            );
            offset = end;
        }
    }

    /// LOAD_MODEL: add-or-replace-by-name. The artifact's plan name keys
    /// the registry — an unseen name *adds* the model beside the existing
    /// ones (other models keep serving their streams untouched); a known
    /// name atomically *replaces* that entry, refused while the named model
    /// itself has open streams so no live stream ever hops pools.
    fn handle_load_model(&mut self, conn: ConnId, path: String) {
        if self.draining {
            self.send_error(
                conn,
                ErrorCode::ShuttingDown,
                "server is draining; no model swaps",
            );
            return;
        }
        let artifact = match PlanArtifact::load(std::path::Path::new(&path)) {
            Ok(artifact) => artifact,
            Err(e) => {
                self.send_error(conn, ErrorCode::LoadFailed, e);
                return;
            }
        };
        let engine = ServeEngine::from_artifact(artifact);
        let name = engine.name();
        if let Some(model) = self.models.iter().position(|m| m.name == name) {
            let open = self.models[model]
                .stats
                .streams_open
                .load(Ordering::Relaxed);
            if open > 0 {
                self.send_error(
                    conn,
                    ErrorCode::StreamsActive,
                    format!("model '{name}' has {open} open streams; drain it before replacing"),
                );
                return;
            }
            self.models[model].engine = engine.clone();
            self.telemetry.swap_model_kind(model, engine.kind());
            self.broadcast(|| ShardEvent::Swap {
                model,
                engine: engine.clone(),
            });
        } else {
            if self.models.len() >= self.config.max_models {
                self.send_error(
                    conn,
                    ErrorCode::LoadFailed,
                    format!(
                        "registry is at its {}-model limit; replace an existing model instead",
                        self.config.max_models
                    ),
                );
                return;
            }
            let stats = Arc::new(ModelStats::default());
            self.broadcast(|| ShardEvent::AddModel {
                engine: engine.clone(),
                stats: Arc::clone(&stats),
            });
            self.telemetry.add_model(ModelMeta {
                name: name.clone(),
                kind: engine.kind(),
                stats: Arc::clone(&stats),
            });
            self.models.push(ModelEntry {
                name: name.clone(),
                engine,
                stats,
            });
        }
        self.send(conn, &ServerFrame::ModelLoaded { name });
    }

    /// The MODELS_JSON payload: one object per registry entry.
    fn models_json(&self) -> String {
        let n = |v: usize| Json::Num(v as f64);
        Json::Arr(
            self.models
                .iter()
                .enumerate()
                .map(|(i, m)| {
                    Json::Obj(vec![
                        ("name".into(), Json::Str(m.name.clone())),
                        ("kind".into(), Json::Str(m.engine.kind().into())),
                        ("input_channels".into(), n(m.engine.input_channels())),
                        ("output_dim".into(), n(m.engine.output_dim())),
                        ("receptive_field".into(), n(m.engine.receptive_field())),
                        (
                            "streams_open".into(),
                            n(m.stats.streams_open.load(Ordering::Relaxed) as usize),
                        ),
                        ("default".into(), Json::Bool(i == self.default_model)),
                    ])
                })
                .collect(),
        )
        .render()
    }

    /// The single decrement path of the open-stream budget: releases one
    /// slot of `total_open` and the model's gauge. Every closer (CLOSE,
    /// disconnect, eviction note) funnels through here, and the caller
    /// must have just removed the stream's table entry — holding the
    /// removal and the decrement together is what makes a double
    /// decrement structurally impossible.
    fn release_stream(&mut self, model: usize) {
        debug_assert!(self.total_open > 0, "stream budget release underflow");
        self.total_open = self.total_open.saturating_sub(1);
        let gauge = &self.models[model].stats.streams_open;
        debug_assert!(
            gauge.load(Ordering::Relaxed) > 0,
            "model {model} streams_open underflow"
        );
        let _ = gauge.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(1))
        });
    }

    /// Removes a connection: releases its stream budget and tells every
    /// shard to close its streams. The socket closes when the state drops.
    /// `clean` distinguishes a client EOF from a transport/framing failure
    /// in the lifecycle counters.
    fn drop_conn(&mut self, conn: ConnId, clean: bool) {
        let Some(state) = self.conns.remove(&conn) else {
            return;
        };
        self.telemetry
            .edge
            .connections_open
            .fetch_sub(1, Ordering::Relaxed);
        let ended = if clean {
            &self.telemetry.edge.connections_closed
        } else {
            &self.telemetry.edge.connections_errored
        };
        ended.fetch_add(1, Ordering::Relaxed);
        for (_, open) in state.streams {
            self.release_stream(open.model);
        }
        self.broadcast(|| ShardEvent::Disconnected { conn });
        self.dead.push(conn);
    }

    fn handle_note(&mut self, note: ShardNote) {
        match note {
            ShardNote::StreamClosed {
                conn,
                stream_id,
                gen,
            } => {
                // Only release the generation the shard actually evicted.
                // Matching on the id alone double-decremented when a CLOSE
                // raced the eviction *and* the client re-OPENed the same
                // id before this note arrived: the note then released the
                // new stream's slot and orphaned its table entry.
                let released = self.conns.get_mut(&conn).and_then(|state| {
                    match state.streams.get(&stream_id) {
                        Some(open) if open.gen == gen => {
                            state.streams.remove(&stream_id).map(|open| open.model)
                        }
                        // Already released (CLOSE/disconnect won the race)
                        // or a different generation lives under this id.
                        _ => None,
                    }
                });
                if let Some(model) = released {
                    self.release_stream(model);
                }
            }
        }
    }

    /// Enforces [`ServerConfig::read_progress_timeout`]: kills connections
    /// whose partial frame has not completed within the deadline (the
    /// slow-loris shape: a header then a stall, or a one-byte drip that
    /// never finishes a frame) and streamless connections that completed
    /// no frame within it. Connections with open streams and clean frame
    /// boundaries are the idle-eviction path's business, not ours.
    fn expire_stalled(&mut self) {
        let Some(timeout) = self.config.read_progress_timeout else {
            return;
        };
        let now = Instant::now();
        let stalled: Vec<ConnId> = self
            .conns
            .iter()
            .filter(|&(_, state)| {
                let partial_stalled = state
                    .partial_since
                    .is_some_and(|since| now.duration_since(since) >= timeout);
                let frameless_idle =
                    state.streams.is_empty() && now.duration_since(state.last_frame) >= timeout;
                partial_stalled || frameless_idle
            })
            .map(|(&conn, _)| conn)
            .collect();
        for conn in stalled {
            self.telemetry
                .edge
                .connections_expired
                .fetch_add(1, Ordering::Relaxed);
            self.drop_conn(conn, false);
        }
    }

    /// Drains every connection's outbuf as far as the sockets allow,
    /// dropping connections whose transport failed.
    fn flush_writes(&mut self) {
        let ids: Vec<ConnId> = self.conns.keys().copied().collect();
        for conn in ids {
            let Some(state) = self.conns.get_mut(&conn) else {
                continue;
            };
            if !state.want_write && !state.out.has_pending() {
                continue;
            }
            #[cfg(feature = "chaos")]
            if self
                .config
                .faults
                .as_ref()
                .is_some_and(|f| f.pre_write_skip())
            {
                // Pretend the socket is full: keep POLLOUT interest so the
                // next poll iteration retries, exactly like a real stall.
                state.want_write = true;
                continue;
            }
            match state.out.write_to(&mut &state.stream) {
                Ok(pending) => state.want_write = pending,
                Err(_) => self.drop_conn(conn, false),
            }
        }
    }

    fn snapshot(&self) -> StatsSnapshot {
        self.telemetry.snapshot()
    }
}

// ---------------------------------------------------------------------------
// Public server API
// ---------------------------------------------------------------------------

/// A bound (not yet running) serving daemon.
pub struct Server {
    listener: TcpListener,
    /// Boot-time registry: `(name, engine)` pairs, index order preserved.
    models: Vec<(String, ServeEngine)>,
    /// Per-model counter blocks, index-aligned with `models` and already
    /// installed in the telemetry hub.
    model_stats: Vec<Arc<ModelStats>>,
    /// Registry index of the default model.
    default_model: usize,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    wake_pipe: WakePipe,
    waker: Waker,
    addr: SocketAddr,
    telemetry: Arc<Telemetry>,
    /// The HTTP sidecar's bound listener, when `metrics_addr` was set.
    metrics: Option<(TcpListener, SocketAddr)>,
}

impl Server {
    /// Binds the configured address with a one-model registry named after
    /// the engine's plan. The server does not accept connections until
    /// [`Server::run`] or [`Server::spawn`].
    ///
    /// # Errors
    ///
    /// Returns the bind error, if any.
    pub fn bind(engine: ServeEngine, config: ServerConfig) -> std::io::Result<Self> {
        let name = engine.name();
        Self::bind_models(vec![(name.clone(), engine)], &name, config)
            .map_err(std::io::Error::other)
    }

    /// Binds with a multi-model registry. `models` become the registry in
    /// order; `default` names the entry a model-less OPEN gets.
    ///
    /// # Errors
    ///
    /// Returns a message when the registry is empty, a name repeats,
    /// `default` names no entry, the registry exceeds
    /// [`ServerConfig::max_models`], or a bind (the serving address or the
    /// telemetry sidecar's) fails.
    pub fn bind_models(
        models: Vec<(String, ServeEngine)>,
        default: &str,
        config: ServerConfig,
    ) -> Result<Self, String> {
        if models.is_empty() {
            return Err("model registry is empty".into());
        }
        if models.len() > config.max_models {
            return Err(format!(
                "{} models exceed the {}-model registry cap",
                models.len(),
                config.max_models
            ));
        }
        for (i, (name, _)) in models.iter().enumerate() {
            if models[..i].iter().any(|(other, _)| other == name) {
                return Err(format!("duplicate model name '{name}'"));
            }
        }
        let default_model = models
            .iter()
            .position(|(name, _)| name == default)
            .ok_or_else(|| format!("default model '{default}' is not in the registry"))?;
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let metrics = match &config.metrics_addr {
            None => None,
            Some(metrics_addr) => {
                let listener = TcpListener::bind(metrics_addr)
                    .map_err(|e| format!("cannot bind metrics sidecar {metrics_addr}: {e}"))?;
                let addr = listener.local_addr().map_err(|e| e.to_string())?;
                Some((listener, addr))
            }
        };
        let (wake_pipe, waker) = WakePipe::new().map_err(|e| e.to_string())?;
        // One counter block per registry model, shared by every shard, the
        // edge and the sidecar; the telemetry hub mirrors the registry.
        let model_stats: Vec<Arc<ModelStats>> = models
            .iter()
            .map(|_| Arc::new(ModelStats::default()))
            .collect();
        let telemetry = Arc::new(Telemetry::new());
        telemetry.install_models(
            models
                .iter()
                .zip(&model_stats)
                .map(|((name, engine), stats)| ModelMeta {
                    name: name.clone(),
                    kind: engine.kind(),
                    stats: Arc::clone(stats),
                })
                .collect(),
            default_model,
        );
        Ok(Self {
            listener,
            models,
            model_stats,
            default_model,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
            wake_pipe,
            waker,
            addr,
            telemetry,
            metrics,
        })
    }

    /// Loads a `pit-arch/2` artifact file and binds — the one-call boot
    /// path of the `pit-serve` binary.
    ///
    /// # Errors
    ///
    /// Returns a message on artifact or bind failures.
    pub fn bind_artifact(path: &std::path::Path, config: ServerConfig) -> Result<Self, String> {
        let artifact = PlanArtifact::load(path)?;
        let engine = ServeEngine::from_artifact(artifact);
        let name = engine.name();
        Self::bind_models(vec![(name.clone(), engine)], &name, config)
    }

    /// Loads a whole model-zoo library — a `pit-zoo/1` manifest plus its
    /// artifact files — and binds with every listed model registered under
    /// its manifest name, defaulting to the manifest's `default` entry.
    ///
    /// # Errors
    ///
    /// Returns a message on manifest, artifact or bind failures.
    pub fn bind_zoo(manifest_path: &std::path::Path, config: ServerConfig) -> Result<Self, String> {
        Self::bind_zoo_with_default(manifest_path, None, config)
    }

    /// [`Server::bind_zoo`] with the manifest's default entry overridden by
    /// `default` when given (the `pit-serve --default-model` flag).
    ///
    /// # Errors
    ///
    /// As [`Server::bind_zoo`], plus when `default` names no manifest entry.
    pub fn bind_zoo_with_default(
        manifest_path: &std::path::Path,
        default: Option<&str>,
        config: ServerConfig,
    ) -> Result<Self, String> {
        let (manifest, base) = ZooManifest::load(manifest_path)?;
        let mut models = Vec::with_capacity(manifest.models.len());
        for entry in &manifest.models {
            let path = entry.artifact_path(&base);
            let artifact =
                PlanArtifact::load(&path).map_err(|e| format!("model '{}': {e}", entry.name))?;
            models.push((entry.name.clone(), ServeEngine::from_artifact(artifact)));
        }
        Self::bind_models(models, default.unwrap_or(&manifest.default), config)
    }

    /// The actually-bound address (resolves `:0` to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The HTTP telemetry sidecar's bound address, when
    /// [`ServerConfig::metrics_addr`] was set (resolves `:0` to the
    /// ephemeral port).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().map(|(_, addr)| *addr)
    }

    /// `(name, kind)` of every registry model in registry order, the
    /// default entry first-class nowhere — pair with [`Server::default_model_name`].
    pub fn model_names(&self) -> Vec<(String, &'static str)> {
        self.models
            .iter()
            .map(|(name, engine)| (name.clone(), engine.kind()))
            .collect()
    }

    /// Name of the model a model-less OPEN selects.
    pub fn default_model_name(&self) -> &str {
        &self.models[self.default_model].0
    }

    /// Runs the daemon on a background thread, returning a handle for
    /// shutdown.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let metrics_addr = self.metrics_addr();
        let shutdown = Arc::clone(&self.shutdown);
        let waker = self.waker.clone();
        let thread = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            metrics_addr,
            shutdown,
            waker,
            thread,
        }
    }

    /// Runs the edge loop on the calling thread until shutdown is
    /// requested (via a handle created before with [`Server::spawn`] — when
    /// calling `run` directly the process typically serves until killed).
    /// Returns the final stats snapshot after a graceful drain.
    pub fn run(mut self) -> StatsSnapshot {
        let telemetry = Arc::clone(&self.telemetry);
        let shards = self.config.shards.max(1);
        let (note_tx, note_rx) = mpsc::channel::<ShardNote>();
        let shard_models: Vec<(ServeEngine, Arc<ModelStats>)> = self
            .models
            .iter()
            .zip(&self.model_stats)
            .map(|((_, engine), stats)| (engine.clone(), Arc::clone(stats)))
            .collect();
        let mut shard_txs = Vec::with_capacity(shards);
        let mut shard_stats = Vec::with_capacity(shards);
        let mut shard_threads = Vec::with_capacity(shards);
        for index in 0..shards {
            // Unbounded on purpose: the edge must never block. Depth stays
            // bounded anyway — PUSH events are capped by the per-connection
            // pending counters *before* forwarding, and control events are
            // a handful per connection.
            let (tx, rx) = mpsc::channel::<ShardEvent>();
            let stats = Arc::new(ShardStats::default());
            let shard = Shard::new(
                index,
                &shard_models,
                self.config.tick,
                self.config.idle_timeout,
                Arc::clone(&stats),
                Arc::clone(&telemetry),
                note_tx.clone(),
                self.waker.clone(),
            );
            #[cfg(feature = "chaos")]
            let shard = shard.with_faults(self.config.faults.clone());
            shard_txs.push(tx);
            shard_stats.push(stats);
            shard_threads.push(std::thread::spawn(move || shard.run(rx)));
        }
        drop(note_tx);
        telemetry.install_shards(shard_stats.clone());
        self.listener
            .set_nonblocking(true)
            .expect("listener nonblocking");

        // The HTTP sidecar gets its own thread and wake pipe: it serves
        // scrapes without ever touching the edge loop's latency.
        let mut sidecar: Option<(Arc<AtomicBool>, Waker, JoinHandle<()>)> = None;
        if let Some((metrics_listener, _)) = self.metrics.take() {
            let stop = Arc::new(AtomicBool::new(false));
            let (pipe, sidecar_waker) = WakePipe::new().expect("sidecar wake pipe");
            let sidecar_telemetry = Arc::clone(&telemetry);
            let sidecar_stop = Arc::clone(&stop);
            let thread = std::thread::spawn(move || {
                http::serve(metrics_listener, pipe, sidecar_stop, sidecar_telemetry);
            });
            sidecar = Some((stop, sidecar_waker, thread));
        }

        let models: Vec<ModelEntry> = self
            .models
            .into_iter()
            .zip(shard_models)
            .map(|((name, engine), (_, stats))| ModelEntry {
                name,
                engine,
                stats,
            })
            .collect();
        let mut edge = Edge {
            config: self.config,
            models,
            default_model: self.default_model,
            conns: HashMap::new(),
            shard_txs,
            shard_stats,
            telemetry: Arc::clone(&telemetry),
            total_open: 0,
            draining: false,
            next_conn: 0,
            next_gen: 0,
            read_buf: vec![0u8; 64 * 1024],
            dead: Vec::new(),
        };
        telemetry.set_state(ServeState::Serving);

        let mut fds: Vec<PollFd> = Vec::new();
        let mut ids: Vec<ConnId> = Vec::new();
        // When set, a graceful drain is underway: keep reading and
        // flushing (OPENs are already refused) until the grace deadline.
        let mut drain_deadline: Option<Instant> = None;
        // Shard notes held back by the chaos `note_delay` fault, due-time
        // ordered (the channel delivers in send order and the delay is
        // constant, so pushing back keeps the front oldest).
        #[cfg(feature = "chaos")]
        let mut delayed_notes: std::collections::VecDeque<(Instant, ShardNote)> =
            std::collections::VecDeque::new();
        loop {
            fds.clear();
            ids.clear();
            fds.push(pollfd(self.wake_pipe.fd(), POLLIN));
            fds.push(pollfd(self.listener.as_raw_fd(), POLLIN));
            for (&conn, state) in &edge.conns {
                let mut events = POLLIN;
                if state.want_write {
                    events |= POLLOUT;
                }
                fds.push(pollfd(state.stream.as_raw_fd(), events));
                ids.push(conn);
            }
            let poll_start = Instant::now();
            let _ = poll_fds(&mut fds, EDGE_POLL_MS);
            let dispatch_start = Instant::now();
            telemetry
                .edge_poll_ns
                .record(dispatch_start.duration_since(poll_start).as_nanos() as u64);
            self.wake_pipe.drain();
            #[cfg(feature = "chaos")]
            let note_delay = edge
                .config
                .faults
                .as_ref()
                .and_then(|f| f.plan().note_delay);
            while let Ok(note) = note_rx.try_recv() {
                #[cfg(feature = "chaos")]
                if let Some(delay) = note_delay {
                    delayed_notes.push_back((Instant::now() + delay, note));
                    continue;
                }
                edge.handle_note(note);
            }
            #[cfg(feature = "chaos")]
            while delayed_notes
                .front()
                .is_some_and(|&(due, _)| Instant::now() >= due)
            {
                let (_, note) = delayed_notes.pop_front().expect("front checked");
                edge.handle_note(note);
            }
            if self.shutdown.load(Ordering::SeqCst) && drain_deadline.is_none() {
                // Flip to draining *before* tearing anything down: load
                // balancers polling /healthz see 503 while reads are still
                // served, for as long as the configured grace.
                edge.draining = true;
                telemetry.set_state(ServeState::Draining);
                drain_deadline = Some(Instant::now() + edge.config.drain_grace);
            }
            if let Some(deadline) = drain_deadline {
                if Instant::now() >= deadline {
                    break;
                }
            }
            if fds[1].revents & (POLLIN | POLLERR) != 0 {
                edge.accept_loop(&self.listener);
            }
            for (i, &conn) in ids.iter().enumerate() {
                if fds[2 + i].revents & (POLLIN | POLLHUP | POLLERR) != 0 {
                    edge.read_conn(conn);
                }
            }
            edge.expire_stalled();
            edge.flush_writes();
            edge.dead.clear();
            telemetry
                .edge_dispatch_ns
                .record(dispatch_start.elapsed().as_nanos() as u64);
        }

        // Graceful drain. 0) Apply notes the chaos delay was still holding
        // so the final accounting matches what the shards reported.
        #[cfg(feature = "chaos")]
        for (_, note) in delayed_notes {
            edge.handle_note(note);
        }
        // 1) Sweep bytes clients already got onto the wire so queued
        // PUSHes become final emissions (new OPENs and swaps are refused
        // from here).
        edge.draining = true;
        telemetry.set_state(ServeState::Draining);
        let ids: Vec<ConnId> = edge.conns.keys().copied().collect();
        for conn in ids {
            edge.read_conn(conn);
        }
        // 2) Close the shard channels: each shard finishes its routed
        // events, flushes pending timesteps, writes final emissions and
        // CLOSED frames into the outbufs, and exits.
        drop(edge.shard_txs.drain(..).collect::<Vec<_>>());
        for thread in shard_threads {
            let _ = thread.join();
        }
        // Connections still open now outlived the drain.
        telemetry
            .edge
            .connections_drained
            .fetch_add(edge.conns.len() as u64, Ordering::Relaxed);
        let snapshot = edge.snapshot();
        // 3) Hand the buffered frames to the clients, within reason.
        let deadline = Instant::now() + DRAIN_FLUSH_TIMEOUT;
        loop {
            edge.flush_writes();
            let mut blocked: Vec<PollFd> = Vec::new();
            for state in edge.conns.values() {
                if state.out.has_pending() {
                    blocked.push(pollfd(state.stream.as_raw_fd(), POLLOUT));
                }
            }
            if blocked.is_empty() || Instant::now() >= deadline {
                break;
            }
            let _ = poll_fds(&mut blocked, 50);
        }
        if let Some((stop, sidecar_waker, thread)) = sidecar {
            stop.store(true, Ordering::SeqCst);
            sidecar_waker.wake();
            let _ = thread.join();
        }
        snapshot
    }
}

/// Handle to a running server (see [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shutdown: Arc<AtomicBool>,
    waker: Waker,
    thread: JoinHandle<StatsSnapshot>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The HTTP telemetry sidecar's bound address, when
    /// [`ServerConfig::metrics_addr`] was set.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Requests a graceful drain without waiting for it: the daemon flips
    /// to the draining state (refusing new streams, `/healthz` turns 503)
    /// and keeps serving reads for [`ServerConfig::drain_grace`] before
    /// tearing down. Call [`ServerHandle::shutdown`] to wait for the exit.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
    }

    /// Requests a graceful drain — queued timesteps are flushed, final
    /// emissions delivered, streams closed with a CLOSED frame — and waits
    /// for the daemon to exit. Returns the final stats.
    pub fn shutdown(self) -> StatsSnapshot {
        self.request_shutdown();
        self.thread.join().expect("server thread")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_pinning_is_stable_and_spreads() {
        // Stability: the same (conn, stream) always lands on the same shard.
        for conn in 0..50u64 {
            for sid in 0..50u32 {
                let a = shard_of(conn, sid, 4);
                assert_eq!(a, shard_of(conn, sid, 4));
                assert!(a < 4);
            }
        }
        // Spread: 1024 consecutive streams of one connection cover all
        // shards reasonably evenly (no shard under half its fair share).
        let mut counts = [0usize; 4];
        for sid in 0..1024u32 {
            counts[shard_of(7, sid, 4)] += 1;
        }
        for &c in &counts {
            assert!(c > 128, "unbalanced shard assignment: {counts:?}");
        }
    }
}
