//! The serving daemon: TCP front end, per-connection reader/writer threads
//! and the wave-batcher thread that multiplexes every live stream onto
//! batched session-pool waves.
//!
//! ## Thread model
//!
//! * **Accept loop** (the thread that calls [`Server::run`]): accepts
//!   connections and spawns one reader thread per connection.
//! * **Reader threads**: parse frames off the socket
//!   ([`crate::protocol::FrameReader`] — resilient to read timeouts
//!   mid-frame) and forward decoded frames as events. Readers never touch
//!   the pools.
//! * **Writer threads**: one per connection, draining a bounded queue of
//!   encoded reply frames. A slow client fills its own queue and starts
//!   dropping *its* replies ([`StatsSnapshot::replies_dropped`]) — it cannot
//!   stall the batcher or other clients.
//! * **Wave batcher** (one thread): owns the [`SessionPool`] /
//!   [`QuantizedSessionPool`] and every stream table. It collects pushed
//!   timesteps across all connections, runs one pool flush per tick — each
//!   layer of the plan executes as a single batched GEMM over every stream
//!   with pending input — and routes emissions back to their connections.
//!   Because everything funnels through this thread, the pools need no
//!   locks at all.
//!
//! ## Lifecycle
//!
//! Streams are opened per connection (OPEN), served until CLOSE, idle
//! eviction ([`ServerConfig::idle_timeout`]) or disconnect, and their pool
//! slots are recycled via `close_stream`. [`ServerHandle::shutdown`] drains
//! gracefully: queued timesteps are flushed, final emissions delivered,
//! every stream gets a CLOSED frame, and the final [`StatsSnapshot`] is
//! returned.

use crate::protocol::{
    decode_client, encode_server, ClientFrame, CloseReason, ErrorCode, FrameReader, ReadOutcome,
    ServerFrame,
};
use crate::stats::{ServerStats, StatsSnapshot};
use pit_infer::{InferencePlan, PlanArtifact, QuantizedPlan, QuantizedSessionPool, SessionPool};
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7878` (`:0` for an ephemeral port).
    pub addr: String,
    /// Server-wide cap on concurrently open streams.
    pub max_streams: usize,
    /// Backpressure cap: maximum queued-but-unflushed timesteps per
    /// connection; a PUSH that would exceed it is rejected with an ERROR
    /// frame.
    pub max_pending_per_conn: usize,
    /// Wave cadence: the batcher runs at most one pool flush per tick, so
    /// timesteps arriving within a tick batch into the same waves.
    pub tick: Duration,
    /// Evict streams with no client activity for this long (`None` = never).
    pub idle_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            max_streams: 256,
            max_pending_per_conn: 4096,
            tick: Duration::from_micros(200),
            idle_timeout: None,
        }
    }
}

/// The model a server serves: an f32 plan or an int8 quantized plan.
#[derive(Clone)]
pub enum ServeEngine {
    /// Serve through [`SessionPool`].
    F32(Arc<InferencePlan>),
    /// Serve through [`QuantizedSessionPool`].
    I8(Arc<QuantizedPlan>),
}

impl ServeEngine {
    /// Wraps a loaded artifact.
    pub fn from_artifact(artifact: PlanArtifact) -> Self {
        match artifact {
            PlanArtifact::F32(plan) => ServeEngine::F32(Arc::new(plan)),
            PlanArtifact::I8(plan) => ServeEngine::I8(Arc::new(plan)),
        }
    }
}

/// The batcher's pool, generic over precision. All stream ids below are
/// *pool* slot ids; the protocol's connection-scoped ids map onto them.
enum EnginePool {
    F32(SessionPool),
    I8(QuantizedSessionPool),
}

impl EnginePool {
    fn new(engine: &ServeEngine) -> Self {
        match engine {
            ServeEngine::F32(plan) => EnginePool::F32(SessionPool::new(Arc::clone(plan), 0)),
            ServeEngine::I8(plan) => EnginePool::I8(QuantizedSessionPool::new(Arc::clone(plan), 0)),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            EnginePool::F32(_) => "f32",
            EnginePool::I8(_) => "i8",
        }
    }

    fn name(&self) -> String {
        match self {
            EnginePool::F32(p) => p.plan().name().to_string(),
            EnginePool::I8(p) => p.plan().name().to_string(),
        }
    }

    fn input_channels(&self) -> usize {
        match self {
            EnginePool::F32(p) => p.plan().input_channels(),
            EnginePool::I8(p) => p.plan().input_channels(),
        }
    }

    fn output_dim(&self) -> usize {
        match self {
            EnginePool::F32(p) => p.plan().output_dim(),
            EnginePool::I8(p) => p.plan().output_dim(),
        }
    }

    fn open_stream(&mut self) -> usize {
        match self {
            EnginePool::F32(p) => p.open_stream(),
            EnginePool::I8(p) => p.open_stream(),
        }
    }

    fn close_stream(&mut self, sid: usize) {
        match self {
            EnginePool::F32(p) => p.close_stream(sid),
            EnginePool::I8(p) => p.close_stream(sid),
        }
    }

    fn push(&mut self, sid: usize, sample: &[f32]) {
        match self {
            EnginePool::F32(p) => p.push(sid, sample),
            EnginePool::I8(p) => p.push(sid, sample),
        }
    }

    fn flush(&mut self) -> Vec<(usize, Vec<f32>)> {
        match self {
            EnginePool::F32(p) => p.flush(),
            EnginePool::I8(p) => p.flush(),
        }
    }

    fn pending_steps(&self) -> usize {
        match self {
            EnginePool::F32(p) => p.pending_steps(),
            EnginePool::I8(p) => p.pending_steps(),
        }
    }

    fn pending_for(&self, sid: usize) -> usize {
        match self {
            EnginePool::F32(p) => p.pending_for(sid),
            EnginePool::I8(p) => p.pending_for(sid),
        }
    }
}

type ConnId = u64;

/// What reader threads hand the batcher.
enum Event {
    Connected {
        conn: ConnId,
        tx: SyncSender<Vec<u8>>,
    },
    Frame {
        conn: ConnId,
        frame: ClientFrame,
    },
    /// A frame body arrived but would not decode (the connection survives),
    /// or framing broke entirely (`fatal`, the reader hung up).
    Malformed {
        conn: ConnId,
        error: String,
        fatal: bool,
    },
    Disconnected {
        conn: ConnId,
    },
}

struct ConnState {
    tx: SyncSender<Vec<u8>>,
    /// Connection-scoped stream id → pool slot.
    streams: HashMap<u32, usize>,
    /// Queued-but-unflushed timesteps across this connection's streams —
    /// the backpressure cap compares against this counter (O(1) per PUSH)
    /// instead of re-summing per-stream queues on the batcher hot path.
    /// Maintained as: `+= count` on an accepted PUSH, reset to zero by every
    /// wave (a flush drains all queues), decremented when a stream is
    /// closed with samples still queued.
    pending: usize,
}

struct StreamInfo {
    conn: ConnId,
    client_id: u32,
    last_activity: Instant,
}

struct Batcher {
    pool: EnginePool,
    config: ServerConfig,
    conns: HashMap<ConnId, ConnState>,
    /// Pool slot → owner.
    streams: HashMap<usize, StreamInfo>,
    stats: ServerStats,
    /// Set once shutdown is requested: new OPEN/LOAD_MODEL work is refused
    /// with [`ErrorCode::ShuttingDown`] while the final flush happens.
    draining: bool,
}

impl Batcher {
    fn new(engine: &ServeEngine, config: ServerConfig) -> Self {
        Self {
            pool: EnginePool::new(engine),
            config,
            conns: HashMap::new(),
            streams: HashMap::new(),
            stats: ServerStats::default(),
            draining: false,
        }
    }

    /// Sends one reply frame to a connection, dropping it (with a counter)
    /// when the client's outbound queue is full and pruning the connection
    /// when its writer is gone.
    fn send(&mut self, conn: ConnId, frame: &ServerFrame) {
        let Some(state) = self.conns.get(&conn) else {
            return;
        };
        match state.tx.try_send(encode_server(frame)) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => self.stats.replies_dropped += 1,
            Err(TrySendError::Disconnected(_)) => {
                // Writer thread died (socket gone); the reader will follow
                // with a Disconnected event that cleans the stream table.
            }
        }
    }

    fn send_error(&mut self, conn: ConnId, code: ErrorCode, message: impl Into<String>) {
        self.stats.frames_rejected += 1;
        self.send(
            conn,
            &ServerFrame::Error {
                code,
                message: message.into(),
            },
        );
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Connected { conn, tx } => {
                self.stats.connections_total += 1;
                self.stats.connections_open += 1;
                self.conns.insert(
                    conn,
                    ConnState {
                        tx,
                        streams: HashMap::new(),
                        pending: 0,
                    },
                );
            }
            Event::Disconnected { conn } => {
                if let Some(state) = self.conns.remove(&conn) {
                    self.stats.connections_open -= 1;
                    for (_, sid) in state.streams {
                        self.pool.close_stream(sid);
                        self.streams.remove(&sid);
                    }
                }
            }
            Event::Malformed { conn, error, fatal } => {
                let code = if error.contains("opcode") {
                    ErrorCode::UnknownOpcode
                } else {
                    ErrorCode::BadFrame
                };
                self.send_error(conn, code, error);
                // A fatal framing error is followed by the reader's
                // Disconnected event; nothing more to do here.
                let _ = fatal;
            }
            Event::Frame { conn, frame } => self.handle_frame(conn, frame),
        }
    }

    fn handle_frame(&mut self, conn: ConnId, frame: ClientFrame) {
        match frame {
            ClientFrame::Open { stream_id } => self.handle_open(conn, stream_id),
            ClientFrame::Push {
                stream_id,
                channels,
                samples,
            } => self.handle_push(conn, stream_id, channels, samples),
            ClientFrame::Close { stream_id } => {
                let Some(sid) = self
                    .conns
                    .get_mut(&conn)
                    .and_then(|c| c.streams.remove(&stream_id))
                else {
                    self.send_error(
                        conn,
                        ErrorCode::UnknownStream,
                        format!("stream {stream_id} is not open"),
                    );
                    return;
                };
                // CLOSE is an orderly end, not an abort: timesteps the
                // stream already pushed must become final emissions, not
                // vanish depending on where the tick happened to land.
                if self.pool.pending_for(sid) > 0 {
                    self.run_wave();
                }
                self.pool.close_stream(sid);
                self.streams.remove(&sid);
                self.send(
                    conn,
                    &ServerFrame::Closed {
                        stream_id,
                        reason: CloseReason::ByClient,
                    },
                );
            }
            ClientFrame::Ping { token } => self.send(conn, &ServerFrame::Pong { token }),
            ClientFrame::Stats => {
                let snapshot = self.snapshot();
                self.send(
                    conn,
                    &ServerFrame::StatsJson {
                        json: snapshot.to_json().render(),
                    },
                );
            }
            ClientFrame::LoadModel { path } => self.handle_load_model(conn, path),
        }
    }

    fn handle_open(&mut self, conn: ConnId, stream_id: u32) {
        if self.draining {
            self.send_error(
                conn,
                ErrorCode::ShuttingDown,
                "server is draining; no new streams",
            );
            return;
        }
        let Some(state) = self.conns.get(&conn) else {
            return;
        };
        if state.streams.contains_key(&stream_id) {
            self.send_error(
                conn,
                ErrorCode::DuplicateStream,
                format!("stream {stream_id} is already open"),
            );
            return;
        }
        if self.streams.len() >= self.config.max_streams {
            self.send_error(
                conn,
                ErrorCode::ServerFull,
                format!("server is at its {}-stream limit", self.config.max_streams),
            );
            return;
        }
        let sid = self.pool.open_stream();
        self.streams.insert(
            sid,
            StreamInfo {
                conn,
                client_id: stream_id,
                last_activity: Instant::now(),
            },
        );
        if let Some(state) = self.conns.get_mut(&conn) {
            state.streams.insert(stream_id, sid);
        }
        self.stats.streams_opened += 1;
        self.send(conn, &ServerFrame::Opened { stream_id });
    }

    fn handle_push(&mut self, conn: ConnId, stream_id: u32, channels: u32, samples: Vec<f32>) {
        let c_in = self.pool.input_channels();
        if channels as usize != c_in {
            self.send_error(
                conn,
                ErrorCode::BadFrame,
                format!("PUSH carries {channels} channels, the served plan takes {c_in}"),
            );
            return;
        }
        let Some(&sid) = self
            .conns
            .get(&conn)
            .and_then(|c| c.streams.get(&stream_id))
        else {
            self.send_error(
                conn,
                ErrorCode::UnknownStream,
                format!("stream {stream_id} is not open"),
            );
            return;
        };
        let count = samples.len() / c_in;
        let conn_pending = self.conns.get(&conn).map(|c| c.pending).unwrap_or(0);
        if conn_pending + count > self.config.max_pending_per_conn {
            self.send_error(
                conn,
                ErrorCode::Backpressure,
                format!(
                    "connection has {conn_pending} timesteps pending, cap is {}",
                    self.config.max_pending_per_conn
                ),
            );
            return;
        }
        for sample in samples.chunks_exact(c_in) {
            self.pool.push(sid, sample);
        }
        if let Some(state) = self.conns.get_mut(&conn) {
            state.pending += count;
        }
        self.stats.timesteps_in += count as u64;
        if let Some(info) = self.streams.get_mut(&sid) {
            info.last_activity = Instant::now();
        }
    }

    fn handle_load_model(&mut self, conn: ConnId, path: String) {
        if self.draining {
            self.send_error(
                conn,
                ErrorCode::ShuttingDown,
                "server is draining; no model swaps",
            );
            return;
        }
        if !self.streams.is_empty() {
            self.send_error(
                conn,
                ErrorCode::StreamsActive,
                format!(
                    "{} streams are open; drain before swapping",
                    self.streams.len()
                ),
            );
            return;
        }
        match PlanArtifact::load(std::path::Path::new(&path)) {
            Ok(artifact) => {
                let engine = ServeEngine::from_artifact(artifact);
                self.pool = EnginePool::new(&engine);
                let name = self.pool.name();
                self.send(conn, &ServerFrame::ModelLoaded { name });
            }
            Err(e) => self.send_error(conn, ErrorCode::LoadFailed, e),
        }
    }

    /// One batched wave: flush every queued timestep through the pool (one
    /// GEMM per layer per wave) and route emissions back per stream.
    fn run_wave(&mut self) {
        let occupancy = self
            .streams
            .keys()
            .filter(|&&sid| self.pool.pending_for(sid) > 0)
            .count();
        if occupancy == 0 {
            return;
        }
        let t0 = Instant::now();
        let results = self.pool.flush();
        self.stats.record_wave(occupancy, t0.elapsed());
        // A flush drains every queue, so no connection has pending samples
        // any more.
        for state in self.conns.values_mut() {
            state.pending = 0;
        }
        if results.is_empty() {
            return;
        }
        // Coalesce each stream's chronological emissions into one EMIT.
        let dim = self.pool.output_dim();
        let mut per_stream: HashMap<usize, Vec<f32>> = HashMap::new();
        let mut order: Vec<usize> = Vec::new();
        for (sid, out) in results {
            let entry = per_stream.entry(sid).or_insert_with(|| {
                order.push(sid);
                Vec::new()
            });
            entry.extend_from_slice(&out);
        }
        // One EMIT frame must stay under the protocol's body bound: cap the
        // vectors per frame and split a stream's backlog across frames when
        // a burst emits more than that (order within the stream preserved).
        let max_vectors_per_frame =
            ((crate::protocol::MAX_FRAME_BODY - 64) / (4 * dim.max(1))).max(1);
        for sid in order {
            let outputs = per_stream.remove(&sid).expect("grouped above");
            let count = outputs.len() / dim.max(1);
            self.stats.emissions_out += count as u64;
            let Some(info) = self.streams.get(&sid) else {
                continue;
            };
            let (conn, stream_id) = (info.conn, info.client_id);
            for chunk in outputs.chunks(max_vectors_per_frame * dim.max(1)) {
                self.send(
                    conn,
                    &ServerFrame::Emit {
                        stream_id,
                        count: (chunk.len() / dim.max(1)) as u32,
                        dim: dim as u32,
                        outputs: chunk.to_vec(),
                    },
                );
            }
        }
    }

    fn evict_idle(&mut self) {
        let Some(timeout) = self.config.idle_timeout else {
            return;
        };
        let now = Instant::now();
        let stale: Vec<usize> = self
            .streams
            .iter()
            .filter(|(_, info)| now.duration_since(info.last_activity) > timeout)
            .map(|(&sid, _)| sid)
            .collect();
        for sid in stale {
            let Some(info) = self.streams.remove(&sid) else {
                continue;
            };
            let dropped = self.pool.pending_for(sid);
            self.pool.close_stream(sid);
            if let Some(conn) = self.conns.get_mut(&info.conn) {
                conn.streams.remove(&info.client_id);
                conn.pending = conn.pending.saturating_sub(dropped);
            }
            self.stats.streams_evicted += 1;
            self.send(
                info.conn,
                &ServerFrame::Closed {
                    stream_id: info.client_id,
                    reason: CloseReason::IdleEvicted,
                },
            );
        }
    }

    /// Graceful drain: flush whatever is queued, deliver the final
    /// emissions, tell every stream it is over, and let the writer threads
    /// flush their queues as their senders drop.
    fn drain(&mut self) {
        if self.pool.pending_steps() > 0 {
            self.run_wave();
        }
        let open: Vec<usize> = self.streams.keys().copied().collect();
        for sid in open {
            let Some(info) = self.streams.remove(&sid) else {
                continue;
            };
            self.pool.close_stream(sid);
            if let Some(conn) = self.conns.get_mut(&info.conn) {
                conn.streams.remove(&info.client_id);
            }
            self.send(
                info.conn,
                &ServerFrame::Closed {
                    stream_id: info.client_id,
                    reason: CloseReason::Drained,
                },
            );
        }
    }

    fn snapshot(&self) -> StatsSnapshot {
        self.stats.snapshot(
            &self.pool.name(),
            self.pool.kind(),
            self.streams.len() as u64,
        )
    }

    fn run(
        mut self,
        rx: Receiver<Event>,
        shutdown: Arc<AtomicBool>,
        drained: Arc<AtomicBool>,
    ) -> StatsSnapshot {
        let mut next_wave = Instant::now();
        loop {
            let timeout = if self.pool.pending_steps() > 0 {
                next_wave.saturating_duration_since(Instant::now())
            } else {
                // Idle: wake occasionally for eviction and shutdown checks.
                Duration::from_millis(5)
            };
            match rx.recv_timeout(timeout) {
                Ok(event) => {
                    self.handle(event);
                    while let Ok(event) = rx.try_recv() {
                        self.handle(event);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            if shutdown.load(Ordering::SeqCst) {
                // Absorb everything clients already got onto the wire —
                // decoded PUSH events still sitting in the channel (readers
                // keep their connections open until `drained` flips, so
                // these are complete, ordered frames) — before the final
                // flush, so "queued timesteps become final emissions" holds
                // for the event queue too, not just the pool queues. New
                // OPENs and model swaps among them are refused.
                self.draining = true;
                while let Ok(event) = rx.try_recv() {
                    self.handle(event);
                }
                self.drain();
                break;
            }
            if self.pool.pending_steps() > 0 && Instant::now() >= next_wave {
                self.run_wave();
                next_wave = Instant::now() + self.config.tick;
            }
            self.evict_idle();
        }
        // Readers hold their connections open until this flips, so the
        // drain above always runs with every stream still registered —
        // queued timesteps become final emissions instead of being dropped
        // by an early Disconnected.
        drained.store(true, Ordering::SeqCst);
        self.snapshot()
        // Dropping `self.conns` here releases every writer sender: writers
        // flush their remaining queued frames (final emissions, CLOSED) and
        // exit.
    }
}

// ---------------------------------------------------------------------------
// Connection plumbing
// ---------------------------------------------------------------------------

/// Encoded reply frames a writer queue holds before a slow client starts
/// losing replies.
const WRITER_QUEUE_FRAMES: usize = 1024;
/// Reader poll granularity: how stale the shutdown flag can look to a
/// blocked reader.
const READ_TIMEOUT: Duration = Duration::from_millis(20);
/// Cap on a blocking socket write: a client that stops reading while its
/// kernel buffer is full gets disconnected instead of pinning its writer
/// thread (and, through the join chain, graceful shutdown) forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);
/// Decoded-but-unprocessed events the batcher will buffer before readers
/// block (which in turn stalls the offending connections' TCP windows):
/// the memory backstop behind the per-connection pending caps.
const EVENT_QUEUE_DEPTH: usize = 1024;

fn reader_loop(
    conn: ConnId,
    stream: TcpStream,
    events: SyncSender<Event>,
    drained: Arc<AtomicBool>,
) {
    let (wtx, wrx) = mpsc::sync_channel::<Vec<u8>>(WRITER_QUEUE_FRAMES);
    let writer = stream.try_clone().ok().map(|mut out| {
        std::thread::spawn(move || {
            // A client that stops reading must error this thread out, not
            // park it forever with a full socket buffer.
            let _ = out.set_write_timeout(Some(WRITE_TIMEOUT));
            while let Ok(buf) = wrx.recv() {
                if out.write_all(&buf).is_err() {
                    break;
                }
            }
            let _ = out.flush();
        })
    });
    if writer.is_none() || events.send(Event::Connected { conn, tx: wtx }).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut reader = FrameReader::new(stream);
    // Exit on the *drained* flag, not the shutdown request: a reader that
    // hung up before the batcher's graceful drain would take its streams
    // (and their queued timesteps) down with it.
    while !drained.load(Ordering::SeqCst) {
        match reader.poll() {
            Ok(ReadOutcome::Frame(body)) => {
                let event = match decode_client(&body) {
                    Ok(frame) => Event::Frame { conn, frame },
                    Err(e) => Event::Malformed {
                        conn,
                        error: e.to_string(),
                        fatal: false,
                    },
                };
                if events.send(event).is_err() {
                    break;
                }
            }
            Ok(ReadOutcome::WouldBlock) => continue,
            Ok(ReadOutcome::Eof) => break,
            Err(e) => {
                // Framing is unrecoverable (oversized prefix or transport
                // error): report and hang up.
                let _ = events.send(Event::Malformed {
                    conn,
                    error: e.to_string(),
                    fatal: true,
                });
                break;
            }
        }
    }
    let _ = events.send(Event::Disconnected { conn });
    if let Some(writer) = writer {
        // The batcher drops this connection's sender when it processes the
        // Disconnected event (or exits), ending the writer after it flushed
        // everything still queued.
        let _ = writer.join();
    }
}

// ---------------------------------------------------------------------------
// Public server API
// ---------------------------------------------------------------------------

/// A bound (not yet running) serving daemon.
pub struct Server {
    listener: TcpListener,
    engine: ServeEngine,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    drained: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl Server {
    /// Binds the configured address and prepares the engine. The server
    /// does not accept connections until [`Server::run`] or
    /// [`Server::spawn`].
    ///
    /// # Errors
    ///
    /// Returns the bind error, if any.
    pub fn bind(engine: ServeEngine, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        Ok(Self {
            listener,
            engine,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
            drained: Arc::new(AtomicBool::new(false)),
            addr,
        })
    }

    /// Loads a `pit-arch/2` artifact file and binds — the one-call boot
    /// path of the `pit-serve` binary.
    ///
    /// # Errors
    ///
    /// Returns a message on artifact or bind failures.
    pub fn bind_artifact(path: &std::path::Path, config: ServerConfig) -> Result<Self, String> {
        let artifact = PlanArtifact::load(path)?;
        let addr = config.addr.clone();
        Self::bind(ServeEngine::from_artifact(artifact), config)
            .map_err(|e| format!("cannot bind {addr}: {e}"))
    }

    /// The actually-bound address (resolves `:0` to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Runs the daemon on a background thread, returning a handle for
    /// shutdown.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let shutdown = Arc::clone(&self.shutdown);
        let thread = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            shutdown,
            thread,
        }
    }

    /// Runs the accept loop on the calling thread until shutdown is
    /// requested (via a handle created before with [`Server::spawn`] — when
    /// calling `run` directly the process typically serves until killed).
    /// Returns the final stats snapshot after a graceful drain.
    pub fn run(self) -> StatsSnapshot {
        // Bounded: when the batcher falls behind, readers block here, their
        // sockets stop being read, and TCP pushes the backpressure all the
        // way to the offending clients — queued-event memory stays bounded
        // no matter how fast clients push.
        let (events_tx, events_rx) = mpsc::sync_channel::<Event>(EVENT_QUEUE_DEPTH);
        let batcher = Batcher::new(&self.engine, self.config.clone());
        let batcher_shutdown = Arc::clone(&self.shutdown);
        let batcher_drained = Arc::clone(&self.drained);
        let batcher_thread =
            std::thread::spawn(move || batcher.run(events_rx, batcher_shutdown, batcher_drained));
        self.listener
            .set_nonblocking(true)
            .expect("listener nonblocking");
        let mut readers: Vec<JoinHandle<()>> = Vec::new();
        let mut next_conn: ConnId = 0;
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // The accepted socket must block (with a timeout) even
                    // though the listener does not.
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_nodelay(true);
                    next_conn += 1;
                    let conn = next_conn;
                    let tx = events_tx.clone();
                    let flag = Arc::clone(&self.drained);
                    readers.push(std::thread::spawn(move || {
                        reader_loop(conn, stream, tx, flag);
                    }));
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => {
                    // Transient accept failures (fd exhaustion under load,
                    // aborted handshakes) must not silently end the accept
                    // loop with live connections still running — that would
                    // leave the daemon unreachable *and* undrainable. Back
                    // off and retry; a real shutdown still lands through
                    // the flag.
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
            // Reap finished reader threads so a long-lived daemon does not
            // accumulate handles across connection churn.
            readers.retain(|h| !h.is_finished());
        }
        drop(events_tx);
        for reader in readers {
            let _ = reader.join();
        }
        batcher_thread.join().expect("batcher thread")
    }
}

/// Handle to a running server (see [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: JoinHandle<StatsSnapshot>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful drain — queued timesteps are flushed, final
    /// emissions delivered, streams closed with a CLOSED frame — and waits
    /// for the daemon to exit. Returns the final stats.
    pub fn shutdown(self) -> StatsSnapshot {
        self.shutdown.store(true, Ordering::SeqCst);
        self.thread.join().expect("server thread")
    }
}
