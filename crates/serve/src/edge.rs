//! Event-driven edge plumbing: a hand-rolled `poll(2)` readiness loop, a
//! self-pipe wakeup, and bounded per-connection write buffers.
//!
//! `pit-serve` used to spend two OS threads per connection (reader +
//! writer); at thousands of streams that is thousands of stacks and a
//! scheduler meltdown. The redesigned edge owns *all* sockets from one
//! thread: nonblocking accepts and reads are driven by `poll(2)` readiness,
//! and outbound frames accumulate in per-connection [`OutBuf`]s drained
//! with vectored writes whenever the socket is writable. Shard threads
//! never touch a socket — they append encoded frames to the connection's
//! `OutBuf` and ring the [`Waker`] (the classic self-pipe trick) so the
//! edge's `poll` returns immediately instead of waiting out its timeout.
//!
//! No `libc` crate is vendored, so the syscalls the edge needs — `poll`,
//! `pipe2`, and `read`/`write`/`close` on the pipe — are declared directly
//! against the C ABI with the Linux constants they require, inside the one
//! audited `unsafe` submodule ([`sys`]); everything above it is safe code
//! over `std::net`.

use std::collections::VecDeque;
use std::io::{self, IoSlice, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// The raw syscall surface. The workspace denies `unsafe_code`; this
/// submodule is the serve crate's one audited exception (precedent: the
/// tensor worker pool's scoped executor).
mod sys {
    #![allow(unsafe_code)]

    use std::io;

    /// Readable data is available.
    pub const POLLIN: i16 = 0x001;
    /// Writing will not block.
    pub const POLLOUT: i16 = 0x004;
    /// Error condition (always polled, never requested).
    pub const POLLERR: i16 = 0x008;
    /// Peer hung up (always polled, never requested).
    pub const POLLHUP: i16 = 0x010;

    const O_NONBLOCK: i32 = 0x800;
    const O_CLOEXEC: i32 = 0x80000;

    /// One entry of a `poll(2)` set — layout fixed by the C ABI.
    #[repr(C)]
    #[derive(Clone, Copy, Debug)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
        fn pipe2(pipefd: *mut i32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    /// A `PollFd` requesting `events` on `fd`.
    pub fn pollfd(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// `poll(2)`: blocks up to `timeout_ms` (`-1` = forever) for readiness
    /// on `fds`, filling each entry's `revents`. Returns the number of
    /// ready descriptors; `EINTR` retries internally.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `fds` is a valid, exclusively borrowed slice of
            // `#[repr(C)]` pollfd structs; the kernel writes only within
            // `fds.len()` entries.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// `pipe2(O_NONBLOCK | O_CLOEXEC)`: returns `(read_fd, write_fd)`.
    pub fn nonblocking_pipe() -> io::Result<(i32, i32)> {
        let mut fds = [0i32; 2];
        // SAFETY: `fds` is a valid 2-element array the kernel fills.
        let rc = unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok((fds[0], fds[1]))
    }

    /// Writes one byte to `fd`, ignoring `EAGAIN` (pipe already full — the
    /// wakeup is already pending, which is all a waker needs).
    pub fn write_byte(fd: i32) {
        let byte = 1u8;
        // SAFETY: one readable byte, valid for the duration of the call.
        unsafe { write(fd, &byte, 1) };
    }

    /// Drains `fd` until it would block.
    pub fn drain_fd(fd: i32) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: `buf` is a valid writable buffer of the stated size.
            let n = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                return;
            }
        }
    }

    /// `close(2)`.
    pub fn close_fd(fd: i32) {
        // SAFETY: the callers below own `fd` and call this exactly once.
        unsafe { close(fd) };
    }
}

pub(crate) use sys::{poll_fds, pollfd, PollFd, POLLERR, POLLHUP, POLLIN, POLLOUT};

/// The write end of the self-pipe, shared by every shard thread. Writing a
/// byte makes the edge's `poll` return immediately. Closes the fd when the
/// last clone drops.
#[derive(Clone)]
pub(crate) struct Waker {
    inner: Arc<WakerFd>,
}

struct WakerFd {
    fd: i32,
}

impl Drop for WakerFd {
    fn drop(&mut self) {
        sys::close_fd(self.fd);
    }
}

impl Waker {
    /// Rings the edge: `poll` returns as soon as the pipe becomes readable.
    pub(crate) fn wake(&self) {
        sys::write_byte(self.inner.fd);
    }
}

/// The read end of the self-pipe, owned by the edge thread. Appears in the
/// edge's poll set; [`WakePipe::drain`] consumes pending wakeups so the
/// pipe never fills.
pub(crate) struct WakePipe {
    read_fd: i32,
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        sys::close_fd(self.read_fd);
    }
}

impl WakePipe {
    /// Creates the pipe and hands back `(read end, write end)`.
    pub(crate) fn new() -> io::Result<(WakePipe, Waker)> {
        let (read_fd, write_fd) = sys::nonblocking_pipe()?;
        Ok((
            WakePipe { read_fd },
            Waker {
                inner: Arc::new(WakerFd { fd: write_fd }),
            },
        ))
    }

    /// The fd to put in the poll set (request [`POLLIN`]).
    pub(crate) fn fd(&self) -> i32 {
        self.read_fd
    }

    /// Consumes all pending wakeup bytes.
    pub(crate) fn drain(&self) {
        sys::drain_fd(self.read_fd);
    }
}

/// Cap on bytes queued toward one connection before further reply frames
/// are dropped (and counted). A slow or stalled reader cannot make the
/// daemon buffer unboundedly.
pub(crate) const OUTBUF_CAP_BYTES: usize = 4 << 20;

/// Most frames submitted to one vectored write.
const MAX_IOVECS: usize = 64;

/// A bounded outbound frame queue for one connection, shared between the
/// edge thread (which drains it into the socket) and shard threads (which
/// append wave emissions). The mutex is held only to swap buffers in and
/// out — never across a syscall.
pub(crate) struct OutBuf {
    inner: Mutex<OutBufInner>,
    /// Daemon-wide dropped-reply counter (see [`crate::StatsSnapshot`]).
    dropped: Arc<AtomicU64>,
    /// Daemon-wide high-water mark of bytes queued toward any single
    /// connection — a leading indicator of slow consumers before drops.
    hwm: Arc<AtomicU64>,
}

struct OutBufInner {
    /// Encoded frames, oldest first. `offset` bytes of the front frame have
    /// already been written (a partial vectored write stops mid-frame).
    frames: VecDeque<Vec<u8>>,
    offset: usize,
    queued_bytes: usize,
}

impl OutBuf {
    pub(crate) fn new(dropped: Arc<AtomicU64>, hwm: Arc<AtomicU64>) -> Self {
        Self {
            inner: Mutex::new(OutBufInner {
                frames: VecDeque::new(),
                offset: 0,
                queued_bytes: 0,
            }),
            dropped,
            hwm,
        }
    }

    /// Locks the queue, shrugging off poisoning. A panic on a thread
    /// holding this lock (a shard dying mid-append) must cost that one
    /// connection at worst — `.expect()` here used to cascade the poison
    /// into the edge loop and kill every connection on the daemon. The
    /// invariants (`queued_bytes` matches `frames`, `offset` within the
    /// front frame) hold at every await-free step, so the state behind a
    /// poisoned mutex is still consistent.
    fn lock(&self) -> MutexGuard<'_, OutBufInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Queues one encoded frame; drops it (and counts the drop) when the
    /// connection is already [`OUTBUF_CAP_BYTES`] behind. Returns whether
    /// the frame was queued.
    pub(crate) fn push(&self, frame: Vec<u8>) -> bool {
        let mut inner = self.lock();
        if inner.queued_bytes + frame.len() > OUTBUF_CAP_BYTES {
            drop(inner);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        inner.queued_bytes += frame.len();
        inner.frames.push_back(frame);
        let queued = inner.queued_bytes as u64;
        drop(inner);
        self.hwm.fetch_max(queued, Ordering::Relaxed);
        true
    }

    /// Whether any bytes remain to be written.
    pub(crate) fn has_pending(&self) -> bool {
        !self.lock().frames.is_empty()
    }

    /// Drains as much as the socket will take with vectored writes.
    ///
    /// Returns `Ok(true)` when bytes remain (the edge should keep
    /// [`POLLOUT`] interest), `Ok(false)` when the queue emptied.
    ///
    /// # Errors
    ///
    /// Propagates fatal transport errors; `WouldBlock` is not an error —
    /// it simply leaves the remainder queued.
    pub(crate) fn write_to(&self, stream: &mut &TcpStream) -> io::Result<bool> {
        loop {
            // Snapshot up to MAX_IOVECS frames without holding the lock
            // across the syscall.
            let (bufs, offset): (Vec<Vec<u8>>, usize) = {
                let inner = self.lock();
                if inner.frames.is_empty() {
                    return Ok(false);
                }
                (
                    inner.frames.iter().take(MAX_IOVECS).cloned().collect(),
                    inner.offset,
                )
            };
            let mut slices: Vec<IoSlice> = Vec::with_capacity(bufs.len());
            slices.push(IoSlice::new(&bufs[0][offset..]));
            for buf in &bufs[1..] {
                slices.push(IoSlice::new(buf));
            }
            let written = match stream.write_vectored(&slices) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(true),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            let mut inner = self.lock();
            inner.queued_bytes -= written;
            let mut remaining = written;
            while remaining > 0 {
                let front_left = inner.frames[0].len() - inner.offset;
                if remaining >= front_left {
                    remaining -= front_left;
                    inner.offset = 0;
                    inner.frames.pop_front();
                } else {
                    inner.offset += remaining;
                    remaining = 0;
                }
            }
            if inner.frames.is_empty() {
                return Ok(false);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn waker_makes_poll_return_immediately() {
        let (pipe, waker) = WakePipe::new().unwrap();
        // Nothing pending: poll times out with zero ready fds.
        let mut set = [pollfd(pipe.fd(), POLLIN)];
        assert_eq!(poll_fds(&mut set, 0).unwrap(), 0);
        waker.wake();
        let mut set = [pollfd(pipe.fd(), POLLIN)];
        // Generous timeout, but the wake means it returns at once.
        assert_eq!(poll_fds(&mut set, 5_000).unwrap(), 1);
        assert_ne!(set[0].revents & POLLIN, 0);
        pipe.drain();
        let mut set = [pollfd(pipe.fd(), POLLIN)];
        assert_eq!(poll_fds(&mut set, 0).unwrap(), 0, "drain consumed the byte");
        // Waking twice coalesces; a clone wakes the same pipe.
        waker.clone().wake();
        waker.wake();
        let mut set = [pollfd(pipe.fd(), POLLIN)];
        assert_eq!(poll_fds(&mut set, 0).unwrap(), 1);
    }

    #[test]
    fn outbuf_writes_frames_in_order_and_caps_depth() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let dropped = Arc::new(AtomicU64::new(0));
        let hwm = Arc::new(AtomicU64::new(0));
        let out = OutBuf::new(Arc::clone(&dropped), Arc::clone(&hwm));
        assert!(out.push(vec![1, 2, 3]));
        assert!(out.push(vec![4, 5]));
        assert!(out.has_pending());
        // A frame that would blow the cap is dropped and counted; the
        // high-water mark tracks the deepest the queue ever got.
        assert!(!out.push(vec![0; OUTBUF_CAP_BYTES]));
        assert_eq!(dropped.load(Ordering::Relaxed), 1);
        assert_eq!(hwm.load(Ordering::Relaxed), 5);

        while out.write_to(&mut &server).unwrap() {}
        assert!(!out.has_pending());
        let mut got = [0u8; 5];
        let mut reader = client;
        reader.read_exact(&mut got).unwrap();
        assert_eq!(got, [1, 2, 3, 4, 5]);
    }

    /// Regression: a panic while holding the outbuf mutex used to poison
    /// it, and the `.expect("outbuf lock")` calls then propagated that one
    /// thread's death into the edge loop — one bad shard killed every
    /// connection. The queue must stay fully usable after poisoning.
    #[test]
    fn outbuf_survives_mutex_poisoning() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let out = Arc::new(OutBuf::new(
            Arc::new(AtomicU64::new(0)),
            Arc::new(AtomicU64::new(0)),
        ));
        assert!(out.push(vec![9, 9]));
        // Poison the mutex: panic on another thread while holding it.
        let poisoner = Arc::clone(&out);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("poison the outbuf lock");
        })
        .join();
        assert!(out.inner.lock().is_err(), "mutex should be poisoned");

        // Every entry point still works over the poisoned lock.
        assert!(out.has_pending());
        assert!(out.push(vec![7]));
        while out.write_to(&mut &server).unwrap() {}
        assert!(!out.has_pending());
        let mut got = [0u8; 3];
        let mut reader = client;
        reader.read_exact(&mut got).unwrap();
        assert_eq!(got, [9, 9, 7]);
    }
}
