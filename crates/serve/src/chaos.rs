//! Fault injection and a misbehaving-client toolkit for hardening
//! `pit-serve` against adversarial schedules.
//!
//! Production edges die in ways well-behaved integration tests never
//! exercise: clients that drip one byte per interval (slow loris), peers
//! that send a frame header and stall, sockets reset mid-batch, readers
//! that never drain their emissions. This module packages both halves of a
//! chaos harness:
//!
//! * **[`FaultPlan`] / [`FaultInjector`]** — a deterministic fault seam
//!   *inside* the daemon, wired through [`crate::ServerConfig::faults`]:
//!   forced `WouldBlock`/`Interrupted` outcomes on edge reads, skipped
//!   write flushes (forcing the `POLLOUT` re-arm path), delayed shard
//!   wakeups, artificial wave-flush stalls, and delayed shard→edge
//!   eviction notes. Every fault fires on a fixed counter cadence, so a
//!   failing schedule replays exactly.
//! * **Misbehaving clients** — helpers the chaos suite drives against a
//!   live daemon from the outside: [`drip`] (slow-loris byte writer),
//!   [`partial_frame_header`] (header-then-stall), [`rst_close`] (abort
//!   with an RST instead of a FIN), and [`http_get`] (a minimal probe for
//!   the telemetry sidecar's `/healthz` and `/trace`).
//! * **[`ChaosRng`]** — a tiny seeded splitmix64 generator so randomized
//!   interleavings stay reproducible from a committed seed.
//!
//! The module (and the `ServerConfig::faults` seam) is compiled behind the
//! `chaos` cargo feature, which is on by default; `--no-default-features`
//! builds a daemon with no injection points at all. With the feature on
//! but `faults: None` (the default config), the seam costs one `Option`
//! check next to a syscall.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The raw syscall surface the toolkit needs beyond `std::net`:
/// `SO_LINGER` with a zero timeout turns `close(2)` into an abortive RST —
/// exactly what a crashing client or a NAT timeout looks like from the
/// daemon's side. Same audited-exception precedent as `edge::sys`.
mod sys {
    #![allow(unsafe_code)]

    use std::io;
    use std::net::TcpStream;
    use std::os::unix::io::AsRawFd;

    const SOL_SOCKET: i32 = 1;
    const SO_LINGER: i32 = 13;

    /// `struct linger` — layout fixed by the C ABI.
    #[repr(C)]
    struct Linger {
        l_onoff: i32,
        l_linger: i32,
    }

    extern "C" {
        fn setsockopt(
            sockfd: i32,
            level: i32,
            optname: i32,
            optval: *const Linger,
            optlen: u32,
        ) -> i32;
    }

    /// Arms an abortive close: dropping the stream now sends RST, not FIN.
    pub fn set_linger_zero(stream: &TcpStream) -> io::Result<()> {
        let opt = Linger {
            l_onoff: 1,
            l_linger: 0,
        };
        // SAFETY: `opt` is a valid `#[repr(C)]` linger struct and the
        // length passed matches its size; the fd is owned by `stream`.
        let rc = unsafe {
            setsockopt(
                stream.as_raw_fd(),
                SOL_SOCKET,
                SO_LINGER,
                &opt,
                std::mem::size_of::<Linger>() as u32,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Deterministic server-side fault seam
// ---------------------------------------------------------------------------

/// Which fake I/O outcome the [`FaultInjector`] injects before an edge
/// read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// Pretend the socket returned `EWOULDBLOCK`: the edge stops reading
    /// this connection and comes back on the next readiness cycle.
    WouldBlock,
    /// Pretend the syscall was interrupted: the edge retries immediately.
    Interrupted,
}

/// What to inject and how often. All cadences are counter-based ("every
/// Nth call"), so a given plan produces the same schedule every run; `0`
/// disables that fault class.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Every Nth edge read on a client socket returns a fake `WouldBlock`
    /// *instead of* reading — bytes stay in the kernel buffer and the
    /// frame assembler must resume across poll iterations.
    pub read_wouldblock_every: u64,
    /// Every Nth edge read returns a fake `Interrupted` first (the edge
    /// retries), exercising the EINTR path without signals.
    pub read_interrupt_every: u64,
    /// Every Nth outbuf flush opportunity is skipped as if the socket were
    /// full, forcing the edge through its `POLLOUT` re-arm path.
    pub write_skip_every: u64,
    /// Extra delay a shard sleeps after waking up with events, before
    /// handling them — widens every edge/shard race window.
    pub shard_wakeup_delay: Option<Duration>,
    /// Artificial stall at the top of every wave flush (covers the
    /// flush-before-close path too).
    pub wave_stall: Option<Duration>,
    /// Holds each shard→edge note (idle-eviction stream releases) for this
    /// long before the edge applies it — the window in which a CLOSE, a
    /// reopen, or a disconnect can race a stale eviction.
    pub note_delay: Option<Duration>,
}

impl FaultPlan {
    /// Wraps the plan in an injector ready for
    /// [`crate::ServerConfig::faults`].
    pub fn build(self) -> Arc<FaultInjector> {
        Arc::new(FaultInjector {
            plan: self,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        })
    }
}

/// A [`FaultPlan`] plus the call counters that drive its cadence. Shared
/// (`Arc`) between the edge thread and every shard; all state is atomic.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    reads: AtomicU64,
    writes: AtomicU64,
    injected: AtomicU64,
}

impl FaultInjector {
    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total faults injected so far — tests assert this is nonzero so a
    /// scenario that silently stopped injecting cannot pass vacuously.
    pub fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Called by the edge before each client-socket read.
    pub(crate) fn pre_read(&self) -> Option<IoFault> {
        let n = self.reads.fetch_add(1, Ordering::Relaxed) + 1;
        let every = |cadence: u64| cadence > 0 && n.is_multiple_of(cadence);
        // Interrupt cadence wins ties; both classes share the counter so
        // the merged schedule is still periodic and deterministic.
        if every(self.plan.read_interrupt_every) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Some(IoFault::Interrupted);
        }
        if every(self.plan.read_wouldblock_every) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Some(IoFault::WouldBlock);
        }
        None
    }

    /// Called by the edge before flushing one connection's outbuf; `true`
    /// means "pretend the socket is full this round".
    pub(crate) fn pre_write_skip(&self) -> bool {
        if self.plan.write_skip_every == 0 {
            return false;
        }
        let n = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(self.plan.write_skip_every) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Sleeps out the configured shard wakeup delay, if any.
    pub(crate) fn shard_wakeup(&self) {
        if let Some(delay) = self.plan.shard_wakeup_delay {
            self.injected.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(delay);
        }
    }

    /// Sleeps out the configured wave-flush stall, if any.
    pub(crate) fn wave_stall(&self) {
        if let Some(stall) = self.plan.wave_stall {
            self.injected.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(stall);
        }
    }
}

// ---------------------------------------------------------------------------
// Seeded randomness for reproducible interleavings
// ---------------------------------------------------------------------------

/// A splitmix64 generator: 8 bytes of state, full-period, good enough to
/// schedule chaos interleavings — and trivially reproducible from the seed
/// committed next to the scenario.
#[derive(Debug, Clone)]
pub struct ChaosRng(u64);

impl ChaosRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        ChaosRng(seed)
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// A jitter of up to `max_us` microseconds.
    pub fn jitter(&mut self, max_us: u64) -> Duration {
        Duration::from_micros(self.below(max_us.max(1)))
    }
}

// ---------------------------------------------------------------------------
// Misbehaving clients
// ---------------------------------------------------------------------------

/// Slow-loris writer: sends `bytes` one at a time with `pause` between
/// them. Returns early with the transport error if the daemon hangs up
/// mid-drip (for a reaped connection that is the *expected* outcome).
///
/// # Errors
///
/// The write error that ended the drip, if any.
pub fn drip(stream: &mut TcpStream, bytes: &[u8], pause: Duration) -> io::Result<()> {
    for byte in bytes {
        stream.write_all(std::slice::from_ref(byte))?;
        stream.flush()?;
        std::thread::sleep(pause);
    }
    Ok(())
}

/// Connects and sends only the first `sent` bytes of a frame's 4-byte
/// length prefix, then returns the stream for the caller to hold open —
/// the canonical header-then-stall client. `sent` is clamped to `1..=3`
/// so the frame can never complete.
///
/// # Errors
///
/// Connect or write errors.
pub fn partial_frame_header(addr: SocketAddr, sent: usize) -> io::Result<TcpStream> {
    let mut stream = TcpStream::connect(addr)?;
    let prefix = 64u32.to_le_bytes();
    stream.write_all(&prefix[..sent.clamp(1, 3)])?;
    stream.flush()?;
    Ok(stream)
}

/// Aborts the connection with a TCP RST (`SO_LINGER` zero + close) instead
/// of an orderly FIN — what the daemon sees when a client crashes or a
/// middlebox drops the flow. Best-effort: if arming linger fails the
/// stream still drops (plain FIN).
pub fn rst_close(stream: TcpStream) {
    let _ = sys::set_linger_zero(&stream);
    drop(stream);
}

/// Whether the peer has hung up on `stream`: a zero-byte read after
/// shifting to nonblocking mode. Restores blocking mode before returning.
///
/// # Errors
///
/// Socket-option errors (the probe read itself never errors the result —
/// `WouldBlock` means "still open", EOF/reset mean "closed").
pub fn peer_hung_up(stream: &TcpStream) -> io::Result<bool> {
    stream.set_nonblocking(true)?;
    let mut buf = [0u8; 16];
    let gone = match (&*stream).read(&mut buf) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
        Err(_) => true,
    };
    stream.set_nonblocking(false)?;
    Ok(gone)
}

/// Minimal blocking HTTP/1.1 GET against the telemetry sidecar. Returns
/// `(status, body)`.
///
/// # Errors
///
/// Transport errors, or `InvalidData` when the response has no parsable
/// status line.
pub fn http_get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad response: {response}"),
            )
        })?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_cadences_are_deterministic_and_counted() {
        let injector = FaultPlan {
            read_wouldblock_every: 3,
            read_interrupt_every: 5,
            write_skip_every: 2,
            ..FaultPlan::default()
        }
        .build();
        let reads: Vec<Option<IoFault>> = (0..15).map(|_| injector.pre_read()).collect();
        // Calls 3,6,9,12 → WouldBlock; 5,10,15 → Interrupted (ties: 15 is
        // both a multiple of 3 and 5 — interrupt wins).
        let expect = |n: u64| {
            if n.is_multiple_of(5) {
                Some(IoFault::Interrupted)
            } else if n.is_multiple_of(3) {
                Some(IoFault::WouldBlock)
            } else {
                None
            }
        };
        for (i, got) in reads.iter().enumerate() {
            assert_eq!(*got, expect(i as u64 + 1), "read call {}", i + 1);
        }
        let skips: Vec<bool> = (0..6).map(|_| injector.pre_write_skip()).collect();
        assert_eq!(skips, [false, true, false, true, false, true]);
        // 4 WouldBlock + 3 Interrupted + 3 skips.
        assert_eq!(injector.injected_faults(), 10);
    }

    #[test]
    fn disabled_plan_injects_nothing() {
        let injector = FaultPlan::default().build();
        for _ in 0..64 {
            assert_eq!(injector.pre_read(), None);
            assert!(!injector.pre_write_skip());
        }
        injector.shard_wakeup();
        injector.wave_stall();
        assert_eq!(injector.injected_faults(), 0);
    }

    #[test]
    fn chaos_rng_is_reproducible_and_spreads() {
        let mut a = ChaosRng::new(0xC0FFEE);
        let mut b = ChaosRng::new(0xC0FFEE);
        let draws_a: Vec<u64> = (0..64).map(|_| a.below(10)).collect();
        let draws_b: Vec<u64> = (0..64).map(|_| b.below(10)).collect();
        assert_eq!(draws_a, draws_b, "same seed, same schedule");
        let mut seen = [false; 10];
        for d in draws_a {
            seen[d as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() >= 8, "{seen:?}");
        let mut c = ChaosRng::new(1);
        assert_ne!(
            (0..8).map(|_| c.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn rst_close_sends_a_reset_not_a_fin() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        rst_close(client);
        // An aborted peer surfaces as an error (ECONNRESET), not EOF.
        let mut buf = [0u8; 8];
        let got = (&server).read(&mut buf);
        match got {
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::ConnectionReset),
            Ok(0) => panic!("expected RST, got orderly EOF"),
            Ok(n) => panic!("expected RST, read {n} bytes"),
        }
    }
}
