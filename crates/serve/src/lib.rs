//! # pit-serve
//!
//! The serving daemon of the PIT reproduction: a long-running TCP server
//! that boots from an on-disk `pit-arch/2` model artifact
//! ([`pit_infer::PlanArtifact`] — weights included, f32 or int8) and
//! multiplexes thousands of client streams onto the batched session-pool
//! waves of `pit-infer`.
//!
//! * **Protocol** ([`protocol`]): length-prefixed binary frames — OPEN a
//!   stream, PUSH timesteps, receive EMIT frames back, CLOSE; plus
//!   PING/STATS/LOAD_MODEL control frames. Protocol v2 adds the coalesced
//!   PUSH_N/EMIT_N frames carrying many streams' timesteps per frame.
//!   Decoding is defensive: malformed or hostile input yields ERROR
//!   frames, never a daemon panic.
//! * **Server** ([`server`]): an event-driven edge — one thread owning
//!   every socket through a `poll(2)` readiness loop, no per-connection
//!   threads — in front of [`ServerConfig::shards`] wave-batcher threads.
//!   Each shard owns one session-pool shard behind the
//!   [`pit_infer::StreamPool`] trait (f32 and int8 served by the same
//!   code); streams pin to a shard at OPEN time, and every tick each
//!   shard flushes its pending timesteps as one batched GEMM per layer.
//!   Per-connection backpressure caps, bounded reply buffers, idle-stream
//!   eviction and graceful drain on shutdown are built in.
//! * **Stats** ([`stats`]): a [`StatsSnapshot`] counter block (streams
//!   open, timesteps served, wave occupancy, p50/p99/p99.9 wave latency
//!   from log-scale histograms, aggregated across shards) served over the
//!   STATS frame as JSON. The [`StatsSnapshot::settled`] flag and
//!   [`StatsSnapshot::seq`] sequence let pollers detect quiescence
//!   without sleeping.
//! * **Telemetry**: an always-on hub behind an optional HTTP sidecar
//!   ([`ServerConfig::metrics_addr`]) — Prometheus text on `GET
//!   /metrics`, the stats JSON on `GET /stats`, lifecycle state on `GET
//!   /healthz` (503 while booting or draining), and a per-stream event
//!   trace ([`TraceEvent`]) on `GET /trace` and the TRACE frame
//!   (protocol v4). The sidecar reads the same atomics the STATS frame
//!   aggregates, so the two views can never disagree.
//! * **Client** ([`client`]): a small blocking client used by the tests,
//!   benches and examples — [`ClientBuilder`] for timeouts, write
//!   batching and a default model, per-stream model selection via
//!   [`Client::open_with_model`], registry listing via
//!   [`Client::list_models`], typed [`ServeError`]s.
//! * **Model zoo**: the server can boot a whole registry from a
//!   `pit-zoo/1` manifest ([`Server::bind_zoo`]) — one daemon serving
//!   many searched models, each OPEN picking one by name (protocol v3).
//!
//! ```no_run
//! use pit_serve::{Client, Server, ServerConfig};
//! use std::path::Path;
//!
//! let server = Server::bind_artifact(Path::new("model.pit2.json"), ServerConfig::default())
//!     .expect("artifact loads");
//! let addr = server.local_addr();
//! let handle = server.spawn();
//!
//! let mut client = Client::connect(addr).expect("daemon reachable");
//! client.open(0).expect("send");
//! client.push(0, 4, &[0.1, 0.2, 0.3, 0.4]).expect("send");
//! // ... read EMIT frames with client.recv() ...
//! let stats = handle.shutdown();
//! println!("served {} timesteps", stats.timesteps_in);
//! ```

#[cfg(feature = "chaos")]
pub mod chaos;
pub mod client;
pub(crate) mod edge;
pub(crate) mod http;
pub mod protocol;
pub mod server;
pub(crate) mod shard;
pub mod stats;
pub(crate) mod telemetry;

pub use client::{Client, ClientBuilder, ModelInfo, ServeError};
pub use protocol::{ClientFrame, CloseReason, ErrorCode, FrameError, ServerFrame, MAX_MODEL_NAME};
pub use server::{ServeEngine, Server, ServerConfig, ServerHandle};
pub use stats::{ModelSnapshot, StatsSnapshot};
pub use telemetry::TraceEvent;

/// The shared log-scale latency histogram (the exact bucket layout behind
/// every `wave_p*_ns` field and the `/metrics` histogram series), hosted
/// in `pit-tensor` so clients and load drivers can merge and compare
/// snapshots against the daemon's.
pub use pit_tensor::hist;
