//! # pit-serve
//!
//! The serving daemon of the PIT reproduction: a long-running TCP server
//! that boots from an on-disk `pit-arch/2` model artifact
//! ([`pit_infer::PlanArtifact`] — weights included, f32 or int8) and
//! multiplexes many client connections onto the batched session-pool waves
//! of `pit-infer`.
//!
//! * **Protocol** ([`protocol`]): length-prefixed binary frames — OPEN a
//!   stream, PUSH timesteps, receive EMIT frames back, CLOSE; plus
//!   PING/STATS/LOAD_MODEL control frames. Decoding is defensive: malformed
//!   or hostile input yields ERROR frames, never a daemon panic.
//! * **Server** ([`server`]): one reader and one bounded-queue writer
//!   thread per connection, and a single wave-batcher thread that owns the
//!   [`pit_infer::SessionPool`] / [`pit_infer::QuantizedSessionPool`] —
//!   every tick, the pending timesteps of *all* connections flush through
//!   the plan as one batched GEMM per layer per wave. Per-connection
//!   backpressure caps, idle-stream eviction and graceful drain on
//!   shutdown are built in.
//! * **Stats** ([`stats`]): a [`StatsSnapshot`] counter block (streams
//!   open, timesteps served, wave occupancy, p50/p99 wave latency) served
//!   over the STATS frame as JSON.
//! * **Client** ([`client`]): a small blocking client used by the tests,
//!   benches and examples.
//!
//! ```no_run
//! use pit_serve::{Client, Server, ServerConfig};
//! use std::path::Path;
//!
//! let server = Server::bind_artifact(Path::new("model.pit2.json"), ServerConfig::default())
//!     .expect("artifact loads");
//! let addr = server.local_addr();
//! let handle = server.spawn();
//!
//! let mut client = Client::connect(addr).expect("daemon reachable");
//! client.open(0).expect("send");
//! client.push(0, 4, &[0.1, 0.2, 0.3, 0.4]).expect("send");
//! // ... read EMIT frames with client.recv() ...
//! let stats = handle.shutdown();
//! println!("served {} timesteps", stats.timesteps_in);
//! ```

pub mod client;
pub mod protocol;
pub mod server;
pub mod stats;

pub use client::Client;
pub use protocol::{ClientFrame, CloseReason, ErrorCode, FrameError, ServerFrame};
pub use server::{ServeEngine, Server, ServerConfig, ServerHandle};
pub use stats::StatsSnapshot;
